//! Cross-crate integration tests: the paper's claims as executable
//! assertions against the full system.

use compression_cache::sim::{Mode, SimConfig, System};
use compression_cache::util::{Ns, SplitMix64};
use compression_cache::workloads::{
    compare::CompareApp,
    sortapp::{SortApp, SortInput},
    thrasher::{measure_cycle_access_time, Thrasher},
    Workload,
};

const MB: u64 = 1024 * 1024;

/// Abstract: "some memory-intensive applications running with a
/// compression cache can run two to three times faster than on an
/// unmodified system."
#[test]
fn headline_claim_two_to_three_times() {
    // A memory-intensive cyclic application at 2x memory, plus the
    // compare DP app: at least one must clear 2x, and both must win.
    let thrash = |mode| {
        let mut sys = System::new(SimConfig::decstation(MB as usize, mode));
        let t = Thrasher::figure3(2 * MB, true);
        measure_cycle_access_time(&mut sys, &t).0
    };
    let thrash_speedup = thrash(Mode::Std) / thrash(Mode::Cc);
    assert!(
        thrash_speedup > 2.0,
        "memory-intensive app should be >2x faster: got {thrash_speedup:.2}"
    );

    let compare = |mode| {
        let mut sys = System::new(SimConfig::decstation(512 * 1024, mode));
        let mut app = CompareApp {
            text_len: 6000,
            band: 24,
            seed: 5,
        };
        app.run(&mut sys);
        sys.now().as_secs_f64()
    };
    let compare_speedup = compare(Mode::Std) / compare(Mode::Cc);
    assert!(
        compare_speedup > 1.25,
        "compare should win at this scale too: got {compare_speedup:.2}"
    );
}

/// §3: if the working set fits in memory, the compression cache must
/// change nothing at all.
#[test]
fn fits_in_memory_identical_behavior() {
    let mut reports = Vec::new();
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = System::new(SimConfig::decstation(4 * MB as usize, mode));
        let t = Thrasher::figure3(MB, true);
        let (ms, _) = measure_cycle_access_time(&mut sys, &t);
        reports.push((ms, sys.disk_stats().requests()));
    }
    assert_eq!(reports[0].1, 0, "std: no I/O");
    assert_eq!(reports[1].1, 0, "cc: no I/O");
    assert!((reports[0].0 - reports[1].0).abs() < 1e-9);
}

/// §4.1: "If the pages touched by a process could not normally fit in
/// memory, but could fit into memory when some were stored in the
/// compression cache, then the processor would never have to write a
/// page to backing store."
#[test]
fn no_backing_store_writes_when_fitting_compressed() {
    let mut sys = System::new(SimConfig::decstation(2 * MB as usize, Mode::Cc));
    let t = Thrasher::figure3(3 * MB, true); // 1.5x memory, ~4:1 pages
    let _ = measure_cycle_access_time(&mut sys, &t);
    let disk = sys.disk_stats();
    // The fill phase may spill a little before the cache grows; the
    // steady-state cycling must be disk-free, so total traffic stays
    // tiny compared to the 2.3 MB-per-pass the std system would write.
    assert!(
        disk.bytes_written < MB,
        "fit-compressed thrashing wrote {} to disk",
        cc_util::fmt::bytes(disk.bytes_written)
    );
    assert_eq!(disk.reads, 0, "nothing should ever be read back");
}

/// §5.2: the same sort program wins or loses purely on the
/// compressibility of its input.
#[test]
fn sort_outcome_depends_on_compressibility() {
    let measure = |input: SortInput, mode: Mode| {
        let mut sys = System::new(SimConfig::decstation(512 * 1024, mode));
        let mut app = SortApp {
            input,
            text_bytes: 1024 * 1024 + 512 * 1024,
            seed: 4,
            cmp_cost: Ns::from_us(10),
        };
        app.run(&mut sys);
        sys.now().as_ns() as f64
    };
    let partial_speedup =
        measure(SortInput::Partial, Mode::Std) / measure(SortInput::Partial, Mode::Cc);
    let random_speedup =
        measure(SortInput::Random, Mode::Std) / measure(SortInput::Random, Mode::Cc);
    assert!(
        partial_speedup > 1.02,
        "partial-sorted input should win: {partial_speedup:.2}"
    );
    assert!(
        random_speedup < 1.02,
        "shuffled input must not win: {random_speedup:.2}"
    );
    assert!(partial_speedup > random_speedup + 0.05);
}

/// Everything the system writes comes back bit-exact, under a mixed
/// VM-plus-file workload crossing both caches.
#[test]
fn mixed_vm_and_file_integrity() {
    let mut sys = System::new(SimConfig::decstation(MB as usize, Mode::Cc));
    let seg = sys.create_segment(2 * MB);
    let file = sys.file_create("scratch", 256);
    let mut rng = SplitMix64::new(31337);

    let mut vm_model = vec![0u32; (2 * MB / 4096) as usize];
    let mut file_model = vec![0u8; 256 * 4096];
    for step in 0..4000 {
        match rng.gen_range(4) {
            0 => {
                let p = rng.gen_index(vm_model.len());
                let v = rng.next_u32();
                sys.write_u32(seg, p as u64 * 4096, v);
                vm_model[p] = v;
            }
            1 => {
                let p = rng.gen_index(vm_model.len());
                assert_eq!(
                    sys.read_u32(seg, p as u64 * 4096),
                    vm_model[p],
                    "vm mismatch at step {step}"
                );
            }
            2 => {
                let off = rng.gen_index(file_model.len() - 64);
                let data: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
                sys.file_write(file, off as u64, &data);
                file_model[off..off + 64].copy_from_slice(&data);
            }
            _ => {
                let off = rng.gen_index(file_model.len() - 64);
                let mut out = [0u8; 64];
                sys.file_read(file, off as u64, &mut out);
                assert_eq!(
                    &out[..],
                    &file_model[off..off + 64],
                    "file mismatch at step {step}"
                );
            }
        }
        if step % 1000 == 0 {
            sys.check_invariants();
        }
    }
    sys.check_invariants();
}

/// Determinism across the whole stack: identical seeds give identical
/// virtual timelines, fault counts, and disk traffic.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut sys = System::new(SimConfig::decstation(MB as usize, Mode::Cc));
        let mut app = SortApp {
            input: SortInput::Partial,
            text_bytes: 768 * 1024,
            seed: 9,
            cmp_cost: Ns::ZERO,
        };
        let sum = app.run(&mut sys).checksum;
        (
            sum,
            sys.now(),
            sys.vm_stats().faults(),
            sys.disk_stats().bytes(),
            sys.core_stats().unwrap().compress_attempts,
        )
    };
    assert_eq!(run(), run());
}

/// The §4.2 sizing claim: the cache grows under paging pressure and
/// shrinks back when the pressure moves elsewhere.
#[test]
fn cache_grows_and_shrinks() {
    let mut sys = System::new(SimConfig::decstation(2 * MB as usize, Mode::Cc));
    let big = sys.create_segment(4 * MB);
    for p in 0..(4 * MB / 4096) {
        sys.write_u32(big, p * 4096, p as u32);
    }
    let grown = sys.frame_counts().compression_cache;
    assert!(
        grown > 64,
        "cache should hold a large share: {grown} frames"
    );

    // Pressure moves to a nearly memory-sized hot segment of
    // *incompressible* pages (they cannot live in the cache), touched
    // repeatedly: the arbiter must hand the cache's frames back.
    let hot_bytes = 2 * MB - 256 * 1024;
    let hot = sys.create_segment(hot_bytes);
    let mut rng = SplitMix64::new(3);
    let mut noise = vec![0u8; 4096];
    for p in 0..(hot_bytes / 4096) {
        for b in noise.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        sys.write_slice(hot, p * 4096, &noise);
    }
    for _ in 0..20 {
        for p in 0..(hot_bytes / 4096) {
            let _ = sys.read_u32(hot, p * 4096);
        }
    }
    // Equilibrium: the incompressible hot set ends fully resident, the
    // cache having yielded exactly the frames it had to.
    let counts = sys.frame_counts();
    let hot_pages = (hot_bytes / 4096) as usize;
    assert!(
        counts.vm >= hot_pages,
        "hot set not fully resident: {} < {hot_pages}",
        counts.vm
    );
    let shrunk = counts.compression_cache;
    assert!(
        shrunk < grown,
        "cache must yield memory to the new working set: {grown} -> {shrunk}"
    );
    sys.check_invariants();
}
