//! Property-based tests of the whole system against a reference model.
//!
//! Strategy-generated operation sequences (writes, reads, segment
//! churn, compute) run against the full simulator in both modes, with a
//! plain `Vec`-based model of memory contents. Any divergence — a stale
//! page resurfacing from the compression cache, a lost write during
//! cleaner write-back, a swap GC relocation error — fails here.

use compression_cache::sim::{Mode, SimConfig, System};
use compression_cache::util::Ns;
use proptest::prelude::*;

const PAGE: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    /// Write a u32 at (page, aligned offset).
    Write { page: u16, slot: u8, value: u32 },
    /// Read a u32 and check it.
    Read { page: u16, slot: u8 },
    /// Fill a whole page with a byte pattern.
    FillPage { page: u16, byte: u8 },
    /// Advance time (lets async writes complete / ages drift).
    Think { ms: u16 },
}

fn op_strategy(npages: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..npages, 0..200u8, any::<u32>()).prop_map(|(page, slot, value)| Op::Write {
            page,
            slot,
            value
        }),
        (0..npages, 0..200u8).prop_map(|(page, slot)| Op::Read { page, slot }),
        (0..npages, any::<u8>()).prop_map(|(page, byte)| Op::FillPage { page, byte }),
        (1..50u16).prop_map(|ms| Op::Think { ms }),
    ]
}

fn run_ops(mode: Mode, memory_frames: usize, npages: u16, ops: &[Op]) {
    let mut cfg = SimConfig::decstation(memory_frames * PAGE as usize, mode);
    // A small swap keeps the GC path hot.
    cfg.cc.swap_bytes = 8 * 1024 * 1024;
    let mut sys = System::new(cfg);
    let seg = sys.create_segment(npages as u64 * PAGE);
    let mut model: Vec<Vec<u8>> = vec![vec![0u8; PAGE as usize]; npages as usize];

    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { page, slot, value } => {
                let off = page as u64 * PAGE + slot as u64 * 4;
                sys.write_u32(seg, off, value);
                model[page as usize][slot as usize * 4..slot as usize * 4 + 4]
                    .copy_from_slice(&value.to_le_bytes());
            }
            Op::Read { page, slot } => {
                let off = page as u64 * PAGE + slot as u64 * 4;
                let got = sys.read_u32(seg, off);
                let m = &model[page as usize][slot as usize * 4..slot as usize * 4 + 4];
                let want = u32::from_le_bytes([m[0], m[1], m[2], m[3]]);
                assert_eq!(got, want, "op {i}: {mode:?} read mismatch at {page}/{slot}");
            }
            Op::FillPage { page, byte } => {
                let data = vec![byte; PAGE as usize];
                sys.write_slice(seg, page as u64 * PAGE, &data);
                model[page as usize].fill(byte);
            }
            Op::Think { ms } => {
                sys.compute(Ns::from_ms(ms as u64));
            }
        }
    }
    // Full sweep at the end.
    for (p, page) in model.iter().enumerate() {
        let mut out = vec![0u8; PAGE as usize];
        sys.read_slice(seg, p as u64 * PAGE, &mut out);
        assert_eq!(&out, page, "{mode:?}: final sweep, page {p}");
    }
    sys.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 8 frames of memory, 24 pages of address space: everything churns
    /// through the compression cache and swap constantly.
    #[test]
    fn cc_mode_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..250)) {
        run_ops(Mode::Cc, 8, 24, &ops);
    }

    #[test]
    fn std_mode_matches_model(ops in proptest::collection::vec(op_strategy(24), 1..250)) {
        run_ops(Mode::Std, 8, 24, &ops);
    }

    /// Both modes compute identical results for the same op sequence.
    #[test]
    fn modes_agree(ops in proptest::collection::vec(op_strategy(16), 1..150)) {
        // run_ops already checks both against the same deterministic
        // model; running both here proves cross-mode agreement.
        run_ops(Mode::Std, 6, 16, &ops);
        run_ops(Mode::Cc, 6, 16, &ops);
    }
}
