//! Closed-form performance models behind Figure 1 of the paper.
//!
//! §3 models the benefit of compression analytically before any
//! implementation: *"Figure 1(a) graphs the speed of paging to and from
//! backing store in compressed format, as a function of compression
//! bandwidth (relative to the bandwidth of the backing store) and
//! compression ratio. Figure 1(b) shows the speedup of mean memory
//! reference time ... when pages are retained in memory, for an
//! application that sequentially accesses twice as many pages as fit in
//! memory, reading and writing one word per page."*
//!
//! Conventions (all from the figure's caption):
//!
//! - `r` — the compression **fraction**: bytes remaining after
//!   compression, `0 < r <= 1` (the paper plots "fraction of bytes left").
//! - `s` — compression speed relative to I/O bandwidth
//!   (`s = B_compress / B_io`).
//! - Decompression is twice as fast as compression ("as is roughly the
//!   case for algorithms such as LZRW1").
//!
//! All costs are normalized to the time to transfer one page to the
//! backing store (`T_io = 1`).

#![warn(missing_docs)]

/// Speedup of paging when pages are *compressed en route to backing
/// store* (Figure 1a).
///
/// Baseline cycle: write a dirty page + read it back = `2`.
/// Compressed cycle: compress (`1/s`) + write `r` + read `r` +
/// decompress (`1/(2s)`).
///
/// # Examples
///
/// ```
/// use cc_analytic::bandwidth_speedup;
/// // Fast compression (8x I/O speed) at 4:1 leaves mostly transfer time:
/// let s = bandwidth_speedup(0.25, 8.0);
/// assert!(s > 2.5 && s < 3.5);
/// // Incompressible data with slow compression is a slowdown:
/// assert!(bandwidth_speedup(1.0, 0.5) < 1.0);
/// ```
pub fn bandwidth_speedup(r: f64, s: f64) -> f64 {
    assert!(r > 0.0 && r <= 1.0, "compression fraction out of range");
    assert!(s > 0.0, "speed ratio must be positive");
    2.0 / (1.5 / s + 2.0 * r)
}

/// Speedup of mean memory reference time when compressed pages are
/// *retained in memory* (Figure 1b).
///
/// The workload cycles through twice as many pages as fit in memory,
/// touching one word per page, reading and writing — under LRU every
/// access faults.
///
/// - Baseline: each fault writes one page and reads one page: `2`.
/// - With the cache and `r <= 1/2`, every page fits in memory compressed:
///   each fault costs a decompression plus a victim compression,
///   `1.5 / s`, so the speedup `(4/3) s` is *"linear in the speed of
///   compression"*.
/// - With `r > 1/2` a fraction `f = 1 - 1/(2r)` of faults must also move
///   a compressed page to and from the backing store (`2r` each).
pub fn reference_speedup(r: f64, s: f64) -> f64 {
    assert!(r > 0.0 && r <= 1.0, "compression fraction out of range");
    assert!(s > 0.0, "speed ratio must be positive");
    let disk_fraction = if r <= 0.5 { 0.0 } else { 1.0 - 1.0 / (2.0 * r) };
    2.0 / (1.5 / s + disk_fraction * 2.0 * r)
}

/// The paper's three shading regions in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Speedup beyond the plotted scale ("the dark black areas at the top
    /// left show speedups that go off the top of the scale (6-fold
    /// improvement)").
    OffScale,
    /// Speedup between 1 and 6.
    Speedup,
    /// "the darker areas to the right show data points at which a
    /// slowdown would result".
    Slowdown,
}

impl Region {
    /// Classify a speedup value.
    pub fn classify(speedup: f64) -> Region {
        if speedup >= 6.0 {
            Region::OffScale
        } else if speedup >= 1.0 {
            Region::Speedup
        } else {
            Region::Slowdown
        }
    }
}

/// Axis of compression fractions used by the figure harnesses
/// (`n` points from `lo` to `hi`, linear).
pub fn ratio_axis(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi <= 1.0 && lo < hi);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Axis of speed ratios (`n` points from `lo` to `hi`, logarithmic —
/// compression-vs-I/O spans orders of magnitude).
pub fn speed_axis(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && lo < hi);
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Evaluate a model over a speed × ratio grid; `grid[i][j]` is speeds
/// row `i` (descending, so faster compression is at the top like the
/// figure) and ratio column `j`.
pub fn grid(model: fn(f64, f64) -> f64, ratios: &[f64], speeds: &[f64]) -> Vec<Vec<f64>> {
    let mut speeds_desc: Vec<f64> = speeds.to_vec();
    speeds_desc.sort_by(|a, b| b.partial_cmp(a).unwrap());
    speeds_desc
        .iter()
        .map(|&s| ratios.iter().map(|&r| model(r, s)).collect())
        .collect()
}

/// Break-even compression fraction for Figure 1(a): the `r` at which
/// compressed paging exactly matches plain paging for a given `s`.
/// Solving `2 = 1.5/s + 2r` gives `r* = 1 - 0.75/s` (clamped to the valid
/// range; `None` when even `r -> 0` cannot break even, i.e. `s < 0.75`).
pub fn bandwidth_breakeven_ratio(s: f64) -> Option<f64> {
    let r = 1.0 - 0.75 / s;
    (r > 0.0).then_some(r.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_speedup_monotone_in_both_axes() {
        let mut prev = f64::INFINITY;
        for r in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let v = bandwidth_speedup(r, 4.0);
            assert!(v < prev, "not decreasing in r");
            prev = v;
        }
        let mut prev = 0.0;
        for s in [0.5, 1.0, 2.0, 8.0, 64.0] {
            let v = bandwidth_speedup(0.5, s);
            assert!(v > prev, "not increasing in s");
            prev = v;
        }
    }

    #[test]
    fn bandwidth_speedup_asymptotes() {
        // Infinitely fast compression: speedup -> 1/r.
        assert!((bandwidth_speedup(0.25, 1e9) - 4.0).abs() < 1e-3);
        // r = 1 and infinitely fast compression: no benefit, no harm.
        assert!((bandwidth_speedup(1.0, 1e9) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn reference_speedup_linear_below_half() {
        // Below r = 1/2 the speedup is (4/3)s regardless of r.
        for s in [0.5, 1.0, 3.0, 10.0] {
            for r in [0.1, 0.25, 0.4, 0.5] {
                let v = reference_speedup(r, s);
                assert!((v - 4.0 * s / 3.0).abs() < 1e-9, "r={r} s={s}: {v}");
            }
        }
    }

    #[test]
    fn reference_speedup_leap_at_half() {
        // Crossing r = 1/2 turns on disk traffic: speedup drops steeply
        // for fast compression (the "sharp leap" of §3).
        let fast = 10.0;
        let below = reference_speedup(0.5, fast);
        let above = reference_speedup(0.6, fast);
        assert!(below > 2.0 * above, "no leap: {below} vs {above}");
    }

    #[test]
    fn reference_beats_bandwidth_when_everything_fits() {
        // Keeping pages in memory dominates compress-to-disk whenever the
        // working set fits compressed (the paper's core argument).
        for s in [1.0, 2.0, 8.0] {
            for r in [0.2, 0.35, 0.5] {
                assert!(
                    reference_speedup(r, s) > bandwidth_speedup(r, s),
                    "r={r} s={s}"
                );
            }
        }
    }

    #[test]
    fn regions_classify() {
        assert_eq!(Region::classify(7.0), Region::OffScale);
        assert_eq!(Region::classify(6.0), Region::OffScale);
        assert_eq!(Region::classify(3.0), Region::Speedup);
        assert_eq!(Region::classify(1.0), Region::Speedup);
        assert_eq!(Region::classify(0.99), Region::Slowdown);
    }

    #[test]
    fn figure_regions_appear_in_expected_corners() {
        // Top-left (fast compression, good ratio) must be off-scale;
        // right (poor ratio, slow compression) must be a slowdown.
        let ratios = ratio_axis(0.05, 1.0, 20);
        let speeds = speed_axis(0.25, 16.0, 20);
        let g = grid(reference_speedup, &ratios, &speeds);
        assert_eq!(Region::classify(g[0][0]), Region::OffScale);
        let last_row = g.len() - 1;
        let last_col = g[0].len() - 1;
        assert_eq!(Region::classify(g[last_row][last_col]), Region::Slowdown);
        // Monotone rows: moving right (worse ratio) never helps.
        for row in &g {
            for w in row.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn breakeven_matches_model() {
        for s in [1.0, 2.0, 4.0, 16.0] {
            let r = bandwidth_breakeven_ratio(s).unwrap();
            if r < 1.0 {
                let v = bandwidth_speedup(r, s);
                assert!((v - 1.0).abs() < 1e-9, "s={s}: speedup at breakeven {v}");
            }
        }
        assert_eq!(bandwidth_breakeven_ratio(0.5), None);
        assert_eq!(bandwidth_breakeven_ratio(0.75), None);
    }

    #[test]
    fn axes_are_well_formed() {
        let r = ratio_axis(0.05, 1.0, 10);
        assert_eq!(r.len(), 10);
        assert!((r[0] - 0.05).abs() < 1e-12 && (r[9] - 1.0).abs() < 1e-12);
        let s = speed_axis(0.25, 16.0, 7);
        assert_eq!(s.len(), 7);
        assert!((s[0] - 0.25).abs() < 1e-9 && (s[6] - 16.0).abs() < 1e-6);
        // Log spacing: constant multiplicative step.
        let step0 = s[1] / s[0];
        let step5 = s[6] / s[5];
        assert!((step0 - step5).abs() < 1e-9);
    }
}
