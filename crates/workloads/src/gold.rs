//! `gold` — a main-memory inverted-index engine (the Gold Mailer's
//! "index engine", Barbará et al. 1993).
//!
//! §5.2: *"one might expect that a main-memory database would benefit
//! from the compression cache if it fits in memory when compressed but
//! not otherwise... Indeed, one such database, the 'index engine' for the
//! Gold Mailer, compresses slightly worse than 2:1; it runs more slowly
//! under the compression cache than on an unmodified system. This is
//! partly due to the poor compression and partly due to the high fraction
//! of nonsequential page accesses."*
//!
//! The engine here is a real inverted index living in simulated memory:
//! a bucketed hash table of terms with chained postings. `create` builds
//! it from synthetic mail messages; `queries` walks postings for random
//! terms. Posting records deliberately carry a message fingerprint word,
//! which is what keeps their pages "slightly worse than 2:1" — measured,
//! not scripted.

use cc_sim::System;
use cc_util::{Ns, SplitMix64};
use cc_vm::SegId;

use crate::{datagen::WordList, fnv1a, Workload, WorkloadSummary};

/// Which Table 1 row to run (create / cold / warm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldPhase {
    /// Build a new index from scratch (write-heavy).
    Create,
    /// Queries right after start: the index is on backing store.
    Cold,
    /// The same queries again with the engine warm.
    Warm,
}

/// The index engine.
#[derive(Debug, Clone)]
pub struct GoldApp {
    /// Number of synthetic mail messages to index.
    pub messages: u32,
    /// Mean words per message.
    pub words_per_message: u32,
    /// Dictionary size (distinct terms).
    pub vocabulary: usize,
    /// Hash buckets.
    pub buckets: u32,
    /// Queries per query phase.
    pub queries: u32,
    /// Seed.
    pub seed: u64,
    /// CPU time to parse/tokenize one message during create (the real
    /// engine read and parsed mail files).
    pub parse_cost: Ns,
    /// CPU time to parse one query and format its results.
    pub query_cost: Ns,
}

// Index layout inside one segment:
//   [bucket heads: u32 x buckets][node pool: bump-allocated records]
// Term node (20 B): tag 'T', term hash u32, postings head u32, next term
//   u32, doc count u32, pad.
// Posting node (12 B): doc id u32, fingerprint u32, next u32.
const TERM_NODE: u64 = 20;
const POST_NODE: u64 = 12;

impl GoldApp {
    /// Table 1 scale: an index of roughly 20 MB against 14 MB of memory.
    pub fn table1() -> Self {
        GoldApp {
            messages: 20_000,
            words_per_message: 50,
            vocabulary: 50_000,
            buckets: 1 << 15,
            queries: 25_000,
            seed: 41,
            parse_cost: Ns::from_ms(18),
            query_cost: Ns::from_ms(3),
        }
    }

    /// Upper bound on the index segment size (nwords per message can
    /// reach 1.5x the mean; attachment blobs up to 6 KB on ~18% of
    /// messages).
    pub fn segment_bytes(&self) -> u64 {
        let postings = self.messages as u64 * self.words_per_message as u64 * 3 / 2;
        self.buckets as u64 * 4
            + self.vocabulary as u64 * TERM_NODE
            + postings * POST_NODE
            + self.messages as u64 * 1800
            + 8192
    }

    fn hash_term(term: &str) -> u32 {
        let mut h: u32 = 2166136261;
        for b in term.bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(16777619);
        }
        h | 1 // never zero (zero means empty)
    }

    /// Build the index; returns a checksum over engine state.
    pub fn create(&self, sys: &mut System, seg: SegId) -> u64 {
        let dict = WordList::generate(self.vocabulary, self.seed);
        let mut rng = SplitMix64::new(self.seed ^ 0x601D);
        let pool_base = self.buckets as u64 * 4;
        // Bump pointer held in the application (a register, essentially).
        let mut bump = pool_base;
        let mut checksum = 0u64;

        let mut blob = vec![0u8; 6 * 1024];
        for doc in 0..self.messages {
            if self.parse_cost > Ns::ZERO {
                sys.compute(self.parse_cost);
            }
            // Some messages carry an attachment digest: a run of
            // high-entropy bytes stored inline in the engine's pool.
            // These are the pages Table 1 reports as uncompressible (42%
            // of pages for gold create).
            if rng.gen_bool(0.10) {
                let len = (1024 + rng.gen_index(3072)) & !3;
                for b in blob[..len].iter_mut() {
                    *b = rng.next_u64() as u8;
                }
                sys.write_slice(seg, bump, &blob[..len]);
                bump += len as u64;
            }
            let nwords =
                self.words_per_message / 2 + rng.gen_range(self.words_per_message as u64) as u32;
            for _ in 0..nwords {
                // Zipf-ish term choice: square the uniform to skew.
                let u = rng.gen_f64();
                let idx = ((u * u) * dict.len() as f64) as usize % dict.len();
                let term = dict.word(idx);
                let h = Self::hash_term(term);
                let bucket_off = (h % self.buckets) as u64 * 4;

                // Find the term node in the chain.
                let mut node = sys.read_u32(seg, bucket_off) as u64;
                let mut found = 0u64;
                while node != 0 {
                    let nh = sys.read_u32(seg, node);
                    if nh == h {
                        found = node;
                        break;
                    }
                    node = sys.read_u32(seg, node + 12) as u64; // next term
                }
                let term_node = if found != 0 {
                    found
                } else {
                    // Allocate a term node at the bump pointer.
                    let n = bump;
                    bump += TERM_NODE;
                    sys.write_u32(seg, n, h);
                    sys.write_u32(seg, n + 4, 0); // postings head
                    let old_head = sys.read_u32(seg, bucket_off);
                    sys.write_u32(seg, n + 12, old_head); // next term
                    sys.write_u32(seg, n + 16, 0); // count
                    sys.write_u32(seg, bucket_off, n as u32);
                    n
                };
                // Prepend a posting.
                let p = bump;
                bump += POST_NODE;
                // Message digest word: 14 random bits — enough entropy to
                // hold index pages near the paper's 2:1 (a full random
                // word pushes pages past the 4:3 threshold entirely).
                let fingerprint = (rng.next_u32() & 0x3FFF) | (doc << 14);
                sys.write_u32(seg, p, doc);
                sys.write_u32(seg, p + 4, fingerprint);
                let old = sys.read_u32(seg, term_node + 4);
                sys.write_u32(seg, p + 8, old);
                sys.write_u32(seg, term_node + 4, p as u32);
                let count = sys.read_u32(seg, term_node + 16);
                sys.write_u32(seg, term_node + 16, count + 1);
            }
            if doc % 1000 == 0 {
                checksum = fnv1a(checksum, &bump.to_le_bytes());
            }
        }
        fnv1a(checksum, &bump.to_le_bytes())
    }

    /// Run the query mix; returns a result checksum.
    pub fn run_queries(&self, sys: &mut System, seg: SegId, query_seed: u64) -> u64 {
        let dict = WordList::generate(self.vocabulary, self.seed);
        let mut rng = SplitMix64::new(query_seed);
        let mut checksum = 0u64;
        for _ in 0..self.queries {
            if self.query_cost > Ns::ZERO {
                sys.compute(self.query_cost);
            }
            let u = rng.gen_f64();
            let idx = ((u * u) * dict.len() as f64) as usize % dict.len();
            let term = dict.word(idx);
            let h = Self::hash_term(term);
            let bucket_off = (h % self.buckets) as u64 * 4;
            let mut node = sys.read_u32(seg, bucket_off) as u64;
            let mut hits = 0u32;
            while node != 0 {
                let nh = sys.read_u32(seg, node);
                if nh == h {
                    // Walk up to 40 postings (a result page).
                    let mut p = sys.read_u32(seg, node + 4) as u64;
                    let mut n = 0;
                    while p != 0 && n < 40 {
                        hits = hits.wrapping_add(sys.read_u32(seg, p));
                        p = sys.read_u32(seg, p + 8) as u64;
                        n += 1;
                    }
                    break;
                }
                node = sys.read_u32(seg, node + 12) as u64;
            }
            checksum = fnv1a(checksum, &hits.to_le_bytes());
        }
        checksum
    }

    /// Evict the engine from memory by cycling a scratch segment sized to
    /// physical memory (the "engine having just started" condition of
    /// gold_cold, where its address space is entirely on backing store).
    pub fn flush_memory(&self, sys: &mut System) {
        let bytes = sys.config().user_memory_bytes as u64 + 2 * 1024 * 1024;
        let scratch = sys.create_segment(bytes);
        for p in 0..bytes / 4096 {
            sys.write_u32(scratch, p * 4096, p as u32);
        }
        sys.release_segment(scratch);
    }
}

/// Workload wrapper running one Table 1 gold row end to end; the measured
/// window is handled by the Table 1 harness via clock deltas around the
/// phase methods — `run` here measures the whole thing (used in tests).
#[derive(Debug, Clone)]
pub struct GoldWorkload {
    /// Engine parameters.
    pub app: GoldApp,
    /// Which row.
    pub phase: GoldPhase,
}

impl Workload for GoldWorkload {
    fn name(&self) -> String {
        match self.phase {
            GoldPhase::Create => "gold create".into(),
            GoldPhase::Cold => "gold cold".into(),
            GoldPhase::Warm => "gold warm".into(),
        }
    }

    fn run(&mut self, sys: &mut System) -> WorkloadSummary {
        let seg = sys.create_segment(self.app.segment_bytes());
        let create_sum = self.app.create(sys, seg);
        let checksum = match self.phase {
            GoldPhase::Create => create_sum,
            GoldPhase::Cold => {
                self.app.flush_memory(sys);
                self.app.run_queries(sys, seg, 77)
            }
            GoldPhase::Warm => {
                self.app.flush_memory(sys);
                self.app.run_queries(sys, seg, 77);
                // The paper's warm run repeats the same query set.
                self.app.run_queries(sys, seg, 77)
            }
        };
        WorkloadSummary {
            checksum,
            operations: self.app.queries as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Mode, SimConfig};

    fn small() -> GoldApp {
        GoldApp {
            messages: 800,
            words_per_message: 40,
            vocabulary: 2000,
            buckets: 512,
            queries: 2000,
            seed: 6,
            parse_cost: Ns::ZERO,
            query_cost: Ns::ZERO,
        }
    }

    #[test]
    fn create_and_query_deterministic_across_modes() {
        for phase in [GoldPhase::Create, GoldPhase::Cold] {
            let mut sums = Vec::new();
            for mode in [Mode::Std, Mode::Cc] {
                let mut sys = System::new(SimConfig::decstation(512 * 1024, mode));
                let mut w = GoldWorkload {
                    app: small(),
                    phase,
                };
                sums.push(w.run(&mut sys).checksum);
            }
            assert_eq!(sums[0], sums[1], "{phase:?}");
        }
    }

    #[test]
    fn queries_find_postings() {
        let mut sys = System::new(SimConfig::decstation(4 * 1024 * 1024, Mode::Std));
        let app = small();
        let seg = sys.create_segment(app.segment_bytes());
        app.create(&mut sys, seg);
        let a = app.run_queries(&mut sys, seg, 1);
        let b = app.run_queries(&mut sys, seg, 2);
        // Different query streams give different results; same stream
        // repeats exactly.
        assert_ne!(a, b);
        assert_eq!(app.run_queries(&mut sys, seg, 1), a);
    }

    #[test]
    fn index_pages_compress_worse_than_good_apps() {
        let mut sys = System::new(SimConfig::decstation(256 * 1024, Mode::Cc));
        let mut w = GoldWorkload {
            app: small(),
            phase: GoldPhase::Create,
        };
        w.run(&mut sys);
        let core = sys.core_stats().unwrap();
        assert!(core.compress_attempts > 0);
        let frac = core.mean_kept_fraction();
        // Paper: ~59-60% for gold create/cold ("slightly worse than
        // 2:1"). The fingerprint words keep this off the floor.
        assert!((0.30..0.75).contains(&frac), "gold kept fraction {frac}");
        assert!(
            core.rejected_fraction() > 0.02,
            "gold should have uncompressible pages: {}",
            core.rejected_fraction()
        );
    }
}
