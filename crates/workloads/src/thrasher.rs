//! `thrasher` — the paper's synthetic upper-bound workload (§5.1).
//!
//! *"Thrasher cycles linearly through a working set, reading (and
//! optionally writing) one word of memory on each page each time through
//! the working set. The system uses an LRU algorithm for page
//! replacement, so if thrasher's working set does not fit in memory, then
//! it takes a page fault on each page access."*

use cc_sim::System;
use cc_util::Ns;

use crate::{datagen, fnv1a, Workload, WorkloadSummary};

/// The thrasher workload.
#[derive(Debug, Clone)]
pub struct Thrasher {
    /// Address-space size in bytes (the Figure 3 x-axis).
    pub space_bytes: u64,
    /// Number of full passes over the working set.
    pub passes: u32,
    /// Write one word per page (true = `rw` curves, false = `ro`).
    pub write: bool,
    /// Pre-fill pages with ~4:1-compressible content before measuring
    /// (the paper's thrasher pages "compress roughly 4:1"). When false,
    /// pages stay zero-filled (maximally compressible).
    pub prefill: bool,
    /// Charge this much computation between page touches (0 in Figure 3).
    pub think_time: Ns,
}

impl Thrasher {
    /// Figure 3 configuration at a given address-space size.
    pub fn figure3(space_bytes: u64, write: bool) -> Self {
        Thrasher {
            space_bytes,
            passes: 3,
            write,
            prefill: true,
            think_time: Ns::ZERO,
        }
    }

    /// Number of pages in the working set.
    pub fn pages(&self) -> u64 {
        self.space_bytes / 4096
    }
}

impl Workload for Thrasher {
    fn name(&self) -> String {
        format!(
            "thrasher-{}-{}MB",
            if self.write { "rw" } else { "ro" },
            self.space_bytes / (1024 * 1024)
        )
    }

    fn run(&mut self, sys: &mut System) -> WorkloadSummary {
        let seg = sys.create_segment(self.space_bytes);
        let npages = self.pages();
        let mut checksum = 0u64;
        let mut ops = 0u64;

        if self.prefill {
            // Fill phase (not part of the measured cycling in the paper,
            // but it pages like any fill would).
            let mut page = vec![0u8; 4096];
            for p in 0..npages {
                datagen::fill_4to1(&mut page, p);
                sys.write_slice(seg, p * 4096, &page);
            }
        }

        // Measured cycling: one word per page, sequential, wrap around.
        for pass in 0..self.passes {
            for p in 0..npages {
                let off = p * 4096; // first word of each page
                if self.write {
                    let v = sys.read_u32(seg, off);
                    sys.write_u32(seg, off, v.wrapping_add(1));
                } else {
                    let v = sys.read_u32(seg, off);
                    checksum = fnv1a(checksum, &v.to_le_bytes());
                }
                ops += 1;
                if self.think_time > Ns::ZERO {
                    sys.compute(self.think_time);
                }
            }
            let _ = pass;
        }
        if self.write {
            // Fold final word values into the checksum.
            for p in 0..npages {
                let v = sys.read_u32(seg, p * 4096);
                checksum = fnv1a(checksum, &v.to_le_bytes());
                ops += 1;
            }
        }
        WorkloadSummary {
            checksum,
            operations: ops,
        }
    }
}

/// Average page-access time over only the *cycling* phase of a run:
/// convenience used by the Figure 3 harness. Runs fill, snapshots the
/// clock and access counts, then cycles.
pub fn measure_cycle_access_time(sys: &mut System, t: &Thrasher) -> (f64, u64) {
    let seg = sys.create_segment(t.space_bytes);
    let npages = t.pages();
    if t.prefill {
        let mut page = vec![0u8; 4096];
        for p in 0..npages {
            datagen::fill_4to1(&mut page, p);
            sys.write_slice(seg, p * 4096, &page);
        }
    }
    let start = sys.now();
    let accesses_before = sys.vm_stats().accesses;
    for _ in 0..t.passes {
        for p in 0..npages {
            let off = p * 4096;
            if t.write {
                let v = sys.read_u32(seg, off);
                sys.write_u32(seg, off, v.wrapping_add(1));
            } else {
                let _ = sys.read_u32(seg, off);
            }
        }
    }
    let elapsed = sys.now() - start;
    // Count page visits, not word references (rw touches each page with a
    // read+write pair).
    let page_visits = t.passes as u64 * npages;
    let _ = accesses_before;
    (elapsed.as_ms_f64() / page_visits as f64, page_visits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Mode, SimConfig};

    const MB: u64 = 1024 * 1024;

    #[test]
    fn checksums_match_across_modes() {
        let mut results = Vec::new();
        for mode in [Mode::Std, Mode::Cc] {
            let mut sys = System::new(SimConfig::decstation(2 * MB as usize, mode));
            let mut t = Thrasher::figure3(4 * MB, true);
            t.passes = 2;
            results.push(t.run(&mut sys).checksum);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn fitting_working_set_takes_no_cycle_faults() {
        let mut sys = System::new(SimConfig::decstation(8 * MB as usize, Mode::Cc));
        let t = Thrasher::figure3(2 * MB, false);
        let (ms_per_access, _) = measure_cycle_access_time(&mut sys, &t);
        // Pure memory references: well under a tenth of a millisecond.
        assert!(ms_per_access < 0.01, "got {ms_per_access}ms");
    }

    #[test]
    fn cc_cycle_is_much_faster_than_std_when_fitting_compressed() {
        let space = 4 * MB;
        let mem = 2 * MB as usize;
        let measure = |mode| {
            let mut sys = System::new(SimConfig::decstation(mem, mode));
            let t = Thrasher::figure3(space, true);
            measure_cycle_access_time(&mut sys, &t).0
        };
        let std_ms = measure(Mode::Std);
        let cc_ms = measure(Mode::Cc);
        assert!(
            cc_ms * 3.0 < std_ms,
            "expected >3x: std {std_ms}ms cc {cc_ms}ms"
        );
    }
}
