//! Deterministic data generators with controlled compressibility.
//!
//! Table 1's outcomes hinge on what LZRW1 finds in each application's
//! pages: `compare`'s DP stripe compresses ~3:1, `gold`'s index "slightly
//! worse than 2:1", and `sort random`'s shuffled text leaves "about 98% of
//! the pages" under the 4:3 threshold. These generators produce byte
//! streams in those regimes — verified against the real LZRW1 by this
//! module's tests, not assumed.

use cc_util::SplitMix64;

/// A synthetic `/usr/dict/words`: deterministic pseudo-English words,
/// pronounceable enough to have LZ-visible structure.
pub struct WordList {
    words: Vec<String>,
}

impl WordList {
    /// Generate `n` distinct words from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let onsets = [
            "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m",
            "n", "p", "pr", "qu", "r", "s", "sh", "sl", "st", "t", "th", "tr", "v", "w",
        ];
        let vowels = ["a", "e", "i", "o", "u", "ai", "ea", "ou"];
        let codas = [
            "", "b", "ck", "d", "g", "l", "m", "n", "nd", "ng", "r", "s", "st", "t",
        ];
        let mut words = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        while words.len() < n {
            let syllables = 1 + rng.gen_index(3);
            let mut w = String::new();
            for _ in 0..=syllables {
                w.push_str(onsets[rng.gen_index(onsets.len())]);
                w.push_str(vowels[rng.gen_index(vowels.len())]);
            }
            w.push_str(codas[rng.gen_index(codas.len())]);
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        WordList { words }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word at index.
    pub fn word(&self, i: usize) -> &str {
        &self.words[i]
    }
}

/// Text of `bytes` length built from many copies of dictionary words in
/// *sorted* order with heavy in-page repetition — the `sort partial`
/// input regime ("the input file were only a minor permutation of the
/// sorted copy of the file, with substrings (or complete words) often
/// repeated within a page"). Compresses ~3:1 under LZRW1.
pub fn repetitive_text(bytes: usize, seed: u64) -> Vec<u8> {
    let dict = WordList::generate(512, seed);
    let mut rng = SplitMix64::new(seed ^ 0xABCD);
    let mut out = Vec::with_capacity(bytes);
    let mut word_idx = 0usize;
    while out.len() < bytes {
        // A run of the same word (sorted files repeat adjacent words).
        let run = 3 + rng.gen_index(8);
        for _ in 0..run {
            if out.len() >= bytes {
                break;
            }
            out.extend_from_slice(dict.word(word_idx % dict.len()).as_bytes());
            out.push(b'\n');
        }
        word_idx += 1;
    }
    out.truncate(bytes);
    out
}

/// Text of `bytes` length with the words globally shuffled — the `sort
/// random` regime: little repetition within any 4 KB page, so most pages
/// fail the 4:3 threshold (the paper measured ~98% of pages rejected).
///
/// Pseudo-English words share enough trigrams that LZRW1 still finds
/// matches, so this generator uses uniform-letter words: the paper's
/// /usr/dict/words, globally shuffled with "minimal repetition of strings
/// within an individual 4-Kbyte page", is incompressible to LZRW1's 4 KB
/// window in just the same way.
pub fn shuffled_text(bytes: usize, seed: u64) -> Vec<u8> {
    let dict = WordList::generate(64, seed);
    let mut rng = SplitMix64::new(seed ^ 0x5151);
    let mut out = Vec::with_capacity(bytes);
    while out.len() < bytes {
        if rng.gen_bool(0.06) {
            // A sliver of common words: after sorting they cluster, so a
            // few percent of pages stay compressible (paper: 98%
            // rejected, not 100%).
            out.extend_from_slice(dict.word(rng.gen_index(dict.len())).as_bytes());
        } else {
            let len = 5 + rng.gen_index(9);
            for _ in 0..len {
                out.push(b'a' + (rng.gen_index(26)) as u8);
            }
        }
        out.push(b'\n');
    }
    out.truncate(bytes);
    out
}

/// Fill a page with content that compresses to roughly a quarter of its
/// size under LZRW1 — the paper's thrasher pages ("pages compress roughly
/// 4:1"). A mix of a repeated token stream and per-page noise words.
pub fn fill_4to1(page: &mut [u8], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut i = 0usize;
    while i < page.len() {
        if rng.gen_bool(0.72) {
            // Repeated 16-byte token: cheap for LZ.
            let token = b"state=0 next=00 ";
            let n = token.len().min(page.len() - i);
            page[i..i + n].copy_from_slice(&token[..n]);
            i += n;
        } else {
            // A few noise bytes: keeps the ratio off the floor.
            let n = 6.min(page.len() - i);
            for b in page[i..i + n].iter_mut() {
                *b = b'a' + (rng.next_u64() % 26) as u8;
            }
            i += n;
        }
    }
}

/// Fill a page with content that compresses to roughly half its size
/// under LZRW1 — the `gold` regime ("slightly worse than 2:1").
pub fn fill_2to1(page: &mut [u8], seed: u64) {
    let mut rng = SplitMix64::new(seed ^ 0x2121);
    let mut i = 0usize;
    while i < page.len() {
        if rng.gen_bool(0.40) {
            let token = b"hdr:000 fld=1; ";
            let n = token.len().min(page.len() - i);
            page[i..i + n].copy_from_slice(&token[..n]);
            i += n;
        } else {
            let n = 8.min(page.len() - i);
            for b in page[i..i + n].iter_mut() {
                *b = rng.next_u64() as u8;
            }
            i += n;
        }
    }
}

/// Fill a buffer with values following a small-integer recurrence, the
/// `compare` DP stripe regime: adjacent cells repeat often, so pages
/// compress ~3:1.
pub fn fill_dp_values(buf: &mut [u8], seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut value: u32 = 0;
    for chunk in buf.chunks_mut(4) {
        // A recurrence that frequently repeats and changes slowly.
        if rng.gen_bool(0.7) {
            // keep value
        } else if rng.gen_bool(0.5) {
            value = value.wrapping_add(1);
        } else {
            value = value.saturating_sub(1);
        }
        let le = value.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&le[..n]);
    }
}

/// Measured LZRW1 compressed fraction of a buffer's 4 KB pages: returns
/// `(mean_fraction_of_kept, fraction_of_pages_rejected)` under the 4:3
/// threshold, mirroring Table 1's two columns.
pub fn measure_compressibility(data: &[u8]) -> (f64, f64) {
    use cc_compress::{CompressDecision, Compressor, Lzrw1, ThresholdPolicy};
    let mut lz = Lzrw1::new();
    let threshold = ThresholdPolicy::default();
    let mut kept_in = 0u64;
    let mut kept_out = 0u64;
    let mut rejected = 0u64;
    let mut pages = 0u64;
    let mut buf = Vec::new();
    for page in data.chunks(4096) {
        if page.len() < 4096 {
            break;
        }
        pages += 1;
        let n = lz.compress(page, &mut buf);
        match threshold.evaluate(page.len(), n) {
            CompressDecision::Keep => {
                kept_in += page.len() as u64;
                kept_out += n as u64;
            }
            CompressDecision::Reject => rejected += 1,
        }
    }
    let mean = if kept_in == 0 {
        1.0
    } else {
        kept_out as f64 / kept_in as f64
    };
    (mean, rejected as f64 / pages.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordlist_deterministic_and_distinct() {
        let a = WordList::generate(100, 7);
        let b = WordList::generate(100, 7);
        for i in 0..100 {
            assert_eq!(a.word(i), b.word(i));
        }
        let mut set = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(
                set.insert(a.word(i).to_string()),
                "duplicate {:?}",
                a.word(i)
            );
        }
    }

    #[test]
    fn repetitive_text_compresses_about_3_to_1() {
        let text = repetitive_text(256 * 1024, 1);
        let (mean, rejected) = measure_compressibility(&text);
        // Table 1: sort partial "the compression ratio was about 3:1".
        assert!(
            (0.20..0.45).contains(&mean),
            "partial-sort text mean fraction {mean}"
        );
        assert!(rejected < 0.05, "rejected {rejected}");
    }

    #[test]
    fn shuffled_text_mostly_fails_threshold() {
        let text = shuffled_text(256 * 1024, 2);
        let (_, rejected) = measure_compressibility(&text);
        // Table 1: sort random "about 98% of the pages compressed less
        // than 4:3". Pseudo-English still has letter structure, so we
        // accept anything clearly majority-rejected.
        assert!(rejected > 0.80, "only {rejected} of pages rejected");
    }

    #[test]
    fn thrasher_fill_is_about_4_to_1() {
        let mut page = vec![0u8; 4096];
        let mut fracs = Vec::new();
        for seed in 0..16 {
            fill_4to1(&mut page, seed);
            let (mean, rej) = measure_compressibility(&page);
            assert_eq!(rej, 0.0);
            fracs.push(mean);
        }
        let avg: f64 = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!(
            (0.17..0.33).contains(&avg),
            "thrasher fill fraction {avg} not ~4:1"
        );
    }

    #[test]
    fn gold_fill_is_about_2_to_1() {
        let mut page = vec![0u8; 4096];
        let mut fracs = Vec::new();
        for seed in 0..16 {
            fill_2to1(&mut page, seed);
            let (mean, rej) = measure_compressibility(&page);
            if rej == 0.0 {
                fracs.push(mean);
            } else {
                fracs.push(1.0);
            }
        }
        let avg: f64 = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!((0.40..0.72).contains(&avg), "2:1 fill fraction {avg}");
    }

    #[test]
    fn dp_values_compress_about_3_to_1() {
        let mut buf = vec![0u8; 128 * 1024];
        fill_dp_values(&mut buf, 3);
        let (mean, rej) = measure_compressibility(&buf);
        assert!((0.15..0.45).contains(&mean), "dp fraction {mean}");
        assert!(rej < 0.05);
    }
}
