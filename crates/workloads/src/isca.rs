//! `isca` — a trace-driven multiprocessor cache-coherence simulator.
//!
//! §5.2: *"Another example of an application that benefits from the
//! compression cache is Dubnicki's cache simulator, which is both
//! CPU-intensive and memory-intensive. In a sample run, isca experienced
//! a 50% improvement in execution time, and pages that were compressed
//! during its execution averaged a 3:1 compression ratio."*
//!
//! Dubnicki & LeBlanc (ISCA '92) simulated adjustable-block-size coherent
//! caches. This reimplementation is a real simulator of that family: a
//! directory-based MSI protocol over `processors` private set-associative
//! caches, driven by a synthetic sharing trace. Its hot state — the
//! directory word per memory block plus per-processor tag arrays — is
//! exactly the kind of large, small-integer-valued table the paper found
//! to compress ~3:1.

use cc_sim::System;
use cc_util::{Ns, SplitMix64};

use crate::{fnv1a, Workload, WorkloadSummary};

/// Directory states (MSI).
const DIR_INVALID: u32 = 0;
const DIR_SHARED_BASE: u32 = 1; // 1 + sharer count
const DIR_MODIFIED_BASE: u32 = 0x8000_0000; // | owner id

/// The coherence simulator.
#[derive(Debug, Clone)]
pub struct IscaApp {
    /// Number of simulated processors.
    pub processors: u32,
    /// Simulated memory, in coherence blocks (one directory word each).
    pub memory_blocks: u64,
    /// Private cache: sets per processor.
    pub cache_sets: u32,
    /// Private cache: associativity.
    pub ways: u32,
    /// Trace length in references.
    pub references: u64,
    /// Seed for the synthetic trace.
    pub seed: u64,
    /// CPU think time per simulated reference (the application is
    /// CPU-intensive, not just memory-bound).
    pub think: Ns,
}

impl IscaApp {
    /// Table 1 scale: directory + tags of ~18 MB against 14 MB of memory.
    /// The think time models the protocol bookkeeping the real simulator
    /// did per reference — Dubnicki's isca was "both CPU-intensive and
    /// memory-intensive", and its 43-minute runtime was mostly CPU.
    pub fn table1() -> Self {
        IscaApp {
            processors: 16,
            memory_blocks: 2_250_000, // 18 MB of directory entries
            cache_sets: 4096,
            ways: 4,
            references: 1_200_000,
            seed: 21,
            think: Ns::from_us(1000),
        }
    }

    /// Bytes of simulated state (directory + all tag arrays).
    pub fn state_bytes(&self) -> u64 {
        // Each directory entry is two words: protocol state + metadata
        // (event stamp), as real directories carry version/owner info.
        let dir = self.memory_blocks * 8;
        let tags = self.processors as u64 * self.cache_sets as u64 * self.ways as u64 * 4;
        dir + tags
    }
}

impl Workload for IscaApp {
    fn name(&self) -> String {
        "isca".into()
    }

    fn run(&mut self, sys: &mut System) -> WorkloadSummary {
        // Layout: [directory entries (state, meta)][per-proc tag arrays].
        let dir_bytes = self.memory_blocks * 8;
        let tags_per_proc = self.cache_sets as u64 * self.ways as u64;
        let seg = sys.create_segment(self.state_bytes());
        let dir_off = |block: u64| block * 8;
        let tag_off = |proc: u32, set: u32, way: u32| {
            dir_bytes
                + (proc as u64 * tags_per_proc + set as u64 * self.ways as u64 + way as u64) * 4
        };

        let mut rng = SplitMix64::new(self.seed);
        let mut checksum = 0u64;
        let mut invalidations = 0u64;
        let mut misses = 0u64;

        // Hot regions per processor create temporal locality; a shared
        // region creates coherence traffic.
        let hot_span = self.memory_blocks / (self.processors as u64 * 4);
        let shared_span = self.memory_blocks / 16;

        for _ in 0..self.references {
            let proc = rng.gen_range(self.processors as u64) as u32;
            let is_write = rng.gen_bool(0.3);
            let block = if rng.gen_bool(0.7) {
                // Private hot region.
                proc as u64 * hot_span + rng.gen_range(hot_span)
            } else if rng.gen_bool(0.5) {
                // Shared region (coherence misses).
                self.memory_blocks - shared_span + rng.gen_range(shared_span)
            } else {
                // Cold uniform.
                rng.gen_range(self.memory_blocks)
            };

            sys.compute(self.think);

            // Probe the private cache.
            let set = (block % self.cache_sets as u64) as u32;
            let wanted_tag = (block / self.cache_sets as u64) as u32 + 1; // 0 = empty
            let mut hit_way = None;
            for way in 0..self.ways {
                let t = sys.read_u32(seg, tag_off(proc, set, way));
                if t == wanted_tag {
                    hit_way = Some(way);
                    break;
                }
            }

            if hit_way.is_none() {
                misses += 1;
                // Fill: evict a pseudo-LRU way (rotating), consult the
                // directory.
                let victim_way = (misses % self.ways as u64) as u32;
                sys.write_u32(seg, tag_off(proc, set, victim_way), wanted_tag);
            }

            // Directory transaction.
            let d = sys.read_u32(seg, dir_off(block));
            let new_state = if is_write {
                // Invalidate sharers / previous owner.
                if (DIR_SHARED_BASE..DIR_MODIFIED_BASE).contains(&d) {
                    let sharers = d - DIR_SHARED_BASE;
                    invalidations += sharers as u64;
                    // Touch one representative sharer's tag array (the
                    // invalidation message).
                    if sharers > 0 {
                        let other = (proc + 1) % self.processors;
                        let _ = sys.read_u32(seg, tag_off(other, set, 0));
                    }
                }
                DIR_MODIFIED_BASE | proc
            } else if d >= DIR_MODIFIED_BASE {
                // Downgrade owner to shared.
                invalidations += 1;
                DIR_SHARED_BASE + 1
            } else if d == DIR_INVALID {
                DIR_SHARED_BASE + 1
            } else {
                (d + 1).min(DIR_SHARED_BASE + self.processors)
            };
            sys.write_u32(seg, dir_off(block), new_state);
            // Metadata word: event stamp (adds realistic entropy to the
            // directory pages; the paper measured isca's pages at ~3:1,
            // not the near-zero entropy of bare MSI states).
            let stamp = (misses as u32) ^ ((invalidations as u32) << 12) ^ (block as u32);
            sys.write_u32(seg, dir_off(block) + 4, stamp);
        }

        checksum = fnv1a(checksum, &misses.to_le_bytes());
        checksum = fnv1a(checksum, &invalidations.to_le_bytes());
        // Fold a sample of directory state.
        for i in 0..64 {
            let b = (self.memory_blocks / 67) * i % self.memory_blocks;
            let d = sys.read_u32(seg, dir_off(b));
            checksum = fnv1a(checksum, &d.to_le_bytes());
        }
        WorkloadSummary {
            checksum,
            operations: self.references,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Mode, SimConfig};

    fn small() -> IscaApp {
        IscaApp {
            processors: 4,
            memory_blocks: 100_000, // 800 KB directory
            cache_sets: 256,
            ways: 2,
            references: 30_000,
            seed: 9,
            think: Ns::ZERO,
        }
    }

    #[test]
    fn checksums_match_across_modes() {
        let mut sums = Vec::new();
        for mode in [Mode::Std, Mode::Cc] {
            let mut sys = System::new(SimConfig::decstation(512 * 1024, mode));
            sums.push(small().run(&mut sys).checksum);
        }
        assert_eq!(sums[0], sums[1]);
    }

    #[test]
    fn directory_pages_compress_about_3_to_1() {
        let mut sys = System::new(SimConfig::decstation(512 * 1024, Mode::Cc));
        small().run(&mut sys);
        let core = sys.core_stats().unwrap();
        assert!(core.compress_attempts > 0);
        let frac = core.mean_kept_fraction();
        // Paper: 32% average for isca. Directory words are mostly small
        // integers; anywhere in the 3:1 neighborhood is faithful.
        assert!((0.05..0.5).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let mut sys = System::new(SimConfig::decstation(512 * 1024, Mode::Std));
            small().run(&mut sys).checksum
        };
        assert_eq!(run(), run());
    }
}
