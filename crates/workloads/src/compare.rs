//! `compare` — file differencing by banded dynamic programming.
//!
//! §5.2: *"Lopresti implemented file differencing using a dynamic
//! programming algorithm... The application uses a two-dimensional array,
//! of which only a wide stripe along the diagonal is accessed. It works
//! its way through the array in one direction, and then reverses
//! direction and goes linearly back to the beginning. Elements along the
//! diagonal are based on a recurrence relation that causes frequent
//! repetitions in values, which in turn suggests that the data in the
//! array are extremely compressible."*
//!
//! This is a real banded edit-distance computation over two generated
//! texts: a forward fill of the DP stripe followed by a backward
//! traceback. The stripe lives in simulated memory as 16-bit cells
//! (banded distances between similar texts stay far below 65k — the
//! original systolic-array formulation used narrow cells too); cell
//! values follow the Levenshtein recurrence, whose slow growth and
//! frequent repetition make the pages compress close to the paper's 3:1
//! under LZRW1 (verified in tests).

use cc_sim::System;
use cc_util::SplitMix64;

use crate::{datagen::WordList, fnv1a, Workload, WorkloadSummary};

/// The differencing application.
#[derive(Debug, Clone)]
pub struct CompareApp {
    /// Length of each input text in bytes.
    pub text_len: usize,
    /// Band half-width (cells per row = `2 * band + 1`).
    pub band: usize,
    /// Seed for the generated inputs.
    pub seed: u64,
}

impl CompareApp {
    /// Table 1 scale: a DP stripe of roughly 20 MB against ~14 MB of user
    /// memory.
    pub fn table1() -> Self {
        CompareApp {
            text_len: 40_000,
            band: 128,
            seed: 11,
        }
    }

    /// Cells per row.
    fn width(&self) -> usize {
        2 * self.band + 1
    }

    /// Stripe size in bytes (2-byte cells).
    pub fn stripe_bytes(&self) -> u64 {
        (self.text_len as u64 + 1) * self.width() as u64 * 2
    }

    /// Generate the two input texts: `b` is a mutated copy of `a`, so the
    /// optimal alignment stays near the diagonal (the premise of banding).
    fn inputs(&self) -> (Vec<u8>, Vec<u8>) {
        let dict = WordList::generate(256, self.seed);
        let mut rng = SplitMix64::new(self.seed ^ 0xD1FF);
        let mut a = Vec::with_capacity(self.text_len);
        while a.len() < self.text_len {
            a.extend_from_slice(dict.word(rng.gen_index(dict.len())).as_bytes());
            a.push(b' ');
        }
        a.truncate(self.text_len);
        // Mutate ~3% of bytes.
        let mut b = a.clone();
        let edits = self.text_len / 33;
        for _ in 0..edits {
            let i = rng.gen_index(b.len());
            b[i] = b'a' + (rng.next_u64() % 26) as u8;
        }
        (a, b)
    }
}

const INF: u16 = u16::MAX / 4;

impl Workload for CompareApp {
    fn name(&self) -> String {
        "compare".into()
    }

    fn run(&mut self, sys: &mut System) -> WorkloadSummary {
        let (a, b) = self.inputs();
        let n = a.len();
        let w = self.width();
        let band = self.band as i64;
        let seg = sys.create_segment(self.stripe_bytes());
        let cell = |i: usize, k: usize| -> u64 { ((i * w + k) * 2) as u64 };
        let mut ops = 0u64;

        // Row 0: dp[0][j] = j for j in the band.
        for k in 0..w {
            let j = k as i64 - band; // j - i with i = 0
            let v = if j < 0 { INF } else { j as u16 };
            sys.write_u16(seg, cell(0, k), v);
            ops += 1;
        }

        // Forward pass: fill the stripe row by row.
        for i in 1..=n {
            for k in 0..w {
                let j = i as i64 + k as i64 - band;
                let v = if j < 0 || j > n as i64 {
                    INF
                } else if j == 0 {
                    (i as u64).min(INF as u64) as u16
                } else {
                    // dp[i][j] over band coordinates:
                    //   diagonal  dp[i-1][j-1] -> (i-1, k)
                    //   delete    dp[i-1][j]   -> (i-1, k+1)
                    //   insert    dp[i][j-1]   -> (i,   k-1)
                    let sub = if a[i - 1] == b[j as usize - 1] { 0 } else { 1 };
                    let diag = sys.read_u16(seg, cell(i - 1, k)).saturating_add(sub);
                    let del = if k + 1 < w {
                        sys.read_u16(seg, cell(i - 1, k + 1)).saturating_add(1)
                    } else {
                        INF
                    };
                    let ins = if k > 0 {
                        sys.read_u16(seg, cell(i, k - 1)).saturating_add(1)
                    } else {
                        INF
                    };
                    diag.min(del).min(ins)
                };
                sys.write_u16(seg, cell(i, k), v.min(INF));
                ops += 1;
            }
        }

        // The distance: dp[n][n] is at k = band.
        let distance = sys.read_u16(seg, cell(n, self.band));

        // Backward pass: traceback, reading rows linearly back to the
        // start (the paper's "reverses direction" phase). We rescan each
        // row fully to reproduce the linear reverse sweep.
        let mut checksum = fnv1a(0, &distance.to_le_bytes());
        let mut i = n;
        let mut k = self.band;
        while i > 0 {
            // Linear reverse sweep over the row (page-sequential).
            let mut row_min = INF;
            for kk in (0..w).rev() {
                row_min = row_min.min(sys.read_u16(seg, cell(i, kk)));
                ops += 1;
            }
            checksum = fnv1a(checksum, &row_min.to_le_bytes());
            // Follow the best predecessor.
            let here = sys.read_u16(seg, cell(i, k));
            let diag = sys.read_u16(seg, cell(i - 1, k));
            let del = if k + 1 < w {
                sys.read_u16(seg, cell(i - 1, k + 1))
            } else {
                INF
            };
            let ins = if k > 0 {
                sys.read_u16(seg, cell(i, k - 1))
            } else {
                INF
            };
            let _ = here;
            if diag <= del && diag <= ins {
                i -= 1;
            } else if del <= ins {
                i -= 1;
                k += 1;
                if k >= w {
                    k = w - 1;
                }
            } else if k > 0 {
                k -= 1;
            } else {
                i -= 1;
            }
            ops += 4;
        }

        WorkloadSummary {
            checksum,
            operations: ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Mode, SimConfig};

    fn small() -> CompareApp {
        CompareApp {
            text_len: 3000,
            band: 16,
            seed: 3,
        }
    }

    #[test]
    fn distance_is_plausible_and_mode_independent() {
        let mut sums = Vec::new();
        for mode in [Mode::Std, Mode::Cc] {
            let mut sys = System::new(SimConfig::decstation(1024 * 1024, mode));
            let mut app = small();
            sums.push(app.run(&mut sys).checksum);
        }
        assert_eq!(sums[0], sums[1], "DP result depends on paging mode!");
    }

    #[test]
    fn identical_texts_have_zero_distance() {
        // With no mutations (force by seeding inputs identical), the
        // distance must be 0; checked via a tiny direct computation.
        let mut app = small();
        app.text_len = 120;
        let (a, _) = app.inputs();
        // Run the same DP on (a, a) on the host to validate the banded
        // recurrence implementation.
        let n = a.len();
        let w = app.width();
        let band = app.band as i64;
        let mut dp = vec![vec![INF; w]; n + 1];
        for (k, cell) in dp[0].iter_mut().enumerate() {
            let j = k as i64 - band;
            if j >= 0 {
                *cell = j as u16;
            }
        }
        for i in 1..=n {
            for k in 0..w {
                let j = i as i64 + k as i64 - band;
                if j < 0 || j > n as i64 {
                    continue;
                }
                if j == 0 {
                    dp[i][k] = i as u16;
                    continue;
                }
                let sub = if a[i - 1] == a[j as usize - 1] { 0 } else { 1 };
                let mut best = dp[i - 1][k].saturating_add(sub);
                if k + 1 < w {
                    best = best.min(dp[i - 1][k + 1].saturating_add(1));
                }
                if k > 0 {
                    best = best.min(dp[i][k - 1].saturating_add(1));
                }
                dp[i][k] = best;
            }
        }
        assert_eq!(dp[n][app.band], 0);
    }

    #[test]
    fn stripe_pages_compress_well() {
        // Run a small instance and check the cache's measured ratio: the
        // paper reports ~3:1 (31%) for compare.
        let mut sys = System::new(SimConfig::decstation(128 * 1024, Mode::Cc));
        let mut app = small();
        app.run(&mut sys);
        let core = sys.core_stats().unwrap();
        assert!(core.compress_attempts > 0, "must have paged");
        let frac = core.mean_kept_fraction();
        assert!(
            (0.05..0.55).contains(&frac),
            "stripe compressed fraction {frac}"
        );
        assert!(core.rejected_fraction() < 0.10);
    }
}
