//! The paper's workloads, rebuilt as real programs against the simulator.
//!
//! §5 of the paper evaluates the compression cache with one synthetic
//! bound (`thrasher`) and five applications. None of the originals are
//! available, so each is reimplemented from its description (DESIGN.md §3
//! documents the substitutions):
//!
//! | paper | here | behavior reproduced |
//! |---|---|---|
//! | `thrasher` | [`thrasher::Thrasher`] | sequential cyclic sweep, one word per page, ro/rw |
//! | `compare` (Lipton–Lopresti differ) | [`compare::CompareApp`] | banded DP over two texts, forward then backward pass, highly compressible values |
//! | `isca` (Dubnicki cache simulator) | [`isca::IscaApp`] | trace-driven multi-processor coherence simulation, CPU+memory intensive, ~3:1 pages |
//! | `sort` | [`sortapp::SortApp`] | in-place quicksort over ~12 MB of words; `random` and `partial` compressibility regimes |
//! | `gold` (Gold Mailer index engine) | [`gold::GoldApp`] | in-memory inverted index: create / cold queries / warm queries, ~2:1 pages, nonsequential access |
//!
//! Every workload runs *real computation on real bytes* inside the
//! simulated address space and returns a checksum; the std and cc modes
//! must produce identical checksums, which doubles as an end-to-end
//! integrity test of the entire paging machinery.

#![warn(missing_docs)]

pub mod compare;
pub mod datagen;
pub mod gold;
pub mod isca;
pub mod sortapp;
pub mod thrasher;

use cc_sim::System;

/// A runnable workload.
pub trait Workload {
    /// Stable name for reports (matches the paper's Table 1 rows).
    fn name(&self) -> String;

    /// Run to completion against `sys`, returning an application-level
    /// checksum (identical across system modes) and counters.
    fn run(&mut self, sys: &mut System) -> WorkloadSummary;
}

/// What a workload produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSummary {
    /// Application-level result checksum; must not depend on the mode.
    pub checksum: u64,
    /// Application-level operation count (for ops/sec style reporting).
    pub operations: u64,
}

/// FNV-1a, the checksum used by all workloads.
pub fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = if acc == 0 { 0xcbf29ce484222325 } else { acc };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_changes_with_input() {
        let a = fnv1a(0, b"hello");
        let b = fnv1a(0, b"hellp");
        assert_ne!(a, b);
        // Chaining works.
        let c = fnv1a(fnv1a(0, b"he"), b"llo");
        assert_eq!(c, a);
    }
}
