//! `sort` — in-place quicksort over a large text of words.
//!
//! §5.2: *"I considered an application that performs quicksort on a file
//! containing approximately 12 Mbytes of text (numerous copies of each
//! word in /usr/dict/words). If the text were completely unsorted to
//! begin with (sort random), so there was minimal repetition of strings
//! within an individual 4-Kbyte page, the sort program ran significantly
//! more slowly on the compression cache than the unmodified system —
//! primarily because about 98% of the pages compressed less than 4:3...
//! sort's heap compressed much better if the input file contained
//! frequent repetitions of words ... (sort partial). In this case the
//! compression ratio was about 3:1 and the application ran 23% faster."*
//!
//! The text is represented as fixed-width 16-byte records sorted in
//! place with median-of-three quicksort plus insertion sort for small
//! partitions — the classic memory-access pattern: wide partition sweeps
//! at the top of the recursion, tight locality at the bottom.

use cc_sim::System;
use cc_util::Ns;
use cc_vm::SegId;

use crate::{datagen, fnv1a, Workload, WorkloadSummary};

/// Record width: one word per record, padded/truncated.
pub const RECORD: usize = 16;

/// Input compressibility regime (the two Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortInput {
    /// Near-sorted with heavy in-page repetition (~3:1 pages).
    Partial,
    /// Globally shuffled words (most pages fail the threshold).
    Random,
}

/// The sort application.
#[derive(Debug, Clone)]
pub struct SortApp {
    /// Input regime.
    pub input: SortInput,
    /// Text size in bytes (rounded down to whole records).
    pub text_bytes: usize,
    /// Seed.
    pub seed: u64,
    /// CPU time per record comparison (sort(1) on a 25 MHz machine spent
    /// hundreds of instructions per line comparison; this is what made
    /// the paper's 12 MB sort take 13-26 minutes).
    pub cmp_cost: Ns,
}

impl SortApp {
    /// Table 1 scale. The paper sorted ~12 MB with ~14 MB of user memory
    /// shared with the rest of the system; our simulator gives the
    /// workload the machine exclusively, so the text is sized to page
    /// comparably (see EXPERIMENTS.md).
    pub fn table1(input: SortInput) -> Self {
        SortApp {
            input,
            text_bytes: 18 * 1024 * 1024,
            seed: 31,
            cmp_cost: Ns::from_us(25),
        }
    }

    fn records(&self) -> u64 {
        (self.text_bytes / RECORD) as u64
    }
}

struct Sorter<'a> {
    sys: &'a mut System,
    seg: SegId,
    comparisons: u64,
    swaps: u64,
    cmp_cost: Ns,
}

impl Sorter<'_> {
    fn key(&mut self, i: u64) -> [u8; RECORD] {
        let mut k = [0u8; RECORD];
        self.sys.read_slice(self.seg, i * RECORD as u64, &mut k);
        k
    }

    fn write_rec(&mut self, i: u64, k: &[u8; RECORD]) {
        self.sys.write_slice(self.seg, i * RECORD as u64, k);
    }

    fn swap(&mut self, i: u64, j: u64) {
        if i == j {
            return;
        }
        let a = self.key(i);
        let b = self.key(j);
        self.write_rec(i, &b);
        self.write_rec(j, &a);
        self.swaps += 1;
    }

    fn less(&mut self, a: &[u8; RECORD], b: &[u8; RECORD]) -> bool {
        self.comparisons += 1;
        if self.cmp_cost > Ns::ZERO {
            self.sys.compute(self.cmp_cost);
        }
        a < b
    }

    /// Iterative quicksort with insertion sort below 24 records.
    fn sort(&mut self, lo0: u64, hi0: u64) {
        let mut stack = vec![(lo0, hi0)];
        while let Some((lo, hi)) = stack.pop() {
            if hi <= lo {
                continue;
            }
            let len = hi - lo + 1;
            if len <= 24 {
                self.insertion(lo, hi);
                continue;
            }
            // Median of three.
            let mid = lo + len / 2;
            let a = self.key(lo);
            let b = self.key(mid);
            let c = self.key(hi);
            let pivot = {
                // Median selection without extra comparisons bookkeeping.
                let mut v = [a, b, c];
                v.sort_unstable();
                self.comparisons += 3;
                v[1]
            };
            // Hoare partition.
            let mut i = lo;
            let mut j = hi;
            loop {
                loop {
                    let k = self.key(i);
                    if !self.less(&k, &pivot) {
                        break;
                    }
                    i += 1;
                }
                loop {
                    let k = self.key(j);
                    if !self.less(&pivot, &k) {
                        break;
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                if i >= j {
                    break;
                }
                self.swap(i, j);
                i += 1;
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            // Recurse on [lo, j] and [j+1, hi].
            if j > lo {
                stack.push((lo, j));
            }
            if j + 1 < hi {
                stack.push((j + 1, hi));
            }
        }
    }

    fn insertion(&mut self, lo: u64, hi: u64) {
        let mut i = lo + 1;
        while i <= hi {
            let k = self.key(i);
            let mut j = i;
            while j > lo {
                let prev = self.key(j - 1);
                if !self.less(&k, &prev) {
                    break;
                }
                self.write_rec(j, &prev);
                j -= 1;
            }
            self.write_rec(j, &k);
            i += 1;
        }
    }
}

impl Workload for SortApp {
    fn name(&self) -> String {
        match self.input {
            SortInput::Partial => "sort partial".into(),
            SortInput::Random => "sort random".into(),
        }
    }

    fn run(&mut self, sys: &mut System) -> WorkloadSummary {
        let text = match self.input {
            SortInput::Partial => datagen::repetitive_text(self.text_bytes, self.seed),
            SortInput::Random => datagen::shuffled_text(self.text_bytes, self.seed),
        };
        let nrec = self.records();
        let seg = sys.create_segment(nrec * RECORD as u64);

        // Load phase: pack each newline-terminated word into a record.
        // Records are padded to RECORD bytes the way the regime demands:
        // the paper's text had no padding, so zero-filling would add
        // artificial compressibility. `Partial` pads by cycling the word
        // (repetition within the page, like a sorted file); `Random` pads
        // with bytes derived from the word (as incompressible as the
        // shuffled text itself). Padding is deterministic, so both system
        // modes sort identical data.
        let mut rec = [0u8; RECORD];
        let mut widx = 0u64;
        let mut start = 0usize;
        for (i, &b) in text.iter().enumerate() {
            if b == b'\n' || i == text.len() - 1 {
                let word = &text[start..i];
                let n = word.len().min(RECORD);
                rec[..n].copy_from_slice(&word[..n]);
                match self.input {
                    SortInput::Partial => {
                        for j in n..RECORD {
                            rec[j] = word[(j - n) % word.len().max(1)];
                        }
                    }
                    SortInput::Random => {
                        let mut h = crate::fnv1a(0, word);
                        for slot in rec[n..].iter_mut() {
                            h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
                            *slot = (h >> 33) as u8;
                        }
                    }
                }
                sys.write_slice(seg, widx * RECORD as u64, &rec);
                widx += 1;
                if widx == nrec {
                    break;
                }
                start = i + 1;
            }
        }
        // Pad the tail with copies of the last record (keeps nrec fixed).
        while widx < nrec {
            sys.write_slice(seg, widx * RECORD as u64, &rec);
            widx += 1;
        }

        let mut sorter = Sorter {
            sys,
            seg,
            comparisons: 0,
            swaps: 0,
            cmp_cost: self.cmp_cost,
        };
        sorter.sort(0, nrec - 1);
        let (comparisons, swaps) = (sorter.comparisons, sorter.swaps);

        // Verify order and checksum a sample.
        let mut checksum = 0u64;
        let mut prev = [0u8; RECORD];
        let step = (nrec / 4096).max(1);
        let mut i = 0u64;
        let mut buf = [0u8; RECORD];
        while i < nrec {
            sys.read_slice(seg, i * RECORD as u64, &mut buf);
            assert!(prev <= buf, "sort produced out-of-order records at {i}");
            checksum = fnv1a(checksum, &buf);
            prev = buf;
            i += step;
        }
        WorkloadSummary {
            checksum,
            operations: comparisons + swaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_sim::{Mode, SimConfig};

    fn small(input: SortInput) -> SortApp {
        SortApp {
            input,
            text_bytes: 192 * 1024,
            seed: 4,
            cmp_cost: Ns::ZERO,
        }
    }

    #[test]
    fn sorts_correctly_in_both_modes() {
        for input in [SortInput::Partial, SortInput::Random] {
            let mut sums = Vec::new();
            for mode in [Mode::Std, Mode::Cc] {
                let mut sys = System::new(SimConfig::decstation(64 * 1024, mode));
                sums.push(small(input).run(&mut sys).checksum);
            }
            assert_eq!(sums[0], sums[1], "{input:?}");
        }
    }

    #[test]
    fn random_input_mostly_rejected_partial_mostly_kept() {
        let rejected = |input| {
            let mut sys = System::new(SimConfig::decstation(64 * 1024, Mode::Cc));
            small(input).run(&mut sys);
            sys.core_stats().unwrap().rejected_fraction()
        };
        let partial = rejected(SortInput::Partial);
        let random = rejected(SortInput::Random);
        assert!(partial < 0.3, "partial rejected {partial}");
        assert!(random > 0.6, "random rejected {random}");
        assert!(random > partial + 0.4);
    }
}
