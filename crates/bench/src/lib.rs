//! Shared machinery for the figure/table harnesses.
//!
//! Each binary in `src/bin/` regenerates one of the paper's exhibits:
//!
//! | binary | exhibit |
//! |---|---|
//! | `fig1a` | Figure 1(a): analytic bandwidth speedup surface |
//! | `fig1b` | Figure 1(b): analytic reference-time speedup surface |
//! | `fig3`  | Figure 3(a)/(b): measured thrasher sweep, std vs cc, ro/rw |
//! | `table1` | Table 1: the seven application rows |
//! | `ablation` | design-choice sweeps (§4.2 bias, §4.3 spanning, threshold, codec, adaptive disable, backing stores) |
//! | `overheads` | §4.4 memory-overhead accounting |
//!
//! Binaries accept a `--quick` flag that shrinks problem sizes by ~8x for
//! smoke runs; full-scale settings match EXPERIMENTS.md.

use cc_sim::{Mode, SimConfig, System};
use cc_util::Ns;
use cc_workloads::{Workload, WorkloadSummary};

pub mod smoke;

/// Measurements from one std-vs-cc pair of runs.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Workload name.
    pub name: String,
    /// Virtual elapsed time, unmodified system.
    pub std_time: Ns,
    /// Virtual elapsed time, compression cache.
    pub cc_time: Ns,
    /// Speedup (std / cc; > 1 means the cache wins).
    pub speedup: f64,
    /// Mean kept compressed fraction (compressed/original) from the cc run.
    pub kept_fraction: f64,
    /// Fraction of compression attempts rejected by the 4:3 threshold.
    pub rejected_fraction: f64,
    /// The cc run's full report.
    pub cc_report: cc_sim::SystemReport,
    /// The std run's full report.
    pub std_report: cc_sim::SystemReport,
}

/// Run `make_workload()` under both modes of `make_config(mode)` and
/// compare. Panics if the two runs' checksums differ (the modes must
/// compute identical results).
pub fn run_pair<W, F, G>(mut make_config: G, mut make_workload: F) -> PairResult
where
    W: Workload,
    F: FnMut() -> W,
    G: FnMut(Mode) -> SimConfig,
{
    let mut outputs: Vec<(Ns, WorkloadSummary, cc_sim::SystemReport)> = Vec::new();
    let mut name = String::new();
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = System::new(make_config(mode));
        let mut w = make_workload();
        name = w.name();
        let summary = w.run(&mut sys);
        outputs.push((sys.now(), summary, sys.report()));
    }
    assert_eq!(
        outputs[0].1.checksum, outputs[1].1.checksum,
        "{name}: std and cc runs computed different results"
    );
    let (std_time, cc_time) = (outputs[0].0, outputs[1].0);
    let cc_report = outputs[1].2.clone();
    PairResult {
        name,
        std_time,
        cc_time,
        speedup: std_time.as_ns() as f64 / cc_time.as_ns().max(1) as f64,
        kept_fraction: cc_report.mean_kept_fraction,
        rejected_fraction: cc_report.rejected_fraction,
        cc_report,
        std_report: outputs.swap_remove(0).2,
    }
}

/// Render Table 1-style rows.
pub fn render_table1(rows: &[PairResult]) -> String {
    let header = [
        "Application",
        "Time (std)",
        "Time (CC)",
        "Speedup",
        "Compression Ratio (%)",
        "Uncompressible pages (%)",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                cc_util::fmt::min_sec(r.std_time.as_secs_f64()),
                cc_util::fmt::min_sec(r.cc_time.as_secs_f64()),
                format!("{:.2}", r.speedup),
                format!("{:.0}", r.kept_fraction * 100.0),
                format!("{:.1}", r.rejected_fraction * 100.0),
            ]
        })
        .collect();
    cc_util::fmt::table(&header, &body)
}

/// Whether `--quick` was passed.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Scale a size down by 8 in quick mode.
pub fn scaled(full: u64) -> u64 {
    if quick_mode() {
        (full / 8).max(1)
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_workloads::thrasher::Thrasher;

    #[test]
    fn run_pair_checks_checksums_and_reports() {
        let mb = 1024 * 1024;
        let result = run_pair(
            |mode| SimConfig::decstation(2 * mb, mode),
            || {
                let mut t = Thrasher::figure3(4 * mb as u64, true);
                t.passes = 2;
                t
            },
        );
        assert!(result.speedup > 1.0, "cc should win: {result:?}");
        assert!(result.cc_report.compress_attempts > 0);
        assert_eq!(result.std_report.compress_attempts, 0);
        let table = render_table1(std::slice::from_ref(&result));
        assert!(table.contains("thrasher"));
        assert!(table.contains("Speedup"));
    }
}
