//! `ccsim` — a command-line front end for the simulator.
//!
//! Runs any paper workload (or the synthetic thrasher) under any machine /
//! device / policy configuration and prints the run report, optionally
//! comparing std vs cc. The tool a downstream user reaches for first.
//!
//! ```text
//! ccsim [options]
//!   --workload NAME     thrasher | compare | isca | sort-partial |
//!                       sort-random | gold-create | gold-cold | gold-warm
//!                       (default thrasher)
//!   --memory SIZE       user memory, e.g. 6M, 14M, 512K (default 6M)
//!   --space SIZE        thrasher address space (default 12M)
//!   --passes N          thrasher passes (default 3)
//!   --ro                thrasher read-only (default read-write)
//!   --mode MODE         std | cc | both (default both)
//!   --disk NAME         rz57 | mobile | ethernet | wireless (default rz57)
//!   --codec NAME        lzrw1 | lzss | rle | null (default lzrw1)
//!   --bias X            cc_age_scale (default 0.15)
//!   --threshold N:D     keep-compressed threshold (default 4:3)
//!   --no-span           forbid fragments spanning file blocks
//!   --no-readahead      disable swap readahead
//!   --adaptive N        adaptive disable after N rejects (default off)
//!   --compress-file-cache  enable the §6 file-cache extension
//!   --scale X           scale workload size by X (default 1.0)
//!   --seed N            workload seed
//! ```

use cc_compress::ThresholdPolicy;
use cc_disk::DiskParams;
use cc_sim::{CodecKind, Mode, SimConfig, System};
use cc_util::Ns;
use cc_workloads::{
    compare::CompareApp,
    gold::{GoldApp, GoldPhase, GoldWorkload},
    isca::IscaApp,
    sortapp::{SortApp, SortInput},
    thrasher::Thrasher,
    Workload,
};

#[derive(Debug)]
struct Args {
    workload: String,
    memory: u64,
    space: u64,
    passes: u32,
    ro: bool,
    mode: String,
    disk: String,
    codec: String,
    bias: f64,
    threshold: (u32, u32),
    no_span: bool,
    no_readahead: bool,
    adaptive: u32,
    compress_file_cache: bool,
    scale: f64,
    seed: u64,
}

fn parse_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1024u64),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1024 * 1024),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("bad size {s:?}: {e}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: "thrasher".into(),
        memory: 6 * 1024 * 1024,
        space: 12 * 1024 * 1024,
        passes: 3,
        ro: false,
        mode: "both".into(),
        disk: "rz57".into(),
        codec: "lzrw1".into(),
        bias: 0.15,
        threshold: (4, 3),
        no_span: false,
        no_readahead: false,
        adaptive: 0,
        compress_file_cache: false,
        scale: 1.0,
        seed: 0x5EED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workload" => args.workload = value("--workload")?,
            "--memory" => args.memory = parse_size(&value("--memory")?)?,
            "--space" => args.space = parse_size(&value("--space")?)?,
            "--passes" => {
                args.passes = value("--passes")?
                    .parse()
                    .map_err(|e| format!("bad passes: {e}"))?
            }
            "--ro" => args.ro = true,
            "--mode" => args.mode = value("--mode")?,
            "--disk" => args.disk = value("--disk")?,
            "--codec" => args.codec = value("--codec")?,
            "--bias" => {
                args.bias = value("--bias")?
                    .parse()
                    .map_err(|e| format!("bad bias: {e}"))?
            }
            "--threshold" => {
                let v = value("--threshold")?;
                let (n, d) = v
                    .split_once(':')
                    .ok_or_else(|| format!("threshold must be N:D, got {v:?}"))?;
                args.threshold = (
                    n.parse().map_err(|e| format!("bad threshold: {e}"))?,
                    d.parse().map_err(|e| format!("bad threshold: {e}"))?,
                );
            }
            "--no-span" => args.no_span = true,
            "--no-readahead" => args.no_readahead = true,
            "--adaptive" => {
                args.adaptive = value("--adaptive")?
                    .parse()
                    .map_err(|e| format!("bad adaptive: {e}"))?
            }
            "--compress-file-cache" => args.compress_file_cache = true,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad scale: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "ccsim: run a compression-cache simulation
  --workload NAME   thrasher | compare | isca | sort-partial | sort-random |
                    gold-create | gold-cold | gold-warm   (default thrasher)
  --memory SIZE     user memory (default 6M)      --space SIZE  thrasher space (default 12M)
  --passes N        thrasher passes (default 3)   --ro          thrasher read-only
  --mode MODE       std | cc | both (default both)
  --disk NAME       rz57 | mobile | ethernet | wireless
  --codec NAME      lzrw1 | lzss | rle | null
  --bias X          cc_age_scale (default 0.15)   --threshold N:D (default 4:3)
  --no-span --no-readahead --adaptive N --compress-file-cache
  --scale X         scale workload size           --seed N";

fn build_config(a: &Args, mode: Mode) -> SimConfig {
    let mut cfg = SimConfig::decstation(a.memory as usize, mode);
    cfg.seed = a.seed;
    cfg.disk = match a.disk.as_str() {
        "rz57" => DiskParams::rz57(),
        "mobile" => DiskParams::mobile_hdd(),
        "ethernet" => DiskParams::ethernet_10mbps(),
        "wireless" => DiskParams::wireless_2mbps(),
        other => {
            eprintln!("unknown disk {other:?}");
            std::process::exit(2);
        }
    };
    cfg.cc.codec = match a.codec.as_str() {
        "lzrw1" => CodecKind::Lzrw1 {
            table_bytes: 16 * 1024,
        },
        "lzss" => CodecKind::Lzss,
        "rle" => CodecKind::Rle,
        "null" => CodecKind::Null,
        other => {
            eprintln!("unknown codec {other:?}");
            std::process::exit(2);
        }
    };
    cfg.cc.cc_age_scale = a.bias;
    cfg.cc.threshold = ThresholdPolicy::new(a.threshold.0, a.threshold.1);
    cfg.cc.allow_span = !a.no_span;
    cfg.cc.swap_readahead = !a.no_readahead;
    cfg.cc.adaptive_disable_after = a.adaptive;
    cfg.cc.compress_file_cache = a.compress_file_cache;
    cfg
}

fn build_workload(a: &Args) -> Box<dyn Workload> {
    let s = a.scale;
    let scaled = |x: u64| ((x as f64 * s) as u64).max(1);
    match a.workload.as_str() {
        "thrasher" => {
            let mut t = Thrasher::figure3(scaled(a.space), !a.ro);
            t.passes = a.passes;
            Box::new(t)
        }
        "compare" => {
            let mut w = CompareApp::table1();
            w.text_len = scaled(w.text_len as u64) as usize;
            w.seed = a.seed;
            Box::new(w)
        }
        "isca" => {
            let mut w = IscaApp::table1();
            w.memory_blocks = scaled(w.memory_blocks);
            w.references = scaled(w.references);
            w.seed = a.seed;
            Box::new(w)
        }
        "sort-partial" | "sort-random" => {
            let input = if a.workload == "sort-partial" {
                SortInput::Partial
            } else {
                SortInput::Random
            };
            let mut w = SortApp::table1(input);
            w.text_bytes = scaled(w.text_bytes as u64) as usize;
            w.seed = a.seed;
            Box::new(w)
        }
        "gold-create" | "gold-cold" | "gold-warm" => {
            let phase = match a.workload.as_str() {
                "gold-create" => GoldPhase::Create,
                "gold-cold" => GoldPhase::Cold,
                _ => GoldPhase::Warm,
            };
            let mut app = GoldApp::table1();
            app.messages = scaled(app.messages as u64) as u32;
            app.queries = scaled(app.queries as u64) as u32;
            app.seed = a.seed;
            Box::new(GoldWorkload { app, phase })
        }
        other => {
            eprintln!("unknown workload {other:?} (try --help)");
            std::process::exit(2);
        }
    }
}

fn run_one(a: &Args, mode: Mode) -> (Ns, cc_sim::SystemReport, u64) {
    let mut sys = System::new(build_config(a, mode));
    let mut w = build_workload(a);
    let summary = w.run(&mut sys);
    (sys.now(), sys.report(), summary.checksum)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ccsim: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "ccsim: workload={} memory={} disk={} codec={} bias={}",
        args.workload,
        cc_util::fmt::bytes(args.memory),
        args.disk,
        args.codec,
        args.bias
    );

    match args.mode.as_str() {
        "std" => {
            let (t, report, _) = run_one(&args, Mode::Std);
            println!("\n{}", report.render());
            println!("elapsed: {t}");
        }
        "cc" => {
            let (t, report, _) = run_one(&args, Mode::Cc);
            println!("\n{}", report.render());
            println!("elapsed: {t}");
        }
        "both" => {
            let (t_std, r_std, sum_std) = run_one(&args, Mode::Std);
            let (t_cc, r_cc, sum_cc) = run_one(&args, Mode::Cc);
            assert_eq!(sum_std, sum_cc, "modes computed different results!");
            println!("\n{}", r_std.render());
            println!("{}", r_cc.render());
            println!(
                "speedup (std/cc): {:.2}x   ({} -> {})",
                t_std.as_ns() as f64 / t_cc.as_ns().max(1) as f64,
                t_std,
                t_cc
            );
        }
        other => {
            eprintln!("unknown mode {other:?} (std | cc | both)");
            std::process::exit(2);
        }
    }
}
