//! §4.4 memory-overhead accounting, reproduced live.
//!
//! Prints the static and dynamic overheads of a running compression cache
//! and checks the paper's worked figures: 8 B/page page-table extension
//! (120 KB for 60 MB of VM), 0.6% frame headers, the 16 KB hash table,
//! and the 22 KB of kernel code.

use cc_sim::{Mode, SimConfig, System};
use cc_util::fmt;

const MB: u64 = 1024 * 1024;

fn main() {
    let mut sys = System::new(SimConfig::decstation(6 * MB as usize, Mode::Cc));

    // The paper's example: 60 MB of collective virtual memory.
    let seg = sys.create_segment(60 * MB);
    let r0 = sys.overhead_report().unwrap();
    println!("== §4.4 overheads, 60 MB segment created, cache empty ==");
    println!("  hash table:            {}", fmt::bytes(r0.hash_table));
    println!("  kernel code:           {}", fmt::bytes(r0.kernel_code));
    println!(
        "  page-table extension:  {}",
        fmt::bytes(r0.page_table_extension)
    );
    println!(
        "  slot descriptors:      {}",
        fmt::bytes(r0.slot_descriptors)
    );
    println!("  static total:          {}", fmt::bytes(r0.static_bytes()));
    assert_eq!(
        r0.page_table_extension,
        120 * 1024,
        "paper: 60 MB of VM => 120 KB of page-table extension"
    );
    assert_eq!(r0.hash_table, 16 * 1024);
    assert_eq!(r0.kernel_code, 22 * 1024);

    // Page in a working set so the cache fills.
    for p in 0..(12 * MB / 4096) {
        sys.write_u32(seg, p * 4096, p as u32);
    }
    let r1 = sys.overhead_report().unwrap();
    let core = sys.core_stats().unwrap();
    println!("\n== after paging a 12 MB working set through 6 MB of memory ==");
    println!("  frames mapped into cache: {}", r1.frame_headers / 24);
    println!("  live compressed entries:  {}", r1.entry_headers / 36);
    println!(
        "  frame headers:            {}",
        fmt::bytes(r1.frame_headers)
    );
    println!(
        "  entry headers:            {}",
        fmt::bytes(r1.entry_headers)
    );
    println!(
        "  dynamic total:            {}",
        fmt::bytes(r1.dynamic_bytes())
    );
    println!(
        "  grand total:              {}",
        fmt::bytes(r1.total_bytes())
    );
    let frame_frac = 24.0 / 4096.0;
    println!(
        "\n  frame-header overhead: {:.2}% of each mapped frame (paper: 0.6%)",
        frame_frac * 100.0
    );
    assert!(r1.entry_headers > 0 && r1.frame_headers > 0);
    println!(
        "  cache currently holds {} compressed pages in {}",
        core.compress_kept,
        fmt::bytes((r1.frame_headers / 24) * 4096),
    );
    println!("\nOK: §4.4 arithmetic reproduced.");
}
