//! Figure 1(b): analytic speedup of *mean memory reference time* when
//! compressed pages are retained in memory, for an application that
//! sequentially cycles through twice as many pages as fit in memory,
//! touching one word per page.
//!
//! The paper's key features of this surface, checked here:
//! - below r = 1/2 everything fits compressed, and the speedup is
//!   *linear in the speed of compression* ((4/3)s);
//! - crossing r = 1/2 produces the "sharp leap" down as disk I/O turns on.

use cc_analytic::{grid, ratio_axis, reference_speedup, speed_axis};
use cc_util::plot;

fn main() {
    println!("== Figure 1(b): reference-time speedup, compressed pages kept in memory ==\n");

    let ratios = ratio_axis(0.05, 1.0, 20);
    let speeds = speed_axis(0.25, 16.0, 13);
    let g = grid(reference_speedup, &ratios, &speeds);

    print!("{:>8} |", "s\\r");
    for r in &ratios {
        print!("{r:>6.2}");
    }
    println!();
    println!("{}", "-".repeat(10 + ratios.len() * 6));
    let mut speeds_desc = speeds.clone();
    speeds_desc.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for (i, s) in speeds_desc.iter().enumerate() {
        print!("{s:>8.2} |");
        for v in &g[i] {
            print!("{v:>6.2}");
        }
        println!();
    }

    println!();
    println!(
        "{}",
        plot::heatmap(
            "Regions ('#' off-scale >6x, '.' speedup 1-6x, ' ' slowdown); x: ratio 0.05..1, y: speed 16..0.25 top-down",
            &g,
            &[(1.0, '.'), (6.0, '#')],
            ' ',
        )
    );

    println!("Paper-shape checks:");
    for s in [1.0, 3.0, 8.0] {
        let below = reference_speedup(0.45, s);
        let linear = 4.0 * s / 3.0;
        println!(
            "  s = {s:>4.1}: speedup at r<=1/2 is {below:.2} (linear law (4/3)s = {linear:.2})"
        );
        assert!((below - linear).abs() < 1e-9);
    }
    let before = reference_speedup(0.5, 8.0);
    let after = reference_speedup(0.6, 8.0);
    println!(
        "  sharp leap at r=1/2 (s=8): {before:.2} -> {after:.2} ({}% drop)",
        (100.0 * (before - after) / before).round()
    );
    assert!(before > 2.0 * after);
    println!("  OK: plateau is linear in s; leap at r = 1/2 present.");
}
