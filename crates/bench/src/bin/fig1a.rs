//! Figure 1(a): analytic speedup of paging *compressed pages to backing
//! store*, over the (compression ratio, compression-speed-vs-I/O) plane.
//!
//! The paper shades three regions: off-scale (>6x), 1-6x speedup, and
//! slowdown. This harness prints the surface as a table, the paper's
//! three-region shading as an ASCII heatmap, and the break-even frontier.

use cc_analytic::{bandwidth_breakeven_ratio, bandwidth_speedup, grid, ratio_axis, speed_axis};
use cc_util::plot;

fn main() {
    println!("== Figure 1(a): bandwidth speedup, compress-to-backing-store ==");
    println!("   (decompression assumed 2x the speed of compression, as for LZRW1)\n");

    let ratios = ratio_axis(0.05, 1.0, 20);
    let speeds = speed_axis(0.25, 16.0, 13);
    let g = grid(bandwidth_speedup, &ratios, &speeds);

    // Numeric table: rows = speed (descending), columns = ratio.
    print!("{:>8} |", "s\\r");
    for r in &ratios {
        print!("{r:>6.2}");
    }
    println!();
    println!("{}", "-".repeat(10 + ratios.len() * 6));
    let mut speeds_desc = speeds.clone();
    speeds_desc.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for (i, s) in speeds_desc.iter().enumerate() {
        print!("{s:>8.2} |");
        for v in &g[i] {
            print!("{v:>6.2}");
        }
        println!();
    }

    println!();
    println!(
        "{}",
        plot::heatmap(
            "Regions ('#' off-scale >6x, '.' speedup 1-6x, ' ' slowdown); x: ratio 0.05..1, y: speed 16..0.25 top-down",
            &g,
            &[(1.0, '.'), (6.0, '#')],
            ' ',
        )
    );

    println!("Break-even compression fraction r* (paging with compression matches without):");
    for s in [0.5, 0.75, 1.0, 2.0, 4.0, 8.0, 16.0] {
        match bandwidth_breakeven_ratio(s) {
            Some(r) => println!("  s = {s:>5.2}  ->  r* = {r:.3}"),
            None => println!("  s = {s:>5.2}  ->  never breaks even (compression too slow)"),
        }
    }

    println!("\nPaper-shape checks:");
    let top_left = bandwidth_speedup(0.05, 16.0);
    let bottom_right = bandwidth_speedup(1.0, 0.25);
    println!("  top-left (r=0.05, s=16): {top_left:.2}x  (paper: off-scale, >6)");
    println!("  bottom-right (r=1.0, s=0.25): {bottom_right:.2}x (paper: slowdown, <1)");
    assert!(top_left > 6.0 && bottom_right < 1.0);
    println!("  OK: regions match the paper's shading.");
}
