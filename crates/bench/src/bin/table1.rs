//! Table 1: application speedups on a ~14 MB machine.
//!
//! Paper rows (DECstation 5000/200, RZ57, LZRW1, 4 KB pages, ~14 MB for
//! user processes):
//!
//! ```text
//! Application   Time(std)  Time(CC)  Speedup  Ratio%  Uncompressible%
//! compare        16:14      6:04      2.68     31       0.1
//! isca           43:15     27:00      1.60     32       1.7
//! sort partial   13:32     10:24      1.30     30      49
//! gold create    14:03     15:38      0.90     59      42
//! gold cold      45:30     56:36      0.80     60      10
//! sort random    26:17     28:51      0.91     37      98
//! gold warm      35:56     49:00      0.73     52       0.9
//! ```
//!
//! Our substrate is a calibrated simulator, so absolute times differ; the
//! shape requirement is that compare > isca > sort partial > 1.0 and the
//! gold rows and sort random land at or below 1.0, with the compression
//! columns in the same regimes. Run with `--quick` for 1/8 scale.

use cc_bench::{quick_mode, render_table1, run_pair, PairResult};
use cc_sim::{Mode, SimConfig, System};
use cc_util::Ns;
use cc_workloads::{
    compare::CompareApp,
    gold::{GoldApp, GoldPhase},
    isca::IscaApp,
    sortapp::{SortApp, SortInput},
};

const MB: usize = 1024 * 1024;

fn config(mode: Mode, user_mb: usize) -> SimConfig {
    SimConfig::decstation(user_mb * MB, mode)
}

fn scale_down(x: u64) -> u64 {
    if quick_mode() {
        x / 8
    } else {
        x
    }
}

/// Gold rows need phase-scoped timing (the paper times the query phases
/// separately from index construction), so they are run outside
/// `run_pair` with explicit clock deltas.
fn run_gold(phase: GoldPhase, user_mb: usize) -> PairResult {
    let mut app = GoldApp::table1();
    if quick_mode() {
        app.messages /= 8;
        app.queries /= 8;
        app.vocabulary /= 4;
    }
    let mut times = Vec::new();
    let mut sums = Vec::new();
    let mut reports = Vec::new();
    for mode in [Mode::Std, Mode::Cc] {
        let mut sys = System::new(config(mode, user_mb));
        let seg = sys.create_segment(app.segment_bytes());
        let name;
        let (start, checksum) = match phase {
            GoldPhase::Create => {
                name = "gold create";
                let t0 = sys.now();
                let sum = app.create(&mut sys, seg);
                (t0, sum)
            }
            GoldPhase::Cold => {
                name = "gold cold";
                app.create(&mut sys, seg);
                app.flush_memory(&mut sys);
                let t0 = sys.now();
                let sum = app.run_queries(&mut sys, seg, 77);
                (t0, sum)
            }
            GoldPhase::Warm => {
                name = "gold warm";
                app.create(&mut sys, seg);
                app.flush_memory(&mut sys);
                app.run_queries(&mut sys, seg, 77);
                let t0 = sys.now();
                // Paper: warm repeats the same query set.
                let sum = app.run_queries(&mut sys, seg, 77);
                (t0, sum)
            }
        };
        let elapsed = sys.now() - start;
        times.push(elapsed);
        sums.push(checksum);
        reports.push((name, sys.report()));
    }
    assert_eq!(sums[0], sums[1], "gold {phase:?} checksums diverged");
    let (name, std_report) = reports.swap_remove(0);
    let (_, cc_report) = reports.swap_remove(0);
    PairResult {
        name: name.into(),
        std_time: times[0],
        cc_time: times[1],
        speedup: times[0].as_ns() as f64 / times[1].as_ns().max(1) as f64,
        kept_fraction: cc_report.mean_kept_fraction,
        rejected_fraction: cc_report.rejected_fraction,
        cc_report,
        std_report,
    }
}

fn main() {
    let user_mb = if quick_mode() { 2 } else { 14 };
    println!(
        "== Table 1: application speedups ({} MB user memory, RZ57, LZRW1) ==\n",
        user_mb
    );

    let mut rows: Vec<PairResult> = Vec::new();

    // compare
    rows.push(run_pair(
        |mode| config(mode, user_mb),
        || {
            let mut a = CompareApp::table1();
            a.text_len = scale_down(a.text_len as u64) as usize;
            a
        },
    ));
    eprintln!("[done] compare");

    // isca
    rows.push(run_pair(
        |mode| config(mode, user_mb),
        || {
            let mut a = IscaApp::table1();
            a.memory_blocks = scale_down(a.memory_blocks);
            a.references = scale_down(a.references);
            a
        },
    ));
    eprintln!("[done] isca");

    // sort partial
    rows.push(run_pair(
        |mode| config(mode, user_mb),
        || {
            let mut a = SortApp::table1(SortInput::Partial);
            a.text_bytes = scale_down(a.text_bytes as u64) as usize;
            a
        },
    ));
    eprintln!("[done] sort partial");

    // gold create / cold
    rows.push(run_gold(GoldPhase::Create, user_mb));
    eprintln!("[done] gold create");
    rows.push(run_gold(GoldPhase::Cold, user_mb));
    eprintln!("[done] gold cold");

    // sort random
    rows.push(run_pair(
        |mode| config(mode, user_mb),
        || {
            let mut a = SortApp::table1(SortInput::Random);
            a.text_bytes = scale_down(a.text_bytes as u64) as usize;
            a
        },
    ));
    eprintln!("[done] sort random");

    // gold warm
    rows.push(run_gold(GoldPhase::Warm, user_mb));
    eprintln!("[done] gold warm");

    println!("{}", render_table1(&rows));

    println!("Per-row detail (cc runs):");
    for r in &rows {
        println!(
            "  {:>13}: faults {} (cache {}, disk {}), disk {}B moved, cc mean {:.1}MB peak {:.1}MB",
            r.name,
            r.cc_report.faults,
            r.cc_report.faults_from_cache,
            r.cc_report.faults_from_disk,
            r.cc_report.disk_bytes,
            r.cc_report.cc_mean_mb,
            r.cc_report.cc_peak_mb,
        );
    }

    // Shape assertions against the paper's Table 1.
    let by_name = |n: &str| -> &PairResult { rows.iter().find(|r| r.name == n).unwrap() };
    let compare = by_name("compare");
    let isca = by_name("isca");
    let sp = by_name("sort partial");
    let sr = by_name("sort random");
    println!("\nPaper-shape checks:");
    let mut ok = true;
    let mut check = |label: &str, cond: bool| {
        println!("  [{}] {label}", if cond { "ok" } else { "MISS" });
        ok &= cond;
    };
    check("compare wins big (paper 2.68x)", compare.speedup > 1.5);
    check("isca wins (paper 1.60x)", isca.speedup > 1.1);
    check("sort partial wins modestly (paper 1.30x)", sp.speedup > 1.0);
    check("sort random does not win (paper 0.91x)", sr.speedup <= 1.02);
    check(
        "gold rows do not win (paper 0.73-0.90x)",
        rows.iter()
            .filter(|r| r.name.starts_with("gold"))
            .all(|r| r.speedup <= 1.05),
    );
    check(
        "compare beats isca beats sort partial",
        compare.speedup > isca.speedup && isca.speedup > sp.speedup,
    );
    check(
        "sort random mostly uncompressible (paper 98%)",
        sr.rejected_fraction > 0.6,
    );
    check(
        "compare ratio ~3:1 (paper 31%)",
        (0.10..0.45).contains(&compare.kept_fraction),
    );
    let total: Ns = rows.iter().map(|r| r.std_time + r.cc_time).sum();
    println!(
        "\nTotal simulated time across all runs: {}",
        cc_util::fmt::min_sec(total.as_secs_f64())
    );
    assert!(ok, "one or more Table 1 shape checks failed");
    println!("All Table 1 shape checks passed.");
}
