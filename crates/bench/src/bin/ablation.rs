//! Ablation sweeps over the design choices DESIGN.md calls out.
//!
//! 1. **§4.2 bias** (`cc_age_scale`): the paper: *"although a single
//!    penalty between VM and the file system works well across a wide
//!    range of applications, the optimal penalty for the compression
//!    cache is application-dependent."* Swept on thrasher (loves a big
//!    cache) and on an over-committed random-access reader (hurt by one).
//! 2. **§4.3 spanning** (`allow_span`): fragmentation vs read size.
//! 3. **Threshold**: the 4:3 keep-compressed rule vs keep-everything and
//!    stricter variants, on incompressible input.
//! 4. **Codec**: LZRW1 table sizes, RLE, LZSS (speed/ratio axis of §3).
//! 5. **Adaptive disable** (§5.2/§6 future work) on incompressible input.
//! 6. **Backing stores** (§6): disk vs Ethernet vs wireless.
//!
//! Run with `--quick` for 1/8 scale.

use cc_bench::scaled;
use cc_disk::DiskParams;
use cc_sim::{CodecKind, Mode, SimConfig, System};
use cc_util::SplitMix64;
use cc_workloads::thrasher::{measure_cycle_access_time, Thrasher};

const MB: u64 = 1024 * 1024;

fn base_config(mode: Mode) -> SimConfig {
    SimConfig::decstation(scaled(6 * MB) as usize, mode)
}

/// Thrasher cycle-time with a given configuration tweak.
fn thrash_ms(space: u64, write: bool, tweak: impl Fn(&mut SimConfig)) -> f64 {
    let mut cfg = base_config(Mode::Cc);
    tweak(&mut cfg);
    let mut sys = System::new(cfg);
    let t = Thrasher::figure3(space, write);
    measure_cycle_access_time(&mut sys, &t).0
}

/// A hot/cold reader in the gold regime: a hot set that nearly fills
/// memory plus a cold tail of ~2:1 pages. Favoring the cache too hard
/// squeezes the hot set and turns cheap hits into decompressions — the
/// application the §4.2 bias knob can hurt.
fn skewed_reader_secs(cc_age_scale: f64) -> f64 {
    let mut cfg = base_config(Mode::Cc);
    cfg.cc.cc_age_scale = cc_age_scale;
    let mem_pages = (cfg.user_memory_bytes / 4096) as u64;
    let mut sys = System::new(cfg);
    let space = scaled(20 * MB);
    let seg = sys.create_segment(space);
    let npages = space / 4096;
    let mut page = vec![0u8; 4096];
    for p in 0..npages {
        cc_workloads::datagen::fill_2to1(&mut page, p);
        sys.write_slice(seg, p * 4096, &page);
    }
    let mut rng = SplitMix64::new(77);
    let hot = (mem_pages * 95 / 100).min(npages);
    let start = sys.now();
    for _ in 0..scaled(200_000) {
        let p = if rng.gen_bool(0.99) {
            rng.gen_range(hot)
        } else {
            hot + rng.gen_range(npages - hot)
        };
        let _ = sys.read_u32(seg, p * 4096);
    }
    (sys.now() - start).as_secs_f64()
}

fn main() {
    println!("== Ablations ==\n");

    // ------------------------------------------------------------------
    println!("--- 1. §4.2 bias sweep (cc_age_scale; lower = cache holds memory harder) ---");
    println!(
        "{:>10} {:>16} {:>18}",
        "scale", "thrasher ms/acc", "skewed-reader s"
    );
    let space = scaled(12 * MB);
    for scale in [2.0, 1.0, 0.5, 0.2, 0.05, 0.01] {
        let t = thrash_ms(space, true, |c| c.cc.cc_age_scale = scale);
        let s = skewed_reader_secs(scale);
        println!("{scale:>10.2} {t:>16.3} {s:>18.2}");
    }
    println!("  (expected: thrasher improves as the cache is favored more;");
    println!("   the skewed reader is best at moderate bias — application-dependent, §4.2)\n");

    // ------------------------------------------------------------------
    println!("--- 2. §4.3 fragment spanning (thrasher beyond compressed fit) ---");
    let big = scaled(30 * MB);
    for (label, span) in [("span", true), ("no-span", false)] {
        let mut frag_stats = (0u64, 0u64);
        let ms = {
            let mut cfg = base_config(Mode::Cc);
            cfg.cc.allow_span = span;
            let mut sys = System::new(cfg);
            let t = Thrasher::figure3(big, true);
            let v = measure_cycle_access_time(&mut sys, &t).0;
            let core = sys.core_stats().unwrap();
            let _ = core;
            if let Some(c) = sys.core_stats() {
                frag_stats = (c.cleaner_pages, 0);
            }
            let disk = sys.disk_stats();
            println!(
                "  {label:>8}: {v:.3} ms/access, disk {} moved in {} requests",
                cc_util::fmt::bytes(disk.bytes()),
                disk.requests()
            );
            v
        };
        let _ = (ms, frag_stats);
    }
    println!("  (no-span pads fragments to block boundaries: more bytes, bounded reads)\n");

    // ------------------------------------------------------------------
    println!("--- 3. keep-compressed threshold on incompressible input ---");
    for (label, threshold) in [
        ("any-shrink", cc_compress::ThresholdPolicy::any_shrink()),
        ("4:3 (paper)", cc_compress::ThresholdPolicy::new(4, 3)),
        ("2:1", cc_compress::ThresholdPolicy::new(2, 1)),
        ("3:1", cc_compress::ThresholdPolicy::new(3, 1)),
    ] {
        let mut cfg = base_config(Mode::Cc);
        cfg.cc.threshold = threshold;
        let mut sys = System::new(cfg);
        let space = scaled(10 * MB);
        let seg = sys.create_segment(space);
        let mut rng = SplitMix64::new(5);
        let mut page = vec![0u8; 4096];
        // A four-way mix: noise, marginal ~85% pages (kept only by
        // any-shrink), ~2:1 (kept by 4:3, rejected by 2:1), and ~4:1
        // (kept by everyone).
        for p in 0..space / 4096 {
            match p % 4 {
                0 => {
                    for b in page.iter_mut() {
                        *b = rng.next_u64() as u8;
                    }
                }
                1 => {
                    // ~88%: noise with short structured runs — shrinks a
                    // little (kept by any-shrink) but fails 4:3.
                    for (i, b) in page.iter_mut().enumerate() {
                        *b = if i % 48 < 8 {
                            b'='
                        } else {
                            rng.next_u64() as u8
                        };
                    }
                }
                2 => cc_workloads::datagen::fill_2to1(&mut page, p),
                _ => cc_workloads::datagen::fill_4to1(&mut page, p),
            }
            sys.write_slice(seg, p * 4096, &page);
        }
        // One read pass.
        for p in 0..space / 4096 {
            let _ = sys.read_u32(seg, p * 4096);
        }
        let core = sys.core_stats().unwrap();
        println!(
            "  {label:>12}: {:>8.2}s, rejected {:>5.1}%, cache held {:.1}MB peak",
            sys.now().as_secs_f64(),
            core.rejected_fraction() * 100.0,
            core.peak_mapped_frames as f64 * 4096.0 / MB as f64,
        );
    }
    println!();

    // ------------------------------------------------------------------
    println!("--- 4. codec sweep on compressible thrash (speed vs ratio, §3) ---");
    for (label, codec) in [
        (
            "lzrw1-16K",
            CodecKind::Lzrw1 {
                table_bytes: 16 * 1024,
            },
        ),
        (
            "lzrw1-64K",
            CodecKind::Lzrw1 {
                table_bytes: 64 * 1024,
            },
        ),
        ("lzss", CodecKind::Lzss),
        ("rle", CodecKind::Rle),
        ("null", CodecKind::Null),
    ] {
        let mut cfg = base_config(Mode::Cc);
        cfg.cc.codec = codec;
        let mut sys = System::new(cfg);
        let t = Thrasher::figure3(scaled(12 * MB), true);
        let ms = measure_cycle_access_time(&mut sys, &t).0;
        let core = sys.core_stats().unwrap();
        println!(
            "  {label:>10}: {ms:>7.3} ms/access, kept ratio {:>5.1}%, rejected {:>5.1}%",
            core.mean_kept_fraction() * 100.0,
            core.rejected_fraction() * 100.0
        );
    }
    println!();

    // ------------------------------------------------------------------
    println!("--- 5. adaptive disable on incompressible stream (§5.2/§6) ---");
    for (label, after) in [("off (paper)", 0u32), ("after 8 rejects", 8)] {
        let mut cfg = base_config(Mode::Cc);
        cfg.cc.adaptive_disable_after = after;
        let mut sys = System::new(cfg);
        let space = scaled(12 * MB);
        let seg = sys.create_segment(space);
        let mut rng = SplitMix64::new(9);
        let mut page = vec![0u8; 4096];
        for p in 0..space / 4096 {
            for b in page.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            sys.write_slice(seg, p * 4096, &page);
        }
        let core = sys.core_stats().unwrap();
        println!(
            "  {label:>16}: {:>7.2}s, {} compressions attempted",
            sys.now().as_secs_f64(),
            core.compress_attempts
        );
    }
    println!();

    // ------------------------------------------------------------------
    println!("--- 6. backing stores (§6: slower stores favor compression more) ---");
    println!(
        "{:>16} {:>12} {:>12} {:>9}",
        "device", "std ms/acc", "cc ms/acc", "speedup"
    );
    for disk in [
        DiskParams::rz57(),
        DiskParams::mobile_hdd(),
        DiskParams::ethernet_10mbps(),
        DiskParams::wireless_2mbps(),
    ] {
        // Sized to the fits-compressed regime: the cache removes the
        // I/O entirely, so the speedup tracks how expensive each
        // device's I/O would have been.
        let space = scaled(12 * MB);
        let run = |mode| {
            let mut cfg = base_config(mode);
            cfg.disk = disk.clone();
            let mut sys = System::new(cfg);
            let t = Thrasher::figure3(space, true);
            measure_cycle_access_time(&mut sys, &t).0
        };
        let s = run(Mode::Std);
        let c = run(Mode::Cc);
        println!("{:>16} {s:>12.3} {c:>12.3} {:>9.2}", disk.name, s / c);
    }
    println!("\nDone.");
}
