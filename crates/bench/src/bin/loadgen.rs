//! `loadgen` — closed-loop load generator and integrity checker for
//! `cc-server`.
//!
//! Spins up an in-process server (ephemeral loopback port, spill-backed
//! store with a budget ~10× under the working set so both tiers serve
//! traffic), then drives it with `N` client threads issuing a zipfian
//! 50/40/10 PUT/GET/DEL mix over reused connections. Each thread owns a
//! disjoint key partition and a shadow `HashMap` of what it has stored,
//! so **every GET is verified byte-for-byte** against the shadow model
//! and every DEL's existed/missing answer is checked — any disagreement
//! is an integrity error.
//!
//! After the run one extra connection FLUSHes, fetches STATS, and probes
//! saturation (full mode only): it parks `workers` idle connections so
//! the pool is fully occupied, then connects once more and asserts the
//! server answers `BUSY` — bounded admission observable on the wire.
//!
//! Results land in `BENCH_server.json`: client-side throughput, the
//! server's per-opcode latency histograms (p50/p99 straight from the
//! wire telemetry), the wire counters, and the store's memory/spill tier
//! split parsed back out of the STATS payload.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cc-bench --bin loadgen [-- --threads N --ops N --out PATH]
//! cargo run --release -p cc-bench --bin loadgen -- --smoke
//! ```
//!
//! `--smoke` runs a reduced-ops pass and exits nonzero on any integrity
//! error, any malformed or BUSY-rejected frame, a latency histogram that
//! is empty or disordered, ring events that disagree with the counters
//! they shadow, or a STATS payload that fails Prometheus parsing — CI
//! runs it on every push next to `storebench --smoke`.

use cc_bench::smoke;
use cc_core::store::{CompressedStore, StoreConfig};
use cc_server::{Client, ClientError, Server, ServerConfig};
use cc_telemetry::Snapshot;
use cc_util::SplitMix64;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 4096;
/// Keys per client thread; partitions are disjoint so shadow-model
/// verification needs no cross-thread coordination.
const KEYS_PER_THREAD: u64 = 1024;
const ZIPF_S: f64 = 0.99;
/// Store budget: far under the compressed working set, so most of the
/// key space lives on the spill file and GETs split across tiers.
const BUDGET: usize = 1 << 20;

/// Zipfian sampler: precomputed CDF + binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Deterministic page content for `(key, version)`: mostly ~2:1
/// compressible filler, every fifth version incompressible noise, so
/// the store's threshold path is exercised too. The shadow model stores
/// only the version and regenerates the page to verify GETs.
fn fill_page(key: u64, version: u64, buf: &mut [u8]) {
    let salt = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version;
    if version.is_multiple_of(5) {
        let mut rng = SplitMix64::new(salt | 1);
        for b in buf.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    } else {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((salt as usize + i / 13) % 64) as u8 + b' ';
        }
    }
}

/// One client thread's tally.
#[derive(Default)]
struct ThreadResult {
    ops: u64,
    /// GET payload or DEL existed-bit disagreed with the shadow model.
    integrity_mismatches: u64,
    /// Transport/protocol/server errors (any is a failure).
    hard_errors: u64,
    gets_hit: u64,
    gets_miss: u64,
}

fn run_client(
    addr: std::net::SocketAddr,
    thread: usize,
    ops: u64,
    zipf: &Zipf,
) -> Result<ThreadResult, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    client.ping()?;
    let base = thread as u64 * KEYS_PER_THREAD;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut versions: u64 = 0;
    let mut rng = SplitMix64::new(0xF00D + thread as u64);
    let mut page = vec![0u8; PAGE];
    let mut expect = vec![0u8; PAGE];
    let mut out = Vec::with_capacity(PAGE);
    let mut r = ThreadResult::default();
    for _ in 0..ops {
        let key = base + zipf.sample(&mut rng);
        r.ops += 1;
        match rng.next_u64() % 10 {
            0..=4 => {
                versions += 1;
                fill_page(key, versions, &mut page);
                match client.put(key, &page) {
                    Ok(()) => {
                        shadow.insert(key, versions);
                    }
                    Err(_) => r.hard_errors += 1,
                }
            }
            5..=8 => match client.get(key, &mut out) {
                Ok(hit) => {
                    let expected = shadow.get(&key).copied();
                    match (hit, expected) {
                        (true, Some(v)) => {
                            r.gets_hit += 1;
                            fill_page(key, v, &mut expect);
                            if out != expect {
                                r.integrity_mismatches += 1;
                            }
                        }
                        (false, None) => r.gets_miss += 1,
                        // Hit without a shadow entry, or a miss on a key
                        // we stored: the server lost or invented data.
                        _ => r.integrity_mismatches += 1,
                    }
                }
                Err(_) => r.hard_errors += 1,
            },
            _ => match client.del(key) {
                Ok(existed) => {
                    if existed != shadow.remove(&key).is_some() {
                        r.integrity_mismatches += 1;
                    }
                }
                Err(_) => r.hard_errors += 1,
            },
        }
    }
    Ok(r)
}

/// Park `workers` idle connections so every worker is occupied, then
/// connect once more: the admission queue is full and the server must
/// answer `BUSY`. Returns whether the extra connection was rejected.
/// The probe reads the unsolicited BUSY frame directly (sending nothing
/// first), because the server closes right after writing it.
fn saturation_probe(addr: std::net::SocketAddr, workers: usize) -> bool {
    use cc_server::{frame, Response, Status};
    let holders: Vec<Client> = (0..workers)
        .filter_map(|_| Client::connect(addr).ok())
        .collect();
    if holders.len() < workers {
        return false;
    }
    // The holders occupy workers as soon as the pool hands them over;
    // give the rendezvous a moment so the probe races nothing.
    std::thread::sleep(Duration::from_millis(50));
    let rejected = match std::net::TcpStream::connect(addr) {
        Ok(mut extra) => {
            let _ = extra.set_read_timeout(Some(Duration::from_secs(5)));
            let mut body = Vec::new();
            match frame::read_frame(&mut extra, &mut body, frame::DEFAULT_MAX_FRAME) {
                Ok(()) => matches!(
                    Response::decode(&body),
                    Ok(Response {
                        status: Status::Busy,
                        ..
                    })
                ),
                Err(_) => false,
            }
        }
        Err(_) => false,
    };
    drop(holders);
    rejected
}

fn op_json(snap: &Snapshot, op: &str) -> String {
    match snap.op(op) {
        Some(s) => format!(
            "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            s.count, s.p50, s.p99, s.max
        ),
        None => "{\"count\": 0}".into(),
    }
}

/// Pull `cc_store_<name>_total` back out of the STATS payload — the
/// tier split is reported from the wire text itself, proving STATS is
/// scrapeable, not just present.
fn stats_counter(stats: &str, name: &str) -> u64 {
    let needle = format!("cc_store_{name}_total ");
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let mut threads: usize = 4;
    let mut ops_per_thread: u64 = 50_000;
    let mut out_path = String::from("BENCH_server.json");
    let mut smoke_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads expects a count");
                    std::process::exit(2);
                })
            }
            "--ops" => {
                ops_per_thread = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ops expects a number of operations per thread");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a file path");
                    std::process::exit(2);
                })
            }
            "--smoke" => {
                smoke_mode = true;
                threads = 4;
                ops_per_thread = 10_000;
            }
            other => {
                eprintln!(
                    "unknown arg: {other}\nusage: loadgen [--threads N] [--ops N] [--out PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);

    let spill_path = std::env::temp_dir().join(format!("loadgen-spill-{}.bin", std::process::id()));
    let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
        BUDGET,
        &spill_path,
    )));
    let server = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(threads),
    )
    .expect("spawn server");
    let addr = server.local_addr();
    let service = Arc::clone(server.service());
    eprintln!(
        "loadgen: {threads} clients x {ops_per_thread} ops, {KEYS_PER_THREAD} zipfian(s={ZIPF_S}) keys/thread, mixed 50/40/10 put/get/del, server {addr} ({threads} workers, budget {BUDGET})"
    );

    let zipf = Arc::new(Zipf::new(KEYS_PER_THREAD, ZIPF_S));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let zipf = Arc::clone(&zipf);
            std::thread::spawn(move || run_client(addr, t, ops_per_thread, &zipf))
        })
        .collect();
    let mut total = ThreadResult::default();
    let mut connect_failures = 0u64;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(r) => {
                total.ops += r.ops;
                total.integrity_mismatches += r.integrity_mismatches;
                total.hard_errors += r.hard_errors;
                total.gets_hit += r.gets_hit;
                total.gets_miss += r.gets_miss;
            }
            Err(e) => {
                eprintln!("  client setup failed: {e}");
                connect_failures += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ops_per_sec = total.ops as f64 / elapsed.max(1e-9);

    // A final connection: drain the spill writer, then fetch STATS over
    // the wire so the tier split below comes from the scrape payload.
    let stats_text = {
        let mut c = Client::connect(addr).expect("stats connection");
        c.flush().expect("flush");
        c.stats().expect("stats")
    };

    let busy_seen = if smoke_mode {
        // The smoke gate requires zero rejected frames, so the probe
        // (which manufactures one) only runs in full mode; BUSY-path
        // coverage in CI comes from the server integration tests.
        false
    } else {
        saturation_probe(addr, threads)
    };

    server.shutdown();
    let snap = service.snapshot();
    let store_snap = store.telemetry_snapshot();
    drop(store);
    let _ = std::fs::remove_file(&spill_path);

    let wire = |name: &str| snap.counter(name).unwrap_or(0);
    let (hits_memory, hits_spill, misses) = (
        stats_counter(&stats_text, "hits_memory"),
        stats_counter(&stats_text, "hits_spill"),
        stats_counter(&stats_text, "misses"),
    );
    eprintln!(
        "  {:.0} ops/s over {:.2}s; {} get hits / {} misses; integrity mismatches {}, hard errors {}",
        ops_per_sec, elapsed, total.gets_hit, total.gets_miss, total.integrity_mismatches, total.hard_errors,
    );
    eprintln!(
        "  wire: put p50 {} ns / get p50 {} ns / del p50 {} ns; conns {} opened / {} closed; busy {} malformed {}",
        snap.op("put").map_or(0, |s| s.p50),
        snap.op("get").map_or(0, |s| s.p50),
        snap.op("del").map_or(0, |s| s.p50),
        wire("conns_opened"),
        wire("conns_closed"),
        wire("busy_rejected"),
        wire("malformed_frames"),
    );
    eprintln!("  store tiers (from STATS): {hits_memory} memory hits, {hits_spill} spill hits, {misses} misses");
    if !smoke_mode {
        eprintln!(
            "  saturation probe: extra connection {}",
            if busy_seen {
                "rejected BUSY (bounded admission)"
            } else {
                "NOT rejected"
            }
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"loadgen\",\n  \"threads\": {threads},\n  \"ops_per_thread\": {ops_per_thread},\n  \"keys_per_thread\": {KEYS_PER_THREAD},\n  \"zipf_s\": {ZIPF_S},\n  \"page_size\": {PAGE},\n  \"budget_bytes\": {BUDGET},\n  \"mix\": \"50% put / 40% get / 10% del\",\n  \"elapsed_s\": {elapsed:.3},\n  \"ops_per_sec\": {ops_per_sec:.0},\n  \"gets_hit\": {},\n  \"gets_miss\": {},\n  \"integrity_mismatches\": {},\n  \"hard_errors\": {},\n  \"ops\": {{\n    \"put\": {},\n    \"get\": {},\n    \"del\": {},\n    \"flush\": {},\n    \"stats\": {},\n    \"ping\": {}\n  }},\n  \"wire\": {{\n    \"req_put\": {},\n    \"req_get\": {},\n    \"req_del\": {},\n    \"conns_opened\": {},\n    \"conns_closed\": {},\n    \"busy_rejected\": {},\n    \"malformed_frames\": {},\n    \"idle_timeouts\": {}\n  }},\n  \"tier_split\": {{\"hits_memory\": {hits_memory}, \"hits_spill\": {hits_spill}, \"misses\": {misses}}},\n  \"saturation_probe_busy\": {},\n  \"note\": \"closed-loop loopback load against the in-process cc-server; every GET verified byte-for-byte against a per-thread shadow model (integrity_mismatches must be 0). ops.* are the server's own per-opcode wire latency histograms in nanoseconds; tier_split is parsed from the STATS Prometheus payload fetched over the wire; saturation_probe_busy records whether an extra connection beyond the worker pool was answered BUSY (full mode only).\"\n}}\n",
        total.gets_hit,
        total.gets_miss,
        total.integrity_mismatches,
        total.hard_errors,
        op_json(&snap, "put"),
        op_json(&snap, "get"),
        op_json(&snap, "del"),
        op_json(&snap, "flush"),
        op_json(&snap, "stats"),
        op_json(&snap, "ping"),
        wire("req_put"),
        wire("req_get"),
        wire("req_del"),
        wire("conns_opened"),
        wire("conns_closed"),
        wire("busy_rejected"),
        wire("malformed_frames"),
        wire("idle_timeouts"),
        busy_seen,
    );
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out_path}");

    if smoke_mode {
        let mut failures = Vec::new();
        if connect_failures > 0 {
            failures.push(format!("{connect_failures} client thread(s) failed to run"));
        }
        if total.integrity_mismatches > 0 {
            failures.push(format!(
                "{} GET/DEL responses disagreed with the shadow model",
                total.integrity_mismatches
            ));
        }
        if total.hard_errors > 0 {
            failures.push(format!("{} transport/server errors", total.hard_errors));
        }
        if total.gets_hit == 0 {
            failures.push("no GET ever hit: the workload exercised nothing".into());
        }
        for name in ["busy_rejected", "malformed_frames", "idle_timeouts"] {
            let v = wire(name);
            if v > 0 {
                failures.push(format!("{name} is {v}, expected 0"));
            }
        }
        // Every opcode the run issues must have a sane wire histogram.
        for op in ["put", "get", "del", "flush", "stats", "ping"] {
            if let Some(f) = smoke::check_hist(&snap, op) {
                failures.push(f);
            }
        }
        // Ring events must agree with the counters they shadow.
        for (event, counter) in [
            ("conn_open", "conns_opened"),
            ("conn_close", "conns_closed"),
        ] {
            if let Some(f) = smoke::check_event_agrees(&snap, event, counter, wire(counter)) {
                failures.push(f);
            }
        }
        // The STATS payload must be a parseable Prometheus exposition
        // carrying both the store's and the server's metric families,
        // and must match the schema the in-process snapshots render.
        if let Some(f) = smoke::check_prometheus(
            &stats_text,
            &["cc_store_compressed_total", "cc_server_req_put_total"],
        ) {
            failures.push(f);
        }
        let expected = {
            let mut t = store_snap.to_prometheus("cc_store");
            // STATS was fetched mid-run, so values differ; schema
            // equality means the same metric names in the same order.
            t.push_str(&snap.to_prometheus("cc_server"));
            let names = |text: &str| {
                text.lines()
                    .filter(|l| !l.starts_with('#') && !l.is_empty())
                    .filter_map(|l| l.split_whitespace().next().map(str::to_owned))
                    .collect::<Vec<_>>()
            };
            (names(&t), names(&stats_text))
        };
        if expected.0 != expected.1 {
            failures.push("STATS metric names/order differ from the Exporter schema".into());
        }
        std::process::exit(smoke::report("loadgen", &failures));
    }
}
