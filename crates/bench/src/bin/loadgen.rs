//! `loadgen` — closed-loop load generator and integrity checker for
//! `cc-server`.
//!
//! Spins up an in-process server (ephemeral loopback port, spill-backed
//! store with a budget ~10× under the working set so both tiers serve
//! traffic), then drives it with `N` client threads issuing a zipfian
//! 50/40/10 PUT/GET/DEL mix over reused connections. Each thread owns a
//! disjoint key partition and a shadow `HashMap` of what it has stored,
//! so **every GET is verified byte-for-byte** against the shadow model
//! and every DEL's existed/missing answer is checked — any disagreement
//! is an integrity error.
//!
//! The engine under test is selectable: `--backend threaded` (the
//! blocking worker pool) or `--backend evented` (the nonblocking
//! readiness reactor; `evented-poll` forces the poll(2) fallback).
//! `--pipeline W` switches the clients to the pipelined protocol — a
//! window of `W` tagged requests in flight per connection, responses
//! reaped by tag — with the same shadow verification (expectations are
//! pinned at send time; the server executes each connection's requests
//! in order) plus an exactly-once tag check.
//!
//! `--conns N` adds a **connection-count A/B sweep**: for each backend,
//! levels of total connections (a few hot, the rest idle-but-open) up
//! to `N`, measuring hot-path throughput and client-observed p99 at
//! each level. A level is *sustained* if every connection is admitted
//! (PING answered) and the hot traffic runs error-free. The per-backend
//! curves and a threaded-vs-evented verdict land in the output JSON —
//! this is the experiment showing the reactor holding an order of
//! magnitude more connections than the thread-per-connection pool at
//! equal or better tail latency.
//!
//! After the run one extra connection FLUSHes, fetches STATS, and probes
//! saturation (full mode only): it parks `workers` idle connections so
//! the pool is fully occupied, then connects once more and asserts the
//! server answers `BUSY` — bounded admission observable on the wire.
//!
//! Results land in `BENCH_server.json`: client-side throughput, the
//! server's per-opcode latency histograms (p50/p99 straight from the
//! wire telemetry), the wire counters, the store's memory/spill tier
//! split parsed back out of the STATS payload, and (with `--conns`) the
//! `ab_sweep` section.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cc-bench --bin loadgen [-- --threads N --ops N \
//!     --backend threaded|evented|evented-poll --pipeline W --conns N --out PATH]
//! cargo run --release -p cc-bench --bin loadgen -- --smoke [--backend evented] [--conns 64]
//! ```
//!
//! `--smoke` runs a reduced-ops pass and exits nonzero on any integrity
//! error, any response-tag mismatch, any malformed or BUSY-rejected
//! frame, a latency histogram that is empty or disordered, ring events
//! that disagree with the counters they shadow, a STATS payload that
//! fails Prometheus parsing — or, when `--conns` is given, an evented
//! p99 worse than 2× the threaded p99 at equal connection count. CI
//! runs it on every push next to `storebench --smoke`.

use cc_bench::smoke;
use cc_core::medium::{Fault, FaultInjector, FaultPlan, FileMedium};
use cc_core::store::{CompressedStore, StoreConfig};
use cc_server::proto::Request;
use cc_server::{Client, ClientError, Pipeline, Server, ServerBackend, ServerConfig};
use cc_telemetry::trace::{orphan_spans, Tracer};
use cc_telemetry::Snapshot;
use cc_util::SplitMix64;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 4096;
/// Keys per client thread; partitions are disjoint so shadow-model
/// verification needs no cross-thread coordination.
const KEYS_PER_THREAD: u64 = 1024;
const ZIPF_S: f64 = 0.99;
/// Store budget: far under the compressed working set, so most of the
/// key space lives on the spill file and GETs split across tiers.
const BUDGET: usize = 1 << 20;

/// Zipfian sampler: precomputed CDF + binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Deterministic page content for `(key, version)`: mostly ~2:1
/// compressible filler, every fifth version incompressible noise, so
/// the store's threshold path is exercised too. The shadow model stores
/// only the version and regenerates the page to verify GETs.
fn fill_page(key: u64, version: u64, buf: &mut [u8]) {
    let salt = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version;
    if version.is_multiple_of(5) {
        let mut rng = SplitMix64::new(salt | 1);
        for b in buf.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    } else {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((salt as usize + i / 13) % 64) as u8 + b' ';
        }
    }
}

/// One client thread's tally.
#[derive(Default)]
struct ThreadResult {
    ops: u64,
    /// GET payload or DEL existed-bit disagreed with the shadow model.
    integrity_mismatches: u64,
    /// A pipelined response carried a tag that was duplicate, unknown,
    /// or already reaped.
    tag_mismatches: u64,
    /// Transport/protocol/server errors (any is a failure).
    hard_errors: u64,
    gets_hit: u64,
    gets_miss: u64,
}

impl ThreadResult {
    fn absorb(&mut self, r: ThreadResult) {
        self.ops += r.ops;
        self.integrity_mismatches += r.integrity_mismatches;
        self.tag_mismatches += r.tag_mismatches;
        self.hard_errors += r.hard_errors;
        self.gets_hit += r.gets_hit;
        self.gets_miss += r.gets_miss;
    }
}

fn run_client(
    addr: std::net::SocketAddr,
    thread: usize,
    ops: u64,
    zipf: &Zipf,
) -> Result<ThreadResult, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    client.ping()?;
    let base = thread as u64 * KEYS_PER_THREAD;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut versions: u64 = 0;
    let mut rng = SplitMix64::new(0xF00D + thread as u64);
    let mut page = vec![0u8; PAGE];
    let mut expect = vec![0u8; PAGE];
    let mut out = Vec::with_capacity(PAGE);
    let mut r = ThreadResult::default();
    for _ in 0..ops {
        let key = base + zipf.sample(&mut rng);
        r.ops += 1;
        match rng.next_u64() % 10 {
            0..=4 => {
                versions += 1;
                fill_page(key, versions, &mut page);
                match client.put(key, &page) {
                    Ok(()) => {
                        shadow.insert(key, versions);
                    }
                    Err(_) => r.hard_errors += 1,
                }
            }
            5..=8 => match client.get(key, &mut out) {
                Ok(hit) => {
                    let expected = shadow.get(&key).copied();
                    match (hit, expected) {
                        (true, Some(v)) => {
                            r.gets_hit += 1;
                            fill_page(key, v, &mut expect);
                            if out != expect {
                                r.integrity_mismatches += 1;
                            }
                        }
                        (false, None) => r.gets_miss += 1,
                        // Hit without a shadow entry, or a miss on a key
                        // we stored: the server lost or invented data.
                        _ => r.integrity_mismatches += 1,
                    }
                }
                Err(_) => r.hard_errors += 1,
            },
            _ => match client.del(key) {
                Ok(existed) => {
                    if existed != shadow.remove(&key).is_some() {
                        r.integrity_mismatches += 1;
                    }
                }
                Err(_) => r.hard_errors += 1,
            },
        }
    }
    Ok(r)
}

/// What a pipelined request promised at send time. The server executes
/// each connection's requests in submission order, so expectations
/// pinned against the shadow model *when the request is written* are
/// exact at execution time — even with `W` requests in flight.
enum Pending {
    Put,
    Get {
        key: u64,
        expect_version: Option<u64>,
    },
    Del {
        expect_existed: bool,
    },
}

/// The same zipfian 50/40/10 mix, driven through the pipelined protocol
/// with a window of `window` tagged requests in flight.
fn run_client_pipelined(
    addr: std::net::SocketAddr,
    thread: usize,
    ops: u64,
    zipf: &Zipf,
    window: usize,
) -> Result<ThreadResult, ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    client.ping()?;
    let base = thread as u64 * KEYS_PER_THREAD;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut versions: u64 = 0;
    let mut rng = SplitMix64::new(0xF00D + thread as u64);
    let mut page = vec![0u8; PAGE];
    let mut expect = vec![0u8; PAGE];
    let mut out = Vec::with_capacity(PAGE);
    let mut pipe = Pipeline::new();
    let mut pending: HashMap<u32, Pending> = HashMap::new();
    let mut r = ThreadResult::default();

    let reap = |client: &mut Client,
                pipe: &mut Pipeline,
                pending: &mut HashMap<u32, Pending>,
                out: &mut Vec<u8>,
                expect: &mut Vec<u8>,
                r: &mut ThreadResult|
     -> Result<(), ClientError> {
        use cc_server::Status;
        let (seq, status) = match pipe.recv(client, out) {
            Ok(v) => v,
            Err(ClientError::Protocol(_)) => {
                // Duplicate/unknown tag: the exactly-once window caught
                // a protocol violation.
                r.tag_mismatches += 1;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let Some(meta) = pending.remove(&seq) else {
            r.tag_mismatches += 1;
            return Ok(());
        };
        match (meta, status) {
            (Pending::Put, Status::Ok) => {}
            (Pending::Put, _) => r.hard_errors += 1,
            (
                Pending::Get {
                    key,
                    expect_version,
                },
                status,
            ) => match (status, expect_version) {
                (Status::Ok, Some(v)) => {
                    r.gets_hit += 1;
                    fill_page(key, v, expect);
                    if out != expect {
                        r.integrity_mismatches += 1;
                    }
                }
                (Status::NotFound, None) => r.gets_miss += 1,
                (Status::Ok, None) | (Status::NotFound, Some(_)) => r.integrity_mismatches += 1,
                _ => r.hard_errors += 1,
            },
            (Pending::Del { expect_existed }, status) => match status {
                Status::Ok if expect_existed => {}
                Status::NotFound if !expect_existed => {}
                Status::Ok | Status::NotFound => r.integrity_mismatches += 1,
                _ => r.hard_errors += 1,
            },
        }
        Ok(())
    };

    for _ in 0..ops {
        let key = base + zipf.sample(&mut rng);
        r.ops += 1;
        // Expectations and the shadow update happen at *send* time:
        // in-order execution per connection makes them exact.
        let seq = match rng.next_u64() % 10 {
            0..=4 => {
                versions += 1;
                fill_page(key, versions, &mut page);
                let seq = pipe.send(&mut client, &Request::Put { key, page: &page })?;
                shadow.insert(key, versions);
                pending.insert(seq, Pending::Put);
                seq
            }
            5..=8 => {
                let seq = pipe.send(&mut client, &Request::Get { key })?;
                pending.insert(
                    seq,
                    Pending::Get {
                        key,
                        expect_version: shadow.get(&key).copied(),
                    },
                );
                seq
            }
            _ => {
                let seq = pipe.send(&mut client, &Request::Del { key })?;
                pending.insert(
                    seq,
                    Pending::Del {
                        expect_existed: shadow.remove(&key).is_some(),
                    },
                );
                seq
            }
        };
        let _ = seq;
        while pipe.in_flight() >= window {
            reap(
                &mut client,
                &mut pipe,
                &mut pending,
                &mut out,
                &mut expect,
                &mut r,
            )?;
        }
    }
    while pipe.in_flight() > 0 {
        reap(
            &mut client,
            &mut pipe,
            &mut pending,
            &mut out,
            &mut expect,
            &mut r,
        )?;
    }
    if !pending.is_empty() {
        // Requests sent but never answered: every one is a lost
        // response.
        r.tag_mismatches += pending.len() as u64;
    }
    Ok(r)
}

/// Park `workers` idle connections so every worker is occupied, then
/// connect once more: the admission queue is full and the server must
/// answer `BUSY`. Returns whether the extra connection was rejected.
/// The probe reads the unsolicited BUSY frame directly (sending nothing
/// first), because the server closes right after writing it.
fn saturation_probe(addr: std::net::SocketAddr, workers: usize) -> bool {
    use cc_server::{frame, Response, Status};
    let holders: Vec<Client> = (0..workers)
        .filter_map(|_| Client::connect(addr).ok())
        .collect();
    if holders.len() < workers {
        return false;
    }
    // The holders occupy workers as soon as the pool hands them over;
    // give the rendezvous a moment so the probe races nothing.
    std::thread::sleep(Duration::from_millis(50));
    let rejected = match std::net::TcpStream::connect(addr) {
        Ok(mut extra) => {
            let _ = extra.set_read_timeout(Some(Duration::from_secs(5)));
            let mut body = Vec::new();
            match frame::read_frame(&mut extra, &mut body, frame::DEFAULT_MAX_FRAME) {
                Ok(_seq) => matches!(
                    Response::decode(&body),
                    Ok(Response {
                        status: Status::Busy,
                        ..
                    })
                ),
                Err(_) => false,
            }
        }
        Err(_) => false,
    };
    drop(holders);
    rejected
}

// ---------------------------------------------------------------------
// Connection-count A/B sweep
// ---------------------------------------------------------------------

/// Hot connections driving traffic at every sweep level; the rest of
/// the level's connections are open-and-idle.
const SWEEP_HOT: usize = 2;
/// Worker threads for the threaded backend under sweep: its
/// connection-count ceiling, chosen so the A/B is a fair
/// "thread-per-connection at its configured capacity" baseline rather
/// than an artificially tiny pool.
const SWEEP_WORKERS: usize = 16;
/// Keys per hot connection in the sweep (small: the sweep measures the
/// service path, not the store tiers).
const SWEEP_KEYS: u64 = 256;

/// One measured level of the sweep.
struct LevelResult {
    conns: usize,
    admitted: usize,
    sustained: bool,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

struct BackendSweep {
    levels: Vec<LevelResult>,
}

impl BackendSweep {
    /// The largest connection count this backend held with every
    /// connection admitted and the hot path clean.
    fn max_sustained(&self) -> usize {
        self.levels
            .iter()
            .filter(|l| l.sustained)
            .map(|l| l.conns)
            .max()
            .unwrap_or(0)
    }

    fn level(&self, conns: usize) -> Option<&LevelResult> {
        self.levels.iter().find(|l| l.conns == conns)
    }
}

/// Sequential PUT/GET hot loop with per-op client-side latency capture.
/// Returns `(latencies_ns, result)`.
fn run_hot(
    addr: std::net::SocketAddr,
    thread: usize,
    ops: u64,
) -> Result<(Vec<u64>, ThreadResult), ClientError> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(Some(Duration::from_secs(30)))?;
    client.ping()?;
    let base = thread as u64 * SWEEP_KEYS;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut versions = 0u64;
    let mut rng = SplitMix64::new(0xBEEF + thread as u64);
    let mut page = vec![0u8; PAGE];
    let mut expect = vec![0u8; PAGE];
    let mut out = Vec::with_capacity(PAGE);
    let mut lat = Vec::with_capacity(ops as usize);
    let mut r = ThreadResult::default();
    for _ in 0..ops {
        let key = base + rng.next_u64() % SWEEP_KEYS;
        r.ops += 1;
        let t0 = Instant::now();
        if rng.next_u64().is_multiple_of(2) {
            versions += 1;
            fill_page(key, versions, &mut page);
            match client.put(key, &page) {
                Ok(()) => {
                    shadow.insert(key, versions);
                }
                Err(_) => r.hard_errors += 1,
            }
        } else {
            match client.get(key, &mut out) {
                Ok(hit) => match (hit, shadow.get(&key).copied()) {
                    (true, Some(v)) => {
                        r.gets_hit += 1;
                        fill_page(key, v, &mut expect);
                        if out != expect {
                            r.integrity_mismatches += 1;
                        }
                    }
                    (false, None) => r.gets_miss += 1,
                    _ => r.integrity_mismatches += 1,
                },
                Err(_) => r.hard_errors += 1,
            }
        }
        lat.push(t0.elapsed().as_nanos() as u64);
    }
    Ok((lat, r))
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * p).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1_000.0
}

/// One sweep level against a fresh server: `conns - SWEEP_HOT` idle
/// connections held open, `SWEEP_HOT` hot connections measured.
fn sweep_level(backend: ServerBackend, conns: usize, ops_per_hot: u64) -> LevelResult {
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
    let mut cfg = ServerConfig::default()
        .with_backend(backend)
        .with_idle_timeout(Duration::from_secs(120));
    cfg = match backend {
        // The pool's connection capacity IS the contended resource: cap
        // it crisply at the worker count (no backlog grace).
        ServerBackend::Threaded => cfg.with_workers(SWEEP_WORKERS).with_backlog(0),
        // The reactor is capacity-limited only by its admission cap.
        ServerBackend::Evented | ServerBackend::EventedPoll => cfg.with_max_conns(4096),
    };
    let server = Server::spawn(store, "127.0.0.1:0", cfg).expect("spawn sweep server");
    let addr = server.local_addr();

    // Idle holders first, then the hot connections claim the remaining
    // capacity — at a backend's exact capacity the level only fits in
    // this order. A connection counts as admitted once a PING
    // round-trips on it.
    let idle_target = conns.saturating_sub(SWEEP_HOT);
    let mut admitted = 0usize;
    let mut idle_holders = Vec::with_capacity(idle_target);
    for _ in 0..idle_target {
        let ok = Client::connect(addr).ok().and_then(|mut c| {
            c.set_timeout(Some(Duration::from_secs(3))).ok()?;
            c.ping().ok()?;
            Some(c)
        });
        match ok {
            Some(c) => {
                idle_holders.push(c);
                admitted += 1;
            }
            None => break,
        }
    }

    let start = Instant::now();
    let hot: Vec<_> = (0..SWEEP_HOT)
        .map(|t| std::thread::spawn(move || run_hot(addr, t, ops_per_hot)))
        .collect();
    let mut lat: Vec<u64> = Vec::new();
    let mut tally = ThreadResult::default();
    let mut hot_admitted = 0usize;
    for h in hot {
        if let Ok((l, r)) = h.join().expect("hot thread panicked") {
            lat.extend(l);
            tally.absorb(r);
            hot_admitted += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(idle_holders);
    server.shutdown();

    lat.sort_unstable();
    let sustained = hot_admitted == SWEEP_HOT
        && admitted == idle_target
        && tally.hard_errors == 0
        && tally.integrity_mismatches == 0;
    LevelResult {
        conns,
        admitted: admitted + hot_admitted,
        sustained,
        ops_per_sec: tally.ops as f64 / elapsed.max(1e-9),
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
    }
}

/// Run the level ladder for one backend, stopping after the first level
/// it fails to sustain (higher levels cannot do better).
fn sweep_backend(backend: ServerBackend, levels: &[usize], ops_per_hot: u64) -> BackendSweep {
    let mut out = BackendSweep { levels: Vec::new() };
    for &conns in levels {
        eprintln!("  sweep {}: {} conns ...", backend.name(), conns);
        let level = sweep_level(backend, conns, ops_per_hot);
        eprintln!(
            "    admitted {}/{}, {}, {:.0} ops/s, p50 {:.0} us, p99 {:.0} us",
            level.admitted,
            conns,
            if level.sustained {
                "sustained"
            } else {
                "NOT sustained"
            },
            level.ops_per_sec,
            level.p50_us,
            level.p99_us,
        );
        let stop = !level.sustained;
        out.levels.push(level);
        if stop {
            break;
        }
    }
    out
}

fn sweep_json(s: &BackendSweep) -> String {
    let levels: Vec<String> = s
        .levels
        .iter()
        .map(|l| {
            format!(
                "{{\"conns\": {}, \"admitted\": {}, \"sustained\": {}, \"ops_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                l.conns, l.admitted, l.sustained, l.ops_per_sec, l.p50_us, l.p99_us
            )
        })
        .collect();
    format!(
        "{{\"levels\": [{}], \"max_sustained_conns\": {}}}",
        levels.join(", "),
        s.max_sustained()
    )
}

fn op_json(snap: &Snapshot, op: &str) -> String {
    match snap.op(op) {
        Some(s) => format!(
            "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            s.count, s.p50, s.p99, s.max
        ),
        None => "{\"count\": 0}".into(),
    }
}

/// Pull `cc_store_<name>_total` back out of the STATS payload — the
/// tier split is reported from the wire text itself, proving STATS is
/// scrapeable, not just present.
fn stats_counter(stats: &str, name: &str) -> u64 {
    let needle = format!("cc_store_{name}_total ");
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// Request tracing (`--trace`)
// ---------------------------------------------------------------------

/// What the `--trace` run measured, for the JSON `trace` section and
/// the smoke gates.
struct TraceInfo {
    sample_every: u64,
    sampled_spans: u64,
    wrapped: bool,
    orphans: usize,
    dumps_auto: u64,
    /// The on-demand DUMP fetched over the wire parsed as a recorder
    /// document.
    wire_dump_ok: bool,
    overhead: TraceOverhead,
    /// Automatic dumps produced by the injected-fault trial.
    fault_dumps: u64,
    /// Trace id on the dedicated exemplar trial's GET max.
    max_exemplar_trace: u64,
    /// That trace id appeared as a dumped trace in the DUMP payload.
    exemplar_resolved: bool,
}

/// Throughput cost of tracing at the default sampling rate: the same
/// interleaved best-of-3 construction as the storebench telemetry
/// gate, so machine noise hits both configurations alike.
struct TraceOverhead {
    ops_per_sec_on: f64,
    ops_per_sec_off: f64,
    overhead_pct: f64,
}

/// One probe trial: a fresh single-worker server (traced or not), one
/// closed-loop client, client-observed throughput.
fn trace_probe_trial(ops: u64, zipf: &Zipf, traced: bool) -> f64 {
    let mut cfg = StoreConfig::in_memory(BUDGET);
    if traced {
        // Default sampling (1-in-64) — the rate the overhead budget is
        // defined at.
        cfg = cfg.with_tracer(Arc::new(
            Tracer::builder()
                .ring_capacity(1 << 13)
                .sink_memory()
                .build(),
        ));
    }
    let store = Arc::new(CompressedStore::new(cfg));
    let server = Server::spawn(
        store,
        "127.0.0.1:0",
        ServerConfig::default().with_workers(1),
    )
    .expect("spawn probe server");
    let addr = server.local_addr();
    let start = Instant::now();
    let r = run_client(addr, 0, ops, zipf).expect("probe client");
    let rate = r.ops as f64 / start.elapsed().as_secs_f64().max(1e-9);
    server.shutdown();
    rate
}

fn run_trace_overhead_probe(ops: u64, zipf: &Zipf) -> TraceOverhead {
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..3 {
        best_off = best_off.max(trace_probe_trial(ops, zipf, false));
        best_on = best_on.max(trace_probe_trial(ops, zipf, true));
    }
    TraceOverhead {
        ops_per_sec_on: best_on,
        ops_per_sec_off: best_off,
        overhead_pct: ((1.0 - best_on / best_off.max(1.0)) * 100.0).max(0.0),
    }
}

/// Injected-fault trial: a store whose medium corrupts every spill
/// read must trip the flight recorder — the anomaly fires at the CRC
/// failure and auto-dumps. Returns the number of dumps written. The
/// fault script keys on the global medium-operation index (read faults
/// at write indices pass through harmlessly), so the trial is
/// deterministic regardless of writer scheduling.
fn trace_fault_trial() -> u64 {
    let tracer = Arc::new(Tracer::builder().sample_every(1).sink_memory().build());
    let path = std::env::temp_dir().join(format!("loadgen-trace-fault-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let plan = FaultPlan {
        script: (0..4096).map(|i| (i, Fault::ReadCorrupt)).collect(),
        ..FaultPlan::quiet()
    };
    let medium = FaultInjector::new(FileMedium::create(&path).expect("spill file"), plan);
    let store = CompressedStore::with_medium(
        StoreConfig::with_spill(16 << 10, &path).with_tracer(Arc::clone(&tracer)),
        Arc::new(medium),
    );
    let mut page = vec![0u8; PAGE];
    for key in 0..64u64 {
        fill_page(key, 1, &mut page);
        store
            .put_traced(key, &page, tracer.sample())
            .expect("fault-trial put");
    }
    store.flush().expect("fault-trial flush");
    let mut out = vec![0u8; PAGE];
    for key in 0..64u64 {
        // The first spilled entry surfaces the corruption; stop there.
        if store.get_traced(key, &mut out, tracer.sample()).is_err() {
            break;
        }
    }
    store.shutdown();
    let _ = std::fs::remove_file(&path);
    tracer.dumps_written()
}

/// Exemplar trial: every request sampled and the rings sized to hold
/// the whole run, so the wire GET histogram's max exemplar must carry a
/// trace id that resolves inside the DUMP payload fetched over the
/// wire. Returns `(max_trace, resolved)`.
fn trace_exemplar_trial() -> (u64, bool) {
    let tracer = Arc::new(
        Tracer::builder()
            .sample_every(1)
            .ring_capacity(1 << 13)
            .sink_memory()
            .build(),
    );
    let store = Arc::new(CompressedStore::new(
        StoreConfig::in_memory(8 << 20).with_tracer(Arc::clone(&tracer)),
    ));
    let server = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .expect("spawn exemplar server");
    let mut client = Client::connect(server.local_addr()).expect("exemplar connect");
    let mut page = vec![0u8; PAGE];
    let mut out = Vec::with_capacity(PAGE);
    for key in 0..256u64 {
        fill_page(key, 1, &mut page);
        client.put(key, &page).expect("exemplar put");
        client.get(key, &mut out).expect("exemplar get");
    }
    let dump = client.dump().expect("exemplar DUMP");
    let snap = server.service().snapshot();
    server.shutdown();
    let max_trace = snap.op("get").map_or(0, |s| s.max_trace);
    let resolved = max_trace != 0 && dump.contains(&format!("\"trace_id\": {max_trace}"));
    (max_trace, resolved)
}

fn main() {
    let mut threads: usize = 4;
    let mut ops_per_thread: u64 = 50_000;
    let mut out_path = String::from("BENCH_server.json");
    let mut smoke_mode = false;
    let mut backend = ServerBackend::Threaded;
    let mut pipeline_window: usize = 0;
    let mut sweep_conns: usize = 0;
    let mut trace_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads expects a count");
                    std::process::exit(2);
                })
            }
            "--ops" => {
                ops_per_thread = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ops expects a number of operations per thread");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a file path");
                    std::process::exit(2);
                })
            }
            "--backend" => {
                let name = args.next().unwrap_or_default();
                backend = ServerBackend::parse(&name).unwrap_or_else(|| {
                    eprintln!("--backend expects threaded|evented|evented-poll, got {name:?}");
                    std::process::exit(2);
                })
            }
            "--pipeline" => {
                pipeline_window = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--pipeline expects a window size (0 disables)");
                    std::process::exit(2);
                })
            }
            "--conns" => {
                sweep_conns = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--conns expects a connection count for the A/B sweep");
                    std::process::exit(2);
                })
            }
            "--smoke" => {
                smoke_mode = true;
                threads = 4;
                ops_per_thread = 10_000;
            }
            "--trace" => trace_mode = true,
            other => {
                eprintln!(
                    "unknown arg: {other}\nusage: loadgen [--threads N] [--ops N] [--backend threaded|evented|evented-poll] [--pipeline W] [--conns N] [--trace] [--out PATH] [--smoke]"
                );
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);

    let spill_path = std::env::temp_dir().join(format!("loadgen-spill-{}.bin", std::process::id()));
    // `--trace`: the store (and through it the server) samples requests
    // into the flight recorder at the default 1-in-64 rate; stripes
    // match the worker count so span recording stays uncontended.
    let tracer = trace_mode.then(|| {
        Arc::new(
            Tracer::builder()
                .stripes(threads + 1)
                .ring_capacity(1 << 13)
                .sink_memory()
                .build(),
        )
    });
    let mut store_cfg = StoreConfig::with_spill(BUDGET, &spill_path);
    if let Some(t) = &tracer {
        store_cfg = store_cfg.with_tracer(Arc::clone(t));
    }
    let store = Arc::new(CompressedStore::new(store_cfg));
    let server = Server::spawn(
        Arc::clone(&store),
        "127.0.0.1:0",
        ServerConfig::default()
            .with_backend(backend)
            .with_workers(threads),
    )
    .expect("spawn server");
    let addr = server.local_addr();
    let service = Arc::clone(server.service());
    eprintln!(
        "loadgen: {threads} clients x {ops_per_thread} ops, {KEYS_PER_THREAD} zipfian(s={ZIPF_S}) keys/thread, mixed 50/40/10 put/get/del, server {addr} (backend {}, {threads} workers, budget {BUDGET}{})",
        backend.name(),
        if pipeline_window > 0 {
            format!(", pipeline window {pipeline_window}")
        } else {
            String::new()
        }
    );

    let zipf = Arc::new(Zipf::new(KEYS_PER_THREAD, ZIPF_S));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let zipf = Arc::clone(&zipf);
            std::thread::spawn(move || {
                if pipeline_window > 0 {
                    run_client_pipelined(addr, t, ops_per_thread, &zipf, pipeline_window)
                } else {
                    run_client(addr, t, ops_per_thread, &zipf)
                }
            })
        })
        .collect();
    let mut total = ThreadResult::default();
    let mut connect_failures = 0u64;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(r) => total.absorb(r),
            Err(e) => {
                eprintln!("  client setup failed: {e}");
                connect_failures += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ops_per_sec = total.ops as f64 / elapsed.max(1e-9);

    // A final connection: drain the spill writer, then fetch STATS over
    // the wire so the tier split below comes from the scrape payload.
    let stats_text = {
        let mut c = Client::connect(addr).expect("stats connection");
        c.flush().expect("flush");
        c.stats().expect("stats")
    };

    // With tracing on, also pull the flight recorder over the wire: the
    // DUMP opcode must answer a recorder document mid-run.
    let wire_dump = tracer.as_ref().map(|_| {
        let mut c = Client::connect(addr).expect("dump connection");
        c.dump().expect("DUMP")
    });

    let busy_seen = if smoke_mode || backend != ServerBackend::Threaded {
        // The smoke gate requires zero rejected frames, so the probe
        // (which manufactures one) only runs in full mode; the probe's
        // park-the-workers construction is also specific to the
        // threaded pool. BUSY-path coverage for the reactor lives in
        // the server integration tests and the sweep below.
        false
    } else {
        saturation_probe(addr, threads)
    };

    server.shutdown();
    let snap = service.snapshot();
    let store_snap = store.telemetry_snapshot();
    drop(store);
    let _ = std::fs::remove_file(&spill_path);

    let wire = |name: &str| snap.counter(name).unwrap_or(0);
    let (hits_memory, hits_spill, misses) = (
        stats_counter(&stats_text, "hits_memory"),
        stats_counter(&stats_text, "hits_spill"),
        stats_counter(&stats_text, "misses"),
    );
    eprintln!(
        "  {:.0} ops/s over {:.2}s; {} get hits / {} misses; integrity mismatches {}, tag mismatches {}, hard errors {}",
        ops_per_sec, elapsed, total.gets_hit, total.gets_miss, total.integrity_mismatches, total.tag_mismatches, total.hard_errors,
    );
    eprintln!(
        "  wire: put p50 {} ns / get p50 {} ns / del p50 {} ns; conns {} opened / {} closed; busy {} malformed {}",
        snap.op("put").map_or(0, |s| s.p50),
        snap.op("get").map_or(0, |s| s.p50),
        snap.op("del").map_or(0, |s| s.p50),
        wire("conns_opened"),
        wire("conns_closed"),
        wire("busy_rejected"),
        wire("malformed_frames"),
    );
    eprintln!("  store tiers (from STATS): {hits_memory} memory hits, {hits_spill} spill hits, {misses} misses");
    if !smoke_mode && backend == ServerBackend::Threaded {
        eprintln!(
            "  saturation probe: extra connection {}",
            if busy_seen {
                "rejected BUSY (bounded admission)"
            } else {
                "NOT rejected"
            }
        );
    }

    // Trace plane: span accounting from the main run, then the three
    // dedicated trials (overhead probe, injected-fault dump, exemplar
    // resolution) on their own fresh servers.
    let trace_info = tracer.as_ref().map(|t| {
        let spans = t.spans();
        let wrapped = t.wrapped();
        let orphans = if wrapped { 0 } else { orphan_spans(&spans) };
        let wire_dump_ok = wire_dump
            .as_deref()
            .is_some_and(|d| d.contains("\"reason\": \"on-demand\""));
        eprintln!(
            "  trace: 1-in-{} sampling, {} spans recorded{}, {} orphan(s), {} auto dump(s), wire DUMP {}",
            t.sample_rate(),
            t.spans_recorded(),
            if wrapped { " (rings wrapped)" } else { "" },
            orphans,
            t.dumps_written(),
            if wire_dump_ok { "ok" } else { "BAD" },
        );
        let probe_ops = (ops_per_thread / 2).max(2_000);
        let overhead = run_trace_overhead_probe(probe_ops, &zipf);
        eprintln!(
            "  trace overhead: {:.2}% ({:.0} ops/s traced vs {:.0} ops/s untraced, interleaved best-of-3)",
            overhead.overhead_pct, overhead.ops_per_sec_on, overhead.ops_per_sec_off,
        );
        let fault_dumps = trace_fault_trial();
        let (max_exemplar_trace, exemplar_resolved) = trace_exemplar_trial();
        eprintln!(
            "  trace trials: injected corruption wrote {} dump(s); GET max exemplar trace {:#x} {}",
            fault_dumps,
            max_exemplar_trace,
            if exemplar_resolved {
                "resolved in the wire DUMP"
            } else {
                "NOT resolved"
            },
        );
        TraceInfo {
            sample_every: t.sample_rate(),
            sampled_spans: t.spans_recorded(),
            wrapped,
            orphans,
            dumps_auto: t.dumps_written(),
            wire_dump_ok,
            overhead,
            fault_dumps,
            max_exemplar_trace,
            exemplar_resolved,
        }
    });

    // Connection-count A/B sweep: threaded vs evented at increasing
    // open-connection levels.
    let sweep = if sweep_conns > 0 {
        let mut levels: Vec<usize> = Vec::new();
        let mut c = 4usize;
        while c < sweep_conns {
            levels.push(c);
            c *= 4;
        }
        levels.push(sweep_conns);
        let ops_per_hot: u64 = if smoke_mode { 600 } else { 3_000 };
        eprintln!(
            "ab sweep: levels {:?}, {} hot conns x {} ops each, threaded workers {}",
            levels, SWEEP_HOT, ops_per_hot, SWEEP_WORKERS
        );
        let threaded = sweep_backend(ServerBackend::Threaded, &levels, ops_per_hot);
        let evented = sweep_backend(ServerBackend::Evented, &levels, ops_per_hot);
        let (t_max, e_max) = (threaded.max_sustained(), evented.max_sustained());
        let ratio = if t_max > 0 {
            e_max as f64 / t_max as f64
        } else {
            0.0
        };
        // Tail-latency comparison at the largest level both backends
        // sustain: "equal concurrency".
        let equal = threaded
            .levels
            .iter()
            .filter(|l| l.sustained)
            .filter_map(|l| {
                evented
                    .level(l.conns)
                    .filter(|e| e.sustained)
                    .map(|e| (l, e))
            })
            .max_by_key(|(l, _)| l.conns);
        let p99_ratio = equal
            .map(|(t, e)| e.p99_us / t.p99_us.max(1e-9))
            .unwrap_or(f64::NAN);
        eprintln!(
            "  verdict: threaded sustains {t_max} conns, evented {e_max} ({ratio:.1}x); p99 evented/threaded at {} conns = {:.2}",
            equal.map(|(l, _)| l.conns).unwrap_or(0),
            p99_ratio,
        );
        Some((threaded, evented, t_max, e_max, ratio, p99_ratio))
    } else {
        None
    };

    let ab_json = match &sweep {
        Some((t, e, t_max, e_max, ratio, p99_ratio)) => format!(
            ",\n  \"ab_sweep\": {{\n    \"hot_conns\": {SWEEP_HOT},\n    \"threaded_workers\": {SWEEP_WORKERS},\n    \"threaded\": {},\n    \"evented\": {},\n    \"verdict\": {{\"threaded_max_conns\": {t_max}, \"evented_max_conns\": {e_max}, \"conn_ratio\": {ratio:.1}, \"equal_conns_p99_ratio\": {p99_ratio:.3}}}\n  }}",
            sweep_json(t),
            sweep_json(e),
        ),
        None => String::new(),
    };
    let trace_json = match &trace_info {
        Some(ti) => format!(
            ",\n  \"trace\": {{\n    \"sample_every\": {},\n    \"sampled_spans\": {},\n    \"rings_wrapped\": {},\n    \"orphan_spans\": {},\n    \"dumps_auto\": {},\n    \"wire_dump_ok\": {},\n    \"overhead\": {{\"ops_per_sec_traced\": {:.0}, \"ops_per_sec_untraced\": {:.0}, \"overhead_pct\": {:.2}}},\n    \"fault_trial_dumps\": {},\n    \"max_exemplar_trace\": {},\n    \"exemplar_resolved\": {}\n  }}",
            ti.sample_every,
            ti.sampled_spans,
            ti.wrapped,
            ti.orphans,
            ti.dumps_auto,
            ti.wire_dump_ok,
            ti.overhead.ops_per_sec_on,
            ti.overhead.ops_per_sec_off,
            ti.overhead.overhead_pct,
            ti.fault_dumps,
            ti.max_exemplar_trace,
            ti.exemplar_resolved,
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"benchmark\": \"loadgen\",\n  \"backend\": \"{}\",\n  \"pipeline_window\": {pipeline_window},\n  \"threads\": {threads},\n  \"ops_per_thread\": {ops_per_thread},\n  \"keys_per_thread\": {KEYS_PER_THREAD},\n  \"zipf_s\": {ZIPF_S},\n  \"page_size\": {PAGE},\n  \"budget_bytes\": {BUDGET},\n  \"mix\": \"50% put / 40% get / 10% del\",\n  \"elapsed_s\": {elapsed:.3},\n  \"ops_per_sec\": {ops_per_sec:.0},\n  \"gets_hit\": {},\n  \"gets_miss\": {},\n  \"integrity_mismatches\": {},\n  \"tag_mismatches\": {},\n  \"hard_errors\": {},\n  \"ops\": {{\n    \"put\": {},\n    \"get\": {},\n    \"del\": {},\n    \"flush\": {},\n    \"stats\": {},\n    \"ping\": {}\n  }},\n  \"wire\": {{\n    \"req_put\": {},\n    \"req_get\": {},\n    \"req_del\": {},\n    \"conns_opened\": {},\n    \"conns_closed\": {},\n    \"busy_rejected\": {},\n    \"malformed_frames\": {},\n    \"idle_timeouts\": {}\n  }},\n  \"tier_split\": {{\"hits_memory\": {hits_memory}, \"hits_spill\": {hits_spill}, \"misses\": {misses}}},\n  \"saturation_probe_busy\": {}{ab_json}{trace_json},\n  \"note\": \"closed-loop loopback load against the in-process cc-server; every GET verified byte-for-byte against a per-thread shadow model (integrity_mismatches must be 0; tag_mismatches counts pipelined responses whose tag was duplicate, unknown, or lost). ops.* are the server's own per-opcode wire latency histograms in nanoseconds; tier_split is parsed from the STATS Prometheus payload fetched over the wire; saturation_probe_busy records whether an extra connection beyond the worker pool was answered BUSY (threaded full mode only); ab_sweep (when present) holds the per-backend connection-count ladder — client-observed hot-path latency with the remaining connections open-and-idle — and the threaded-vs-evented verdict; trace (when present, from --trace) holds the flight-recorder accounting — main-run span sampling, the interleaved traced-vs-untraced overhead probe, the injected-corruption dump trial, and whether the GET max-latency exemplar's trace id resolved inside the on-wire DUMP payload.\"\n}}\n",
        backend.name(),
        total.gets_hit,
        total.gets_miss,
        total.integrity_mismatches,
        total.tag_mismatches,
        total.hard_errors,
        op_json(&snap, "put"),
        op_json(&snap, "get"),
        op_json(&snap, "del"),
        op_json(&snap, "flush"),
        op_json(&snap, "stats"),
        op_json(&snap, "ping"),
        wire("req_put"),
        wire("req_get"),
        wire("req_del"),
        wire("conns_opened"),
        wire("conns_closed"),
        wire("busy_rejected"),
        wire("malformed_frames"),
        wire("idle_timeouts"),
        busy_seen,
    );
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out_path}");

    if smoke_mode {
        let mut failures = Vec::new();
        if connect_failures > 0 {
            failures.push(format!("{connect_failures} client thread(s) failed to run"));
        }
        if total.integrity_mismatches > 0 {
            failures.push(format!(
                "{} GET/DEL responses disagreed with the shadow model",
                total.integrity_mismatches
            ));
        }
        if total.tag_mismatches > 0 {
            failures.push(format!(
                "{} pipelined response tags were duplicate, unknown, or lost",
                total.tag_mismatches
            ));
        }
        if total.hard_errors > 0 {
            failures.push(format!("{} transport/server errors", total.hard_errors));
        }
        if total.gets_hit == 0 {
            failures.push("no GET ever hit: the workload exercised nothing".into());
        }
        for name in ["busy_rejected", "malformed_frames", "idle_timeouts"] {
            let v = wire(name);
            if v > 0 {
                failures.push(format!("{name} is {v}, expected 0"));
            }
        }
        // Every opcode the run issues must have a sane wire histogram.
        for op in ["put", "get", "del", "flush", "stats", "ping"] {
            if let Some(f) = smoke::check_hist(&snap, op) {
                failures.push(f);
            }
        }
        // Ring events must agree with the counters they shadow.
        for (event, counter) in [
            ("conn_open", "conns_opened"),
            ("conn_close", "conns_closed"),
        ] {
            if let Some(f) = smoke::check_event_agrees(&snap, event, counter, wire(counter)) {
                failures.push(f);
            }
        }
        // The STATS payload must be a parseable Prometheus exposition
        // carrying both the store's and the server's metric families,
        // and must match the schema the in-process snapshots render.
        if let Some(f) = smoke::check_prometheus(
            &stats_text,
            &["cc_store_compressed_total", "cc_server_req_put_total"],
        ) {
            failures.push(f);
        }
        let expected = {
            let mut t = store_snap.to_prometheus("cc_store");
            // STATS was fetched mid-run, so values differ; schema
            // equality means the same metric names in the same order.
            t.push_str(&snap.to_prometheus("cc_server"));
            let names = |text: &str| {
                text.lines()
                    .filter(|l| !l.starts_with('#') && !l.is_empty())
                    .filter_map(|l| l.split_whitespace().next().map(str::to_owned))
                    .collect::<Vec<_>>()
            };
            (names(&t), names(&stats_text))
        };
        if expected.0 != expected.1 {
            failures.push("STATS metric names/order differ from the Exporter schema".into());
        }
        // Sweep gates: both backends must sustain at least the smallest
        // level, and the reactor's tail latency must stay within 2x of
        // the pool's at equal connection count.
        if let Some((_, _, t_max, e_max, _, p99_ratio)) = &sweep {
            if *t_max == 0 {
                failures.push("sweep: threaded backend sustained no level".into());
            }
            if *e_max == 0 {
                failures.push("sweep: evented backend sustained no level".into());
            }
            if *e_max < *t_max {
                failures.push(format!(
                    "sweep: evented sustained fewer conns ({e_max}) than threaded ({t_max})"
                ));
            }
            if !p99_ratio.is_nan() && *p99_ratio > 2.0 {
                failures.push(format!(
                    "sweep: evented p99 is {p99_ratio:.2}x threaded at equal connection count (gate: 2x)"
                ));
            }
        }
        // Trace gates: sampling must stay within its overhead budget,
        // every sampled span must resolve its parent, anomalies must
        // dump, and the tail exemplar must name a dumped trace.
        if let Some(ti) = &trace_info {
            if !ti.wrapped && ti.orphans > 0 {
                failures.push(format!(
                    "trace: {} orphan span(s) — sampled requests lost part of their tree",
                    ti.orphans
                ));
            }
            if ti.sampled_spans == 0 {
                failures.push("trace: the run recorded no spans at all".into());
            }
            if !ti.wire_dump_ok {
                failures.push("trace: the DUMP opcode did not answer a recorder document".into());
            }
            if ti.overhead.overhead_pct > 5.0 {
                failures.push(format!(
                    "trace: overhead {:.2}% exceeds the 5% budget ({:.0} ops/s traced vs {:.0} ops/s untraced)",
                    ti.overhead.overhead_pct,
                    ti.overhead.ops_per_sec_on,
                    ti.overhead.ops_per_sec_off
                ));
            }
            if ti.fault_dumps == 0 {
                failures.push(
                    "trace: injected spill corruption produced no flight-recorder dump".into(),
                );
            }
            if !ti.exemplar_resolved {
                failures.push(format!(
                    "trace: GET max exemplar trace {:#x} did not resolve to a dumped trace",
                    ti.max_exemplar_trace
                ));
            }
        }
        std::process::exit(smoke::report("loadgen", &failures));
    }
}
