//! The §4.2 dynamic-sizing exhibit: cache size over time under a
//! phase-shifting workload.
//!
//! *"the system can dynamically vary the amount of memory used for
//! uncompressed pages, compressed pages, and file blocks"* — this harness
//! drives four phases (big compressible sweep, hot incompressible set,
//! file streaming, back to the sweep) and plots the compression cache's
//! frame count over virtual time.

use cc_sim::{Mode, SimConfig, System};
use cc_util::{plot, SplitMix64};

const MB: u64 = 1024 * 1024;

fn main() {
    let mut cfg = SimConfig::decstation(4 * MB as usize, Mode::Cc);
    cfg.cc.compress_file_cache = false;
    let mut sys = System::new(cfg);
    sys.enable_size_trace();
    let mut marks: Vec<(&str, f64)> = Vec::new();

    // Phase 1: an 8 MB compressible sweep (cache should grow large).
    marks.push(("sweep", sys.now().as_secs_f64()));
    let sweep = sys.create_segment(8 * MB);
    let mut page = vec![0u8; 4096];
    for p in 0..(8 * MB / 4096) {
        cc_workloads::datagen::fill_4to1(&mut page, p);
        sys.write_slice(sweep, p * 4096, &page);
    }
    for pass in 0..3u64 {
        for p in 0..(8 * MB / 4096) {
            let v = sys.read_u32(sweep, p * 4096);
            sys.write_u32(sweep, p * 4096, v.wrapping_add(pass as u32));
        }
    }

    // Phase 2: a hot incompressible working set (cache must yield).
    marks.push(("hot-noise", sys.now().as_secs_f64()));
    let hot_bytes = 3 * MB + MB / 2;
    let hot = sys.create_segment(hot_bytes);
    let mut rng = SplitMix64::new(3);
    let mut noise = vec![0u8; 4096];
    for p in 0..(hot_bytes / 4096) {
        for b in noise.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        sys.write_slice(hot, p * 4096, &noise);
    }
    for _ in 0..10 {
        for p in 0..(hot_bytes / 4096) {
            let _ = sys.read_u32(hot, p * 4096);
        }
    }

    // Phase 3: stream a file (buffer cache joins the contest).
    marks.push(("file-stream", sys.now().as_secs_f64()));
    let file = sys.file_create("stream", 1024);
    let mut buf = vec![0u8; 4096];
    for _ in 0..3 {
        for b in 0..1024u64 {
            sys.file_read(file, b * 4096, &mut buf);
        }
    }

    // Phase 4: back to the sweep (cache grows again).
    marks.push(("sweep-again", sys.now().as_secs_f64()));
    for pass in 0..3u64 {
        for p in 0..(8 * MB / 4096) {
            let v = sys.read_u32(sweep, p * 4096);
            sys.write_u32(sweep, p * 4096, v.wrapping_add(pass as u32));
        }
    }
    marks.push(("end", sys.now().as_secs_f64()));

    // Downsample the trace for plotting.
    let trace = sys.size_trace();
    assert!(!trace.is_empty(), "no samples recorded");
    let step = (trace.len() / 512).max(1);
    let xs: Vec<f64> = trace
        .iter()
        .step_by(step)
        .map(|(t, _)| t.as_secs_f64())
        .collect();
    let ys: Vec<f64> = trace
        .iter()
        .step_by(step)
        .map(|(_, f)| *f as f64 * 4096.0 / MB as f64)
        .collect();

    println!("== Compression-cache size over time (4 MB machine) ==\n");
    println!(
        "{}",
        plot::line_chart(
            "cache size (MB) vs time (s)",
            &xs,
            &[("cc", ys.clone())],
            72,
            18
        )
    );
    println!("phases:");
    for w in marks.windows(2) {
        let (name, start) = w[0];
        let (_, end) = w[1];
        // Mean size within the phase.
        let vals: Vec<f64> = trace
            .iter()
            .filter(|(t, _)| {
                let s = t.as_secs_f64();
                s >= start && s < end
            })
            .map(|(_, f)| *f as f64 * 4096.0 / MB as f64)
            .collect();
        let mean = if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        println!("  {name:<12} {start:>8.1}s..{end:>8.1}s   mean cache {mean:>5.2} MB");
    }

    // Shape checks: grows in sweeps, yields under hot noise. Phase means
    // are taken over the *last third* of each phase so fill-transition
    // effects (the previous phase's pages draining into the cache) don't
    // mask the equilibrium.
    let phase_mean = |i: usize| -> f64 {
        let (_, start) = marks[i];
        let (_, end) = marks[i + 1];
        let tail_start = start + (end - start) * 2.0 / 3.0;
        let vals: Vec<f64> = trace
            .iter()
            .filter(|(t, _)| {
                let s = t.as_secs_f64();
                s >= tail_start && s < end
            })
            .map(|(_, f)| *f as f64)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let sweep1 = phase_mean(0);
    let hot = phase_mean(1);
    let sweep2 = phase_mean(3);
    println!("\nPaper-shape checks:");
    println!("  sweep {sweep1:.0} frames -> hot-noise {hot:.0} -> sweep again {sweep2:.0}");
    assert!(sweep1 > 1.5 * hot, "cache must yield under the hot set");
    assert!(sweep2 > 1.5 * hot, "cache must regrow for the sweep");
    println!("  OK: the cache grows under compressible paging and yields to");
    println!("      an incompressible working set — §4.2's dynamic sizing.");
}
