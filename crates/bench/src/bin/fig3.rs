//! Figure 3: thrasher under the four configurations of §5.1.
//!
//! *"Figure 3 shows access time as a function of working set size, on a
//! machine configured to use no more than 12 Mbytes (of which about
//! 6 Mbytes are available to user processes)"* — four lines: `std_rw`,
//! `cc_rw`, `std_ro`, `cc_ro`; panel (a) is average page access time,
//! panel (b) the speedup of cc relative to std.
//!
//! Run with `--quick` for a 1/8-scale smoke pass.

use cc_bench::scaled;
use cc_sim::{Mode, SimConfig, System};
use cc_util::plot;
use cc_workloads::thrasher::{measure_cycle_access_time, Thrasher};

const MB: u64 = 1024 * 1024;

fn one_point(space: u64, write: bool, mode: Mode, user_mem: u64) -> f64 {
    let mut sys = System::new(SimConfig::decstation(user_mem as usize, mode));
    let t = Thrasher::figure3(space, write);
    let (ms, _) = measure_cycle_access_time(&mut sys, &t);
    ms
}

fn main() {
    let user_mem = scaled(6 * MB);
    let sizes: Vec<u64> = [2u64, 4, 6, 8, 10, 12, 15, 20, 25, 30, 35, 40]
        .iter()
        .map(|&mb| scaled(mb * MB))
        .collect();

    println!(
        "== Figure 3: thrasher, {} user memory, RZ57 backing store ==\n",
        cc_util::fmt::bytes(user_mem)
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "size(MB)", "std_rw", "cc_rw", "std_ro", "cc_ro", "spd_rw", "spd_ro"
    );

    let mut xs = Vec::new();
    let mut std_rw = Vec::new();
    let mut cc_rw = Vec::new();
    let mut std_ro = Vec::new();
    let mut cc_ro = Vec::new();
    let mut spd_rw = Vec::new();
    let mut spd_ro = Vec::new();

    for &space in &sizes {
        let srw = one_point(space, true, Mode::Std, user_mem);
        let crw = one_point(space, true, Mode::Cc, user_mem);
        let sro = one_point(space, false, Mode::Std, user_mem);
        let cro = one_point(space, false, Mode::Cc, user_mem);
        println!(
            "{:>8.1} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>9.2}",
            space as f64 / MB as f64,
            srw,
            crw,
            sro,
            cro,
            srw / crw,
            sro / cro
        );
        xs.push(space as f64 / MB as f64);
        std_rw.push(srw);
        cc_rw.push(crw);
        std_ro.push(sro);
        cc_ro.push(cro);
        spd_rw.push(srw / crw);
        spd_ro.push(sro / cro);
    }

    println!();
    println!(
        "{}",
        plot::line_chart(
            "(a) Average page access time (ms) vs address space (MB)",
            &xs,
            &[
                ("std_rw", std_rw.clone()),
                ("cc_rw", cc_rw.clone()),
                ("std_ro", std_ro.clone()),
                ("cc_ro", cc_ro.clone()),
            ],
            64,
            16,
        )
    );
    println!(
        "{}",
        plot::line_chart(
            "(b) Speedup of compression cache relative to original system",
            &xs,
            &[("cc_ro", spd_ro.clone()), ("cc_rw", spd_rw.clone())],
            64,
            16,
        )
    );

    // Paper-shape assertions (soft: report, then panic only on gross
    // violations).
    let mem_mb = user_mem as f64 / MB as f64;
    let fits = xs.iter().position(|&x| x <= mem_mb * 0.9).unwrap_or(0);
    let in_cache = xs
        .iter()
        .position(|&x| x > mem_mb * 1.5 && x < mem_mb * 2.6)
        .unwrap_or(xs.len() - 1);
    let beyond = xs.len() - 1;
    println!("Paper-shape checks:");
    println!(
        "  - working set fits ({}MB): std {:.3}ms vs cc {:.3}ms (cache stays out of the way)",
        xs[fits], std_rw[fits], cc_rw[fits]
    );
    println!(
        "  - fits compressed ({}MB): rw speedup {:.1}x, ro speedup {:.1}x (paper: large, up to ~10x)",
        xs[in_cache], spd_rw[in_cache], spd_ro[in_cache]
    );
    println!(
        "  - beyond compressed fit ({}MB): rw speedup {:.1}x, ro speedup {:.1}x (paper: smaller but > 1)",
        xs[beyond], spd_rw[beyond], spd_ro[beyond]
    );
    assert!(
        spd_rw[in_cache] > 3.0,
        "rw speedup in cache regime too small"
    );
    assert!(
        spd_ro[in_cache] > 2.0,
        "ro speedup in cache regime too small"
    );
    assert!(
        spd_rw[beyond] > 1.0,
        "cc must still win beyond the fit point"
    );
    assert!(
        std_rw[beyond] > std_ro[beyond],
        "std_rw must be the slowest configuration"
    );
    println!("  OK.");
}
