//! `storebench` — reproducible multi-threaded throughput benchmark for the
//! sharded `CompressedStore`.
//!
//! Drives `T` worker threads over a zipfian key distribution with a mixed
//! put/get/remove workload (50/40/10) and reports ops/s, p50/p99 per-op
//! latency and the achieved compression ratio for every thread count, for
//! both the lock-striped store and a `shards = 1` baseline (the behaviour
//! of the old single-`Mutex` store). Results land in `BENCH_store.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cc-bench --bin storebench [-- --ops N --out PATH]
//! ```

use cc_core::store::{CompressedStore, StoreConfig};
use cc_util::SplitMix64;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

const PAGE: usize = 4096;
const KEYS: u64 = 4096;
const ZIPF_S: f64 = 0.99;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Budget comfortably above the compressed working set so the benchmark
/// measures the lock/compression hot path, not eviction policy.
const BUDGET: usize = 64 << 20;

/// Zipfian sampler over `0..KEYS`: precomputed CDF + binary search, so a
/// draw is one `SplitMix64` step and a `partition_point`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Page payload for `key`: ~2:1 compressible text-like filler with a
/// sprinkle of noise pages, mirroring the mixed workloads of the paper.
fn page_for(key: u64, buf: &mut [u8]) {
    if key.is_multiple_of(5) {
        let mut rng = SplitMix64::new(key | 1);
        for b in buf.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    } else {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((key as usize + i / 13) % 64) as u8 + b' ';
        }
    }
}

struct Trial {
    threads: usize,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    ratio: f64,
}

fn run_trial(shards: usize, threads: usize, ops_per_thread: u64, zipf: &Arc<Zipf>) -> Trial {
    let store = Arc::new(CompressedStore::new(
        StoreConfig::in_memory(BUDGET).with_shards(shards),
    ));
    // Pre-populate the whole key space so gets mostly hit.
    let mut page = vec![0u8; PAGE];
    for key in 0..KEYS {
        page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let zipf = Arc::clone(zipf);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0xBEEF + t as u64);
            let mut page = vec![0u8; PAGE];
            let mut out = vec![0u8; PAGE];
            let mut lat = Vec::with_capacity(ops_per_thread as usize);
            for _ in 0..ops_per_thread {
                let key = zipf.sample(&mut rng);
                let op = rng.next_u64() % 10;
                let t0 = Instant::now();
                match op {
                    0..=4 => {
                        page_for(key, &mut page);
                        store.put(key, &page).expect("put");
                    }
                    5..=8 => {
                        let _ = store.get(key, &mut out).expect("get");
                    }
                    _ => {
                        store.remove(key);
                    }
                }
                lat.push(t0.elapsed().as_nanos() as u64);
            }
            lat
        }));
    }
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("worker panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];

    let s = store.stats();
    let ratio = if s.memory_bytes > 0 {
        (store.len() as u64 * PAGE as u64) as f64 / s.memory_bytes as f64
    } else {
        1.0
    };
    Trial {
        threads,
        ops_per_sec: lat.len() as f64 / elapsed,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        ratio,
    }
}

fn json_trials(trials: &[Trial]) -> String {
    let rows: Vec<String> = trials
        .iter()
        .map(|t| {
            format!(
                "    {{\"threads\": {}, \"ops_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"compression_ratio\": {:.3}}}",
                t.threads, t.ops_per_sec, t.p50_ns, t.p99_ns, t.ratio
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let mut ops_per_thread: u64 = 200_000;
    let mut out_path = String::from("BENCH_store.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ops" => {
                ops_per_thread = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ops expects a number of operations per thread");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a file path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown arg: {other}\nusage: storebench [--ops N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let zipf = Arc::new(Zipf::new(KEYS, ZIPF_S));
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a small host auto-sharding resolves to few shards; always measure
    // at least 8 so the striped path itself is what's under test.
    let sharded_shards = StoreConfig::in_memory(BUDGET).resolved_shards().max(8);

    eprintln!("storebench: {KEYS} zipfian(s={ZIPF_S}) keys, {ops_per_thread} ops/thread, mixed 50/40/10 put/get/remove, {host_cpus} host cpu(s)");
    let run_set = |label: &str, shards: usize| -> Vec<Trial> {
        let mut trials = Vec::new();
        for &t in &THREAD_COUNTS {
            let trial = run_trial(shards, t, ops_per_thread, &zipf);
            eprintln!(
                "  [{label}] threads={:<2} {:>12.0} ops/s  p50={:>6} ns  p99={:>7} ns  ratio={:.2}",
                trial.threads, trial.ops_per_sec, trial.p50_ns, trial.p99_ns, trial.ratio
            );
            trials.push(trial);
        }
        trials
    };

    let baseline = run_set("shards=1", 1);
    let sharded = run_set(&format!("shards={sharded_shards}"), sharded_shards);

    let scaling = sharded.last().map(|t| t.ops_per_sec).unwrap_or(0.0)
        / sharded
            .first()
            .map(|t| t.ops_per_sec.max(1.0))
            .unwrap_or(1.0);
    eprintln!("  sharded 8-thread / 1-thread scaling: {scaling:.2}x (upper bound: min(8, {host_cpus} host cpus))");

    let json = format!(
        "{{\n  \"benchmark\": \"storebench\",\n  \"host_cpus\": {host_cpus},\n  \"page_size\": {PAGE},\n  \"keys\": {KEYS},\n  \"zipf_s\": {ZIPF_S},\n  \"ops_per_thread\": {ops_per_thread},\n  \"mix\": \"50% put / 40% get / 10% remove\",\n  \"baseline_shards_1\": {},\n  \"sharded\": {{\"shards\": {sharded_shards}, \"trials\": {}}},\n  \"scaling_8t_over_1t\": {scaling:.2},\n  \"note\": \"parallel speedup is bounded by min(threads, host_cpus); on a single-cpu host the expected scaling is ~1.0x and the p99 gap between baseline_shards_1 and sharded is the contention signal\"\n}}\n",
        json_trials(&baseline),
        json_trials(&sharded),
    );
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out_path}");
}
