//! `storebench` — reproducible multi-threaded throughput benchmark for the
//! sharded `CompressedStore`.
//!
//! Three workloads:
//!
//! 1. **In-memory scaling** — `T` worker threads over a zipfian key
//!    distribution with a mixed put/get/remove workload (50/40/10), for
//!    both the lock-striped store and a `shards = 1` baseline (the
//!    behaviour of the old single-`Mutex` store).
//! 2. **Spill pipeline** — the same mix against a budget ~10× smaller
//!    than the working set, so most entries live on the spill file.
//!    Latency percentiles are split by serving tier (memory hit vs disk
//!    hit) via `get_tier`, and the batching factor, GC activity, and
//!    final file size are reported.
//! 3. **Same-filled fast path** — a put-heavy mix where half the pages
//!    are a single repeated word, reporting the elided-put p50 against
//!    the compressed-put p50.
//! 4. **Telemetry** — the spill trial's own `telemetry_snapshot()` is
//!    embedded verbatim (per-tier put/get histograms, spill-writer and
//!    GC event counts from the ring), and an interleaved best-of-3
//!    probe measures the throughput cost of telemetry against a
//!    `with_telemetry(false)` run of the same zipfian mixed trial.
//! 5. **Codec sweep** — a put-heavy mix over pattern-heavy pages (near-
//!    zero, narrow, base+delta, text, noise) for each `CodecPolicy`
//!    (`lzrw1-only` / `adaptive` / `bdi-only`), reporting per-policy
//!    put/get percentiles, per-codec routing counts and achieved
//!    ratios, compress/decompress p50s from the per-codec histograms,
//!    and each policy's compression on the ordinary zipfian mix.
//! 6. **Tier sweep** — the mixed workload under a budget that forces
//!    placement decisions, for each `TierPolicy` (`compress-all` /
//!    `paper-threshold` / `recency`) at two zipf skews, with the
//!    background demoter live. Reports per-arm latency percentiles,
//!    hit counts split hot/warm/cold, promotion/demotion traffic, and
//!    final tier gauges — the "does adaptive placement beat
//!    compress-everything?" experiment.
//!
//! The non-tier trials (1–5) pin the `compress-all` policy so their
//! numbers keep measuring the codec and spill paths, not placement.
//!
//! Results land in `BENCH_store.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cc-bench --bin storebench [-- --ops N --out PATH]
//! cargo run --release -p cc-bench --bin storebench -- --smoke
//! ```
//!
//! `--smoke` runs a reduced-ops spill + same-filled + codec-sweep +
//! tier-sweep pass and exits nonzero if the resident-bytes budget is
//! ever exceeded, the spill pipeline goes unexercised, the latency
//! histograms fail basic sanity (empty, or p50/p99/max out of order),
//! telemetry costs more than 5% of throughput, adaptive codec selection
//! is slower at put p50 than the lzrw1-only baseline on the pattern mix
//! (or loses compression on the zipfian mix), any per-codec histogram
//! goes unexercised, the recency tier policy loses to compress-all at
//! get p50 on the hot-skewed mix, any tier or the demoter goes
//! unexercised in the recency arm, or any tier arm overshoots its
//! budget — CI runs it on every push.
//!
//! `--chaos` (optionally with `--seed N`; `--chaos --smoke` is the
//! reduced CI variant) runs the mixed workload against a seeded
//! fault-injecting spill medium — transient EIO, bit-flip read
//! corruption, torn writes, and a scheduled write outage — and exits
//! nonzero if any get returns wrong bytes, injected corruption goes
//! undetected, the store fails to enter *and* leave degraded mode on
//! schedule, or the memory budget stays violated after settling.

use cc_bench::smoke;
use cc_compress::CodecPolicy;
use cc_core::medium::{CrashSwitch, FaultInjector, FaultPlan, FileMedium, SpillMedium};
use cc_core::store::{CompressedStore, HitTier, StoreConfig};
use cc_core::tier::{CompressAll, PaperThreshold, RecencyCompressibility, TierPolicy};
use cc_telemetry::Snapshot;
use cc_util::SplitMix64;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 4096;
const KEYS: u64 = 4096;
const ZIPF_S: f64 = 0.99;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Budget comfortably above the compressed working set so the in-memory
/// trials measure the lock/compression hot path, not eviction policy.
const BUDGET: usize = 64 << 20;
/// Spill-trial budget: ~10× smaller than the compressed working set, so
/// the disk tier carries most of the key space.
const SPILL_BUDGET: usize = 1 << 20;
const SPILL_THREADS: usize = 4;
/// Tier-sweep key space and budget: ~2048 keys compress to roughly
/// 4 MB, so a 3 MB budget forces real placement decisions — the zipf
/// head can stay resident but the tail cannot.
const TIER_KEYS: u64 = 2048;
const TIER_BUDGET: usize = 3 << 20;
const TIER_THREADS: usize = 4;
/// Skews for the tier sweep: hot-concentrated and flatter-than-hot.
const TIER_SKEWS: [f64; 2] = [0.99, 0.6];

/// The flat-store tier policy pinned by every non-tier trial, so their
/// numbers keep measuring the codec and spill paths, not placement.
fn flat_tiering() -> Arc<dyn TierPolicy> {
    Arc::new(CompressAll)
}

/// Zipfian sampler over `0..KEYS`: precomputed CDF + binary search, so a
/// draw is one `SplitMix64` step and a `partition_point`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Page payload for `key`: ~2:1 compressible text-like filler with a
/// sprinkle of noise pages, mirroring the mixed workloads of the paper.
fn page_for(key: u64, buf: &mut [u8]) {
    if key.is_multiple_of(5) {
        let mut rng = SplitMix64::new(key | 1);
        for b in buf.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    } else {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((key as usize + i / 13) % 64) as u8 + b' ';
        }
    }
}

/// Pattern-heavy page payload for the codec sweep: the word-regular
/// classes the BDI codec targets (near-zero, narrow values, pointer-like
/// base+delta) plus the byte-regular and incompressible classes it must
/// leave to LZRW1 — roughly 15/25/25/20/15 by key.
fn pattern_page_for(key: u64, buf: &mut [u8]) {
    let class = key % 20;
    if class < 3 {
        // Almost-zero pages, with sparse nonzero words so the
        // same-filled elision does not swallow them before any codec.
        buf.fill(0);
        for (i, w) in buf.chunks_exact_mut(8).enumerate() {
            if i % 64 == 0 {
                w.copy_from_slice(&(key + i as u64 + 1).to_le_bytes());
            }
        }
    } else if class < 8 {
        // Narrow values around zero (counters, small ints).
        let mut rng = SplitMix64::new(key | 1);
        for w in buf.chunks_exact_mut(8) {
            w.copy_from_slice(&(rng.next_u64() % 251).to_le_bytes());
        }
    } else if class < 13 {
        // Pointer-like words clustered near one base.
        let base = 0x7F00_0000_0000u64 ^ (key << 21);
        let mut rng = SplitMix64::new(key | 1);
        for w in buf.chunks_exact_mut(8) {
            w.copy_from_slice(&(base + rng.next_u64() % 120).to_le_bytes());
        }
    } else if class < 17 {
        // Text-like filler: byte-regular, word-irregular — LZRW1's class.
        for (i, b) in buf.iter_mut().enumerate() {
            *b = ((key as usize + i / 13) % 64) as u8 + b' ';
        }
    } else {
        // Incompressible noise: the stored-raw class under any policy.
        let mut rng = SplitMix64::new(key | 1);
        for b in buf.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    }
}

/// A same-filled page for `key`: one derived 8-byte word repeated.
fn same_page_for(key: u64, buf: &mut [u8]) {
    let word = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_ne_bytes();
    for (i, b) in buf.iter_mut().enumerate() {
        *b = word[i % 8];
    }
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

struct Trial {
    threads: usize,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    ratio: f64,
}

fn run_trial(
    shards: usize,
    threads: usize,
    ops_per_thread: u64,
    zipf: &Arc<Zipf>,
    telemetry: bool,
    policy: CodecPolicy,
) -> Trial {
    let store = Arc::new(CompressedStore::new(
        StoreConfig::in_memory(BUDGET)
            .with_shards(shards)
            .with_telemetry(telemetry)
            .with_codec_policy(policy)
            .with_tier_policy(flat_tiering()),
    ));
    // Pre-populate the whole key space so gets mostly hit.
    let mut page = vec![0u8; PAGE];
    for key in 0..KEYS {
        page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let zipf = Arc::clone(zipf);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0xBEEF + t as u64);
            let mut page = vec![0u8; PAGE];
            let mut out = vec![0u8; PAGE];
            let mut lat = Vec::with_capacity(ops_per_thread as usize);
            for _ in 0..ops_per_thread {
                let key = zipf.sample(&mut rng);
                let op = rng.next_u64() % 10;
                let t0 = Instant::now();
                match op {
                    0..=4 => {
                        page_for(key, &mut page);
                        store.put(key, &page).expect("put");
                    }
                    5..=8 => {
                        let _ = store.get(key, &mut out).expect("get");
                    }
                    _ => {
                        store.remove(key);
                    }
                }
                lat.push(t0.elapsed().as_nanos() as u64);
            }
            lat
        }));
    }
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("worker panicked"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat.sort_unstable();

    let s = store.stats();
    let ratio = if s.memory_bytes > 0 {
        (store.len() as u64 * PAGE as u64) as f64 / s.memory_bytes as f64
    } else {
        1.0
    };
    Trial {
        threads,
        ops_per_sec: lat.len() as f64 / elapsed,
        p50_ns: pct(&lat, 0.50),
        p99_ns: pct(&lat, 0.99),
        ratio,
    }
}

/// Results of the spill-pipeline trial: tier-split latencies plus the
/// writer's batching/GC counters and the file's final size.
struct SpillTrial {
    threads: usize,
    ops_per_sec: f64,
    put_p50_ns: u64,
    put_p99_ns: u64,
    get_memory_p50_ns: u64,
    get_memory_p99_ns: u64,
    get_spill_p50_ns: u64,
    get_spill_p99_ns: u64,
    spilled: u64,
    spill_batches: u64,
    entries_per_batch: f64,
    gc_runs: u64,
    bytes_on_spill: u64,
    spill_dead_bytes: u64,
    file_bytes_on_disk: u64,
    max_resident_seen: u64,
    /// Full telemetry snapshot taken after the final flush: per-tier
    /// latency histograms plus ring event counts, embedded in the JSON
    /// output and sanity-gated by `--smoke`.
    telemetry: Snapshot,
}

fn run_spill_trial(threads: usize, ops_per_thread: u64, zipf: &Arc<Zipf>) -> SpillTrial {
    let path = std::env::temp_dir().join(format!("storebench-spill-{}.bin", std::process::id()));
    let store = Arc::new(CompressedStore::new(
        StoreConfig::with_spill(SPILL_BUDGET, &path).with_tier_policy(flat_tiering()),
    ));
    let mut page = vec![0u8; PAGE];
    for key in 0..KEYS {
        page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }
    store.flush().expect("flush");

    // Budget watcher: samples the resident gauge as fast as it can while
    // the workers churn; the spill path must never overshoot the budget.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(store.stats().resident_bytes);
            }
            max_seen
        })
    };

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(&store);
        let zipf = Arc::clone(zipf);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0xD15C + t as u64);
            let mut page = vec![0u8; PAGE];
            let mut out = vec![0u8; PAGE];
            let mut put_ns = Vec::new();
            let mut mem_ns = Vec::new();
            let mut disk_ns = Vec::new();
            let mut ops = 0u64;
            for _ in 0..ops_per_thread {
                let key = zipf.sample(&mut rng);
                let op = rng.next_u64() % 10;
                ops += 1;
                match op {
                    0..=4 => {
                        page_for(key, &mut page);
                        let t0 = Instant::now();
                        store.put(key, &page).expect("put");
                        put_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    5..=8 => {
                        let t0 = Instant::now();
                        let tier = store.get_tier(key, &mut out).expect("get");
                        let ns = t0.elapsed().as_nanos() as u64;
                        match tier {
                            Some(HitTier::Spill) => disk_ns.push(ns),
                            Some(_) => mem_ns.push(ns),
                            None => {}
                        }
                    }
                    _ => {
                        store.remove(key);
                    }
                }
            }
            (ops, put_ns, mem_ns, disk_ns)
        }));
    }
    let (mut ops, mut put_ns, mut mem_ns, mut disk_ns) = (0u64, Vec::new(), Vec::new(), Vec::new());
    for h in handles {
        let (o, p, m, d) = h.join().expect("worker panicked");
        ops += o;
        put_ns.extend(p);
        mem_ns.extend(m);
        disk_ns.extend(d);
    }
    let elapsed = start.elapsed().as_secs_f64();
    store.flush().expect("flush");
    stop.store(true, Ordering::Relaxed);
    let max_resident_seen = watcher.join().expect("watcher panicked");
    put_ns.sort_unstable();
    mem_ns.sort_unstable();
    disk_ns.sort_unstable();

    let s = store.stats();
    let telemetry = store.telemetry_snapshot();
    let file_bytes_on_disk = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    drop(store);
    let _ = std::fs::remove_file(&path);
    SpillTrial {
        threads,
        ops_per_sec: ops as f64 / elapsed,
        put_p50_ns: pct(&put_ns, 0.50),
        put_p99_ns: pct(&put_ns, 0.99),
        get_memory_p50_ns: pct(&mem_ns, 0.50),
        get_memory_p99_ns: pct(&mem_ns, 0.99),
        get_spill_p50_ns: pct(&disk_ns, 0.50),
        get_spill_p99_ns: pct(&disk_ns, 0.99),
        spilled: s.spilled,
        spill_batches: s.spill_batches,
        entries_per_batch: s.spilled as f64 / s.spill_batches.max(1) as f64,
        gc_runs: s.gc_runs,
        bytes_on_spill: s.bytes_on_spill,
        spill_dead_bytes: s.spill_dead_bytes,
        file_bytes_on_disk,
        max_resident_seen,
        telemetry,
    }
}

/// Throughput cost of telemetry: the single-thread zipfian mixed trial
/// run with telemetry on vs `with_telemetry(false)`, interleaved
/// best-of-3 so machine noise hits both configurations alike.
struct Overhead {
    ops_per_sec_on: f64,
    ops_per_sec_off: f64,
    /// Throughput lost to telemetry, percent of the telemetry-off rate
    /// (clamped at 0 — on a noisy host "on" can measure faster).
    overhead_pct: f64,
}

fn run_overhead_probe(ops_per_thread: u64, zipf: &Arc<Zipf>) -> Overhead {
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..3 {
        best_off = best_off
            .max(run_trial(1, 1, ops_per_thread, zipf, false, CodecPolicy::Adaptive).ops_per_sec);
        best_on = best_on
            .max(run_trial(1, 1, ops_per_thread, zipf, true, CodecPolicy::Adaptive).ops_per_sec);
    }
    Overhead {
        ops_per_sec_on: best_on,
        ops_per_sec_off: best_off,
        overhead_pct: ((1.0 - best_on / best_off.max(1.0)) * 100.0).max(0.0),
    }
}

/// Results of the same-filled-heavy trial: elided puts vs compressed puts.
struct SameFilledTrial {
    same_filled_puts: u64,
    compressed_puts: u64,
    put_same_filled_p50_ns: u64,
    put_compressed_p50_ns: u64,
    same_filled_counter: u64,
}

fn run_same_filled_trial(ops: u64) -> SameFilledTrial {
    let store =
        CompressedStore::new(StoreConfig::in_memory(BUDGET).with_tier_policy(flat_tiering()));
    let mut rng = SplitMix64::new(0x5A5A);
    let mut page = vec![0u8; PAGE];
    let mut same_ns = Vec::new();
    let mut comp_ns = Vec::new();
    for _ in 0..ops {
        let key = rng.next_u64() % KEYS;
        // Half the key space holds repeated-word pages (zeroed or
        // memset-style), the other half normal compressible content.
        if key.is_multiple_of(2) {
            same_page_for(key, &mut page);
            let t0 = Instant::now();
            store.put(key, &page).expect("put");
            same_ns.push(t0.elapsed().as_nanos() as u64);
        } else {
            page_for(key, &mut page);
            let t0 = Instant::now();
            store.put(key, &page).expect("put");
            comp_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
    same_ns.sort_unstable();
    comp_ns.sort_unstable();
    let s = store.stats();
    SameFilledTrial {
        same_filled_puts: same_ns.len() as u64,
        compressed_puts: comp_ns.len() as u64,
        put_same_filled_p50_ns: pct(&same_ns, 0.50),
        put_compressed_p50_ns: pct(&comp_ns, 0.50),
        same_filled_counter: s.same_filled,
    }
}

/// One arm of the codec sweep: a put/get mix over the pattern-heavy page
/// classes under one [`CodecPolicy`], plus the same policy's zipfian
/// mixed-trial ratio (the "does adapting cost compression on ordinary
/// pages?" control).
struct CodecTrial {
    policy: CodecPolicy,
    ops_per_sec: f64,
    put_p50_ns: u64,
    put_p99_ns: u64,
    get_p50_ns: u64,
    get_p99_ns: u64,
    /// Whole-store compression ratio on the pattern mix (orig/stored).
    ratio: f64,
    /// Compression ratio of the standard zipfian text/noise mixed trial
    /// under this policy.
    zipf_ratio: f64,
    puts_lzrw1: u64,
    puts_bdi: u64,
    codec_fallbacks: u64,
    /// Achieved per-codec ratios over admitted pages (orig/sealed).
    lzrw1_ratio: f64,
    bdi_ratio: f64,
    /// The trial's telemetry snapshot: per-codec compress/decompress
    /// latency histograms live here.
    telemetry: Snapshot,
}

fn run_codec_trial(policy: CodecPolicy, ops: u64, zipf: &Arc<Zipf>, zipf_ops: u64) -> CodecTrial {
    let store = CompressedStore::new(
        StoreConfig::in_memory(BUDGET)
            .with_codec_policy(policy)
            .with_tier_policy(flat_tiering()),
    );
    let mut rng = SplitMix64::new(0xC0DE ^ policy as u64);
    let mut page = vec![0u8; PAGE];
    let mut out = vec![0u8; PAGE];
    // Prefill so gets hit from the first op.
    for key in 0..KEYS {
        pattern_page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }
    let mut put_ns = Vec::new();
    let mut get_ns = Vec::new();
    let start = Instant::now();
    for _ in 0..ops {
        let key = rng.next_u64() % KEYS;
        // 60/40 put/get: the sweep is about the put path, but decompress
        // histograms must be exercised too.
        if rng.next_u64() % 10 < 6 {
            pattern_page_for(key, &mut page);
            let t0 = Instant::now();
            store.put(key, &page).expect("put");
            put_ns.push(t0.elapsed().as_nanos() as u64);
        } else {
            let t0 = Instant::now();
            let _ = store.get(key, &mut out).expect("get");
            get_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    put_ns.sort_unstable();
    get_ns.sort_unstable();
    let s = store.stats();
    let telemetry = store.telemetry_snapshot();
    let ratio = if s.memory_bytes > 0 {
        (store.len() as u64 * PAGE as u64) as f64 / s.memory_bytes as f64
    } else {
        1.0
    };
    let per_codec = |in_bytes: u64, out_bytes: u64| {
        if out_bytes > 0 {
            in_bytes as f64 / out_bytes as f64
        } else {
            0.0
        }
    };
    let zipf_ratio = run_trial(1, 1, zipf_ops, zipf, false, policy).ratio;
    CodecTrial {
        policy,
        ops_per_sec: (put_ns.len() + get_ns.len()) as f64 / elapsed,
        put_p50_ns: pct(&put_ns, 0.50),
        put_p99_ns: pct(&put_ns, 0.99),
        get_p50_ns: pct(&get_ns, 0.50),
        get_p99_ns: pct(&get_ns, 0.99),
        ratio,
        zipf_ratio,
        puts_lzrw1: s.puts_lzrw1,
        puts_bdi: s.puts_bdi,
        codec_fallbacks: s.codec_fallbacks,
        lzrw1_ratio: per_codec(s.lzrw1_in_bytes, s.lzrw1_out_bytes),
        bdi_ratio: per_codec(s.bdi_in_bytes, s.bdi_out_bytes),
        telemetry,
    }
}

fn run_codec_sweep(ops: u64, zipf: &Arc<Zipf>, zipf_ops: u64) -> Vec<CodecTrial> {
    CodecPolicy::all()
        .into_iter()
        .map(|policy| {
            let t = run_codec_trial(policy, ops, zipf, zipf_ops);
            eprintln!(
                "  [codec {:<10}] {:>10.0} ops/s  put p50={:>6} p99={:>7} ns  get p50={:>6} ns  ratio={:.2} (zipf {:.2})  lzrw1/bdi/fallback={}/{}/{}",
                t.policy.name(),
                t.ops_per_sec,
                t.put_p50_ns,
                t.put_p99_ns,
                t.get_p50_ns,
                t.ratio,
                t.zipf_ratio,
                t.puts_lzrw1,
                t.puts_bdi,
                t.codec_fallbacks,
            );
            t
        })
        .collect()
}

/// The tier-sweep policy arms: the flat store, the paper's 4:3
/// admission split, and recency+compressibility tuned for the sweep's
/// op clock (idle windows sized in generation ticks, pressure floors
/// low enough that the demoter keeps headroom for promotions even
/// though the working set pins the budget).
fn tier_policies() -> Vec<(&'static str, Arc<dyn TierPolicy>)> {
    vec![
        ("compress-all", Arc::new(CompressAll)),
        ("paper-threshold", Arc::new(PaperThreshold)),
        (
            "recency",
            Arc::new(RecencyCompressibility {
                hot_idle: 2048,
                warm_idle: 4096,
                promote_window: 1024,
                max_promote_pressure_pct: 100,
                hot_demote_pressure_pct: 40,
                warm_demote_pressure_pct: 60,
            }),
        ),
    ]
}

/// One arm of the tier sweep: the mixed workload under one
/// [`TierPolicy`] at one zipf skew, with the background demoter live.
struct TierArm {
    policy: &'static str,
    zipf_s: f64,
    ops_per_sec: f64,
    put_p50_ns: u64,
    put_p99_ns: u64,
    get_p50_ns: u64,
    get_p99_ns: u64,
    puts_hot: u64,
    hits_hot: u64,
    hits_memory: u64,
    hits_spill: u64,
    misses: u64,
    promotions: u64,
    promotions_rejected: u64,
    demoted_hot: u64,
    demoted_warm: u64,
    demoter_passes: u64,
    hot_bytes: u64,
    warm_bytes: u64,
    max_resident_seen: u64,
}

fn run_tier_trial(
    name: &'static str,
    policy: Arc<dyn TierPolicy>,
    zipf_s: f64,
    ops_per_thread: u64,
) -> TierArm {
    let path = std::env::temp_dir().join(format!(
        "storebench-tier-{name}-{}-{}.bin",
        (zipf_s * 100.0) as u32,
        std::process::id()
    ));
    let store = Arc::new(CompressedStore::new(
        StoreConfig::with_spill(TIER_BUDGET, &path).with_tier_policy(policy),
    ));
    let zipf = Arc::new(Zipf::new(TIER_KEYS, zipf_s));
    // Prefill hottest-last so the zipf head starts memory-resident and
    // the tail is what eviction pushes to disk.
    let mut page = vec![0u8; PAGE];
    for key in (0..TIER_KEYS).rev() {
        page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }
    store.flush().expect("flush");

    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(store.stats().resident_bytes);
            }
            max_seen
        })
    };

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..TIER_THREADS {
        let store = Arc::clone(&store);
        let zipf = Arc::clone(&zipf);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0x71E2 + t as u64);
            let mut page = vec![0u8; PAGE];
            let mut out = vec![0u8; PAGE];
            let mut put_ns = Vec::new();
            let mut get_ns = Vec::new();
            for _ in 0..ops_per_thread {
                let key = zipf.sample(&mut rng);
                // 30/70 put/get: read-mostly, the regime where hot
                // placement pays (gets dodge the decompress).
                if rng.next_u64() % 10 < 3 {
                    page_for(key, &mut page);
                    let t0 = Instant::now();
                    store.put(key, &page).expect("put");
                    put_ns.push(t0.elapsed().as_nanos() as u64);
                } else {
                    let t0 = Instant::now();
                    let _ = store.get(key, &mut out).expect("get");
                    get_ns.push(t0.elapsed().as_nanos() as u64);
                }
            }
            (put_ns, get_ns)
        }));
    }
    let (mut put_ns, mut get_ns) = (Vec::new(), Vec::new());
    for h in handles {
        let (p, g) = h.join().expect("worker panicked");
        put_ns.extend(p);
        get_ns.extend(g);
    }
    let elapsed = start.elapsed().as_secs_f64();
    store.flush().expect("flush");
    stop.store(true, Ordering::Relaxed);
    let max_resident_seen = watcher.join().expect("watcher panicked");
    put_ns.sort_unstable();
    get_ns.sort_unstable();

    let s = store.stats();
    drop(store);
    let _ = std::fs::remove_file(&path);
    TierArm {
        policy: name,
        zipf_s,
        ops_per_sec: (put_ns.len() + get_ns.len()) as f64 / elapsed,
        put_p50_ns: pct(&put_ns, 0.50),
        put_p99_ns: pct(&put_ns, 0.99),
        get_p50_ns: pct(&get_ns, 0.50),
        get_p99_ns: pct(&get_ns, 0.99),
        puts_hot: s.puts_hot,
        hits_hot: s.hits_hot,
        hits_memory: s.hits_memory,
        hits_spill: s.hits_spill,
        misses: s.misses,
        promotions: s.promotions,
        promotions_rejected: s.promotions_rejected,
        demoted_hot: s.demoted_hot,
        demoted_warm: s.demoted_warm,
        demoter_passes: s.demoter_passes,
        hot_bytes: s.hot_bytes,
        warm_bytes: s.warm_bytes,
        max_resident_seen,
    }
}

fn run_tier_sweep(ops_per_thread: u64) -> Vec<TierArm> {
    let mut arms = Vec::new();
    for &zipf_s in &TIER_SKEWS {
        for (name, policy) in tier_policies() {
            let a = run_tier_trial(name, policy, zipf_s, ops_per_thread);
            eprintln!(
                "  [tier {:<15}] s={:<4} {:>9.0} ops/s  get p50={:>6} p99={:>7} ns  hot/warm/cold hits={}/{}/{}  promo={} (rej {})  demo hot/warm={}/{}  passes={}",
                a.policy,
                a.zipf_s,
                a.ops_per_sec,
                a.get_p50_ns,
                a.get_p99_ns,
                a.hits_hot,
                a.hits_memory,
                a.hits_spill,
                a.promotions,
                a.promotions_rejected,
                a.demoted_hot,
                a.demoted_warm,
                a.demoter_passes,
            );
            arms.push(a);
        }
    }
    arms
}

fn tier_arm<'a>(arms: &'a [TierArm], policy: &str, zipf_s: f64) -> &'a TierArm {
    arms.iter()
        .find(|a| a.policy == policy && a.zipf_s == zipf_s)
        .expect("tier sweep ran this arm")
}

fn json_tier_sweep(arms: &[TierArm]) -> String {
    let rows: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                "      {{\"policy\": \"{}\", \"zipf_s\": {}, \"ops_per_sec\": {:.0}, \"put_p50_ns\": {}, \"put_p99_ns\": {}, \"get_p50_ns\": {}, \"get_p99_ns\": {}, \"puts_hot\": {}, \"hits_hot\": {}, \"hits_memory\": {}, \"hits_spill\": {}, \"misses\": {}, \"promotions\": {}, \"promotions_rejected\": {}, \"demoted_hot\": {}, \"demoted_warm\": {}, \"demoter_passes\": {}, \"hot_bytes\": {}, \"warm_bytes\": {}, \"max_resident_seen\": {}}}",
                a.policy,
                a.zipf_s,
                a.ops_per_sec,
                a.put_p50_ns,
                a.put_p99_ns,
                a.get_p50_ns,
                a.get_p99_ns,
                a.puts_hot,
                a.hits_hot,
                a.hits_memory,
                a.hits_spill,
                a.misses,
                a.promotions,
                a.promotions_rejected,
                a.demoted_hot,
                a.demoted_warm,
                a.demoter_passes,
                a.hot_bytes,
                a.warm_bytes,
                a.max_resident_seen,
            )
        })
        .collect();
    let flat = tier_arm(arms, "compress-all", 0.99);
    let rec = tier_arm(arms, "recency", 0.99);
    let win_pct = if flat.get_p50_ns > 0 {
        (1.0 - rec.get_p50_ns as f64 / flat.get_p50_ns as f64) * 100.0
    } else {
        0.0
    };
    format!(
        "{{\n    \"keys\": {TIER_KEYS},\n    \"budget_bytes\": {TIER_BUDGET},\n    \"threads\": {TIER_THREADS},\n    \"mix\": \"30/70 put/get, prefilled hottest-last\",\n    \"recency_get_p50_win_pct\": {win_pct:.1},\n    \"arms\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn op_p50(snap: &Snapshot, op: &str) -> u64 {
    snap.op(op).map(|s| s.p50).unwrap_or(0)
}

fn json_codec_sweep(sweep: &[CodecTrial]) -> String {
    let rows: Vec<String> = sweep
        .iter()
        .map(|t| {
            format!(
                "      {{\"policy\": \"{}\", \"ops_per_sec\": {:.0}, \"put_p50_ns\": {}, \"put_p99_ns\": {}, \"get_p50_ns\": {}, \"get_p99_ns\": {}, \"ratio\": {:.3}, \"zipf_ratio\": {:.3}, \"puts_lzrw1\": {}, \"puts_bdi\": {}, \"codec_fallbacks\": {}, \"lzrw1_ratio\": {:.3}, \"bdi_ratio\": {:.3}, \"compress_lzrw1_p50_ns\": {}, \"compress_bdi_p50_ns\": {}, \"decompress_lzrw1_p50_ns\": {}, \"decompress_bdi_p50_ns\": {}}}",
                t.policy.name(),
                t.ops_per_sec,
                t.put_p50_ns,
                t.put_p99_ns,
                t.get_p50_ns,
                t.get_p99_ns,
                t.ratio,
                t.zipf_ratio,
                t.puts_lzrw1,
                t.puts_bdi,
                t.codec_fallbacks,
                t.lzrw1_ratio,
                t.bdi_ratio,
                op_p50(&t.telemetry, "compress_lzrw1"),
                op_p50(&t.telemetry, "compress_bdi"),
                op_p50(&t.telemetry, "decompress_lzrw1"),
                op_p50(&t.telemetry, "decompress_bdi"),
            )
        })
        .collect();
    let lz = sweep.iter().find(|t| t.policy == CodecPolicy::Lzrw1Only);
    let ad = sweep.iter().find(|t| t.policy == CodecPolicy::Adaptive);
    let win_pct = match (lz, ad) {
        (Some(lz), Some(ad)) if lz.put_p50_ns > 0 => {
            (1.0 - ad.put_p50_ns as f64 / lz.put_p50_ns as f64) * 100.0
        }
        _ => 0.0,
    };
    format!(
        "{{\n    \"mix\": \"~15% near-zero / 25% narrow / 25% base+delta / 20% text / 15% noise, 60/40 put/get\",\n    \"adaptive_put_p50_win_pct\": {win_pct:.1},\n    \"policies\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn json_trials(trials: &[Trial]) -> String {
    let rows: Vec<String> = trials
        .iter()
        .map(|t| {
            format!(
                "    {{\"threads\": {}, \"ops_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"compression_ratio\": {:.3}}}",
                t.threads, t.ops_per_sec, t.p50_ns, t.p99_ns, t.ratio
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn json_spill(t: &SpillTrial) -> String {
    format!(
        "{{\n    \"budget_bytes\": {SPILL_BUDGET},\n    \"threads\": {},\n    \"ops_per_sec\": {:.0},\n    \"put_p50_ns\": {},\n    \"put_p99_ns\": {},\n    \"get_memory_p50_ns\": {},\n    \"get_memory_p99_ns\": {},\n    \"get_spill_p50_ns\": {},\n    \"get_spill_p99_ns\": {},\n    \"spilled\": {},\n    \"spill_batches\": {},\n    \"entries_per_batch\": {:.2},\n    \"gc_runs\": {},\n    \"bytes_on_spill\": {},\n    \"spill_dead_bytes\": {},\n    \"file_bytes_on_disk\": {},\n    \"max_resident_seen\": {}\n  }}",
        t.threads,
        t.ops_per_sec,
        t.put_p50_ns,
        t.put_p99_ns,
        t.get_memory_p50_ns,
        t.get_memory_p99_ns,
        t.get_spill_p50_ns,
        t.get_spill_p99_ns,
        t.spilled,
        t.spill_batches,
        t.entries_per_batch,
        t.gc_runs,
        t.bytes_on_spill,
        t.spill_dead_bytes,
        t.file_bytes_on_disk,
        t.max_resident_seen,
    )
}

fn json_telemetry(snap: &Snapshot, ovh: &Overhead) -> String {
    format!(
        "{{\n    \"spill_trial\": {},\n    \"overhead\": {{\"ops_per_sec_on\": {:.0}, \"ops_per_sec_off\": {:.0}, \"overhead_pct\": {:.2}}}\n  }}",
        snap.to_json(4),
        ovh.ops_per_sec_on,
        ovh.ops_per_sec_off,
        ovh.overhead_pct,
    )
}

fn json_same_filled(t: &SameFilledTrial) -> String {
    format!(
        "{{\n    \"same_filled_puts\": {},\n    \"compressed_puts\": {},\n    \"put_same_filled_p50_ns\": {},\n    \"put_compressed_p50_ns\": {},\n    \"same_filled_counter\": {}\n  }}",
        t.same_filled_puts,
        t.compressed_puts,
        t.put_same_filled_p50_ns,
        t.put_compressed_p50_ns,
        t.same_filled_counter,
    )
}

/// Deterministic chaos gate: the spill workload against a seeded
/// [`FaultInjector`] (EIO reads, bit-flip reads, EIO/torn writes) with a
/// scheduled write outage that forces the degraded-mode transition
/// mid-run. Exits nonzero if any get returns wrong bytes, corruption
/// goes undetected, the store fails to degrade and recover on schedule,
/// or the budget is still violated once the dust settles.
fn run_chaos(threads: usize, ops_per_thread: u64, seed: u64) -> i32 {
    const CHAOS_KEYS: u64 = 1024;
    let path = std::env::temp_dir().join(format!("storebench-chaos-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let injector = Arc::new(FaultInjector::new(
        FileMedium::create(&path).expect("create chaos spill file"),
        FaultPlan {
            seed,
            read_error_1_in: 61,
            read_corrupt_1_in: 43,
            write_error_1_in: 257,
            short_write_1_in: 509,
            // Writes 60..100 hard-fail: consecutive batch failures cross
            // `degrade_after` on schedule, and the probation probes burn
            // the rest of the window before one lands and recovers.
            write_outage: Some(60..100),
            ..FaultPlan::default()
        },
    ));
    let store = Arc::new(CompressedStore::with_medium(
        StoreConfig::in_memory(SPILL_BUDGET)
            .with_gc_dead_ratio(0.2)
            .with_spill_retry(2, Duration::from_micros(200))
            .with_degrade_after(2)
            .with_probe_interval(Duration::from_millis(2)),
        Arc::clone(&injector) as Arc<dyn SpillMedium>,
    ));
    eprintln!(
        "storebench --chaos: seed {seed:#x}, {threads} threads x {ops_per_thread} ops, mixed 50/30/20 put/get/remove over {CHAOS_KEYS} keys, budget {SPILL_BUDGET} B"
    );

    let violations = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let store = Arc::clone(&store);
            let violations = Arc::clone(&violations);
            let keys_per_thread = (CHAOS_KEYS / threads as u64).max(1);
            std::thread::spawn(move || {
                let base = t * keys_per_thread;
                // version[k] = last acknowledged put; 0 = unknown.
                let mut version = vec![0u64; keys_per_thread as usize];
                let mut vnext = 0u64;
                let mut rng = SplitMix64::new(seed ^ (t + 1));
                let mut page = vec![0u8; PAGE];
                let mut out = vec![0u8; PAGE];
                for _ in 0..ops_per_thread {
                    let k = (rng.next_u64() % keys_per_thread) as usize;
                    let key = base + k as u64;
                    match rng.next_u64() % 10 {
                        0..=4 => {
                            vnext += 1;
                            chaos_page(key, vnext, &mut page);
                            match store.put(key, &page) {
                                Ok(()) => version[k] = vnext,
                                Err(_) => version[k] = 0, // degraded: unknown
                            }
                        }
                        5..=7 => match store.get(key, &mut out) {
                            Ok(true) => {
                                // THE invariant: returned bytes are some
                                // exact put, never garbage.
                                if version[k] != 0 {
                                    chaos_page(key, version[k], &mut page);
                                    if out != page {
                                        violations.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            // A miss (shed / corrupt-dropped) and an
                            // honest error are both legal outcomes.
                            Ok(false) | Err(_) => version[k] = 0,
                        },
                        _ => {
                            store.remove(key);
                            version[k] = 0;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("chaos worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();

    // The outage window is finite: wait out probation, then settle.
    let deadline = Instant::now() + Duration::from_secs(30);
    while store.is_degraded() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let flush_ok = store.flush().is_ok();
    let s = store.stats();
    let inj = injector.injected();
    eprintln!(
        "  {:.0} ops/s; injected: {} read EIO, {} bit flips, {} write EIO, {} torn writes over {} medium ops",
        (threads as u64 * ops_per_thread) as f64 / elapsed,
        inj.read_errors,
        inj.read_corruptions,
        inj.write_errors,
        inj.short_writes,
        injector.operations(),
    );
    eprintln!(
        "  detected: {} corrupt extents, {} io retries; degraded {}x, recovered {}x after {} probes; {} fallback-resident, {} shed",
        s.corrupt_detected,
        s.io_retries,
        s.degraded_entered,
        s.degraded_recovered,
        s.medium_probes,
        s.spill_fallback_resident,
        s.shed_pages,
    );
    eprintln!(
        "  settled: resident {} B / budget {SPILL_BUDGET} B, {} spilled in {} batches, {} GC runs, flush_ok={flush_ok}",
        s.resident_bytes, s.spilled, s.spill_batches, s.gc_runs,
    );

    let mut failures = Vec::new();
    if violations.load(Ordering::Relaxed) > 0 {
        failures.push(format!(
            "{} gets returned wrong bytes under fault injection",
            violations.load(Ordering::Relaxed)
        ));
    }
    if inj.total() == 0 {
        failures.push("fault injector idle: the chaos run exercised nothing".into());
    }
    if inj.read_corruptions > 0 && s.corrupt_detected == 0 {
        failures.push(format!(
            "{} bit flips injected but none detected",
            inj.read_corruptions
        ));
    }
    if s.io_retries == 0 {
        failures.push("injected transient EIO never retried".into());
    }
    if s.degraded_entered == 0 {
        failures.push("write outage did not trigger degraded mode".into());
    }
    if s.degraded_recovered == 0 || s.degraded {
        failures.push(format!(
            "store never recovered from the outage (entered {}x, recovered {}x, degraded={})",
            s.degraded_entered, s.degraded_recovered, s.degraded
        ));
    }
    if s.resident_bytes > SPILL_BUDGET as u64 {
        failures.push(format!(
            "budget violated after settling: {} > {SPILL_BUDGET}",
            s.resident_bytes
        ));
    }
    if s.spill_batches == 0 {
        failures.push("nothing ever spilled: the chaos ran against an idle medium".into());
    }
    store.shutdown();
    let _ = std::fs::remove_file(&path);
    failures.extend(run_chaos_recovery(seed));
    smoke::report("storebench --chaos", &failures)
}

/// Crash-recovery trial: spill a known working set through a persistent
/// store, kill the power mid-stream with a [`CrashSwitch`] write cut,
/// reopen the real files, and verify the recovery contract — every
/// durably-committed entry served byte-for-byte from the spill tier
/// (no re-PUT), never a wrong byte. A second, cleanly shut down round
/// must warm-start on the fast path (no extent re-scan).
fn run_chaos_recovery(seed: u64) -> Vec<String> {
    const RECOVERY_KEYS: u64 = 256;
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("storebench-recovery-{}.bin", std::process::id()));
    let map_path = dir.join(format!(
        "storebench-recovery-{}.bin.map",
        std::process::id()
    ));
    let mut failures = Vec::new();

    // One round per shutdown style: a hard cut after the barrier, then
    // an orderly seal. `clean` selects the expectations.
    for clean in [false, true] {
        let _ = std::fs::remove_file(&data_path);
        let _ = std::fs::remove_file(&map_path);
        let switch = CrashSwitch::new();
        let data = Arc::new(FaultInjector::with_switch(
            FileMedium::create(&data_path).expect("create recovery data file"),
            FaultPlan::quiet(),
            Arc::clone(&switch),
        )) as Arc<dyn SpillMedium>;
        let journal = Arc::new(FaultInjector::with_switch(
            FileMedium::create(&map_path).expect("create recovery journal file"),
            FaultPlan::quiet(),
            Arc::clone(&switch),
        )) as Arc<dyn SpillMedium>;
        let cfg =
            StoreConfig::with_spill(SPILL_BUDGET / 8, &data_path).with_tier_policy(flat_tiering());
        let store = CompressedStore::with_persistent_media(cfg.clone(), data, journal)
            .expect("open persistent store");
        let mut page = vec![0u8; PAGE];
        for key in 0..RECOVERY_KEYS {
            chaos_page(key, 1, &mut page);
            store.put(key, &page).expect("recovery put");
        }
        store.flush().expect("recovery flush");
        // The durable set: everything the barrier left in the spill tier.
        let durable: Vec<u64> = (0..RECOVERY_KEYS)
            .filter(|&k| store.peek_tier(k) == Some(HitTier::Spill))
            .collect();
        if clean {
            store.shutdown();
        } else {
            switch.cut_now();
            // Post-crash writes must vanish, not resurface on reopen.
            for key in 0..8 {
                chaos_page(key, 2, &mut page);
                let _ = store.put(key, &page);
            }
            let _ = store.flush();
        }
        let kind = if clean { "clean" } else { "crashed" };
        drop(store);

        let reopened = match CompressedStore::open_existing_with_media(
            cfg,
            Arc::new(FileMedium::open(&data_path).expect("reopen data")) as Arc<dyn SpillMedium>,
            Arc::new(FileMedium::open(&map_path).expect("reopen journal")) as Arc<dyn SpillMedium>,
        ) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("recovery ({kind}): reopen failed: {e}"));
                continue;
            }
        };
        let s = reopened.stats();
        eprintln!(
            "  recovery ({kind}): {} extents recovered, {} records replayed, {} verified, {} torn discarded, {} stale dropped, clean={}",
            s.extents_recovered,
            s.journal_records_replayed,
            s.recovery_extents_verified,
            s.torn_tail_discarded,
            s.stale_generation_dropped,
            s.clean_recoveries,
        );
        let mut out = vec![0u8; PAGE];
        let mut wrong = 0u64;
        let mut lost = 0u64;
        for &key in &durable {
            if reopened.peek_tier(key) != Some(HitTier::Spill) {
                lost += 1;
                continue;
            }
            chaos_page(key, 1, &mut page);
            match reopened.get(key, &mut out) {
                Ok(true) if out == page => {}
                Ok(true) => wrong += 1,
                _ => lost += 1,
            }
        }
        if wrong > 0 {
            failures.push(format!(
                "recovery ({kind}): {wrong} keys served wrong bytes"
            ));
        }
        if lost > 0 {
            failures.push(format!(
                "recovery ({kind}): {lost} of {} durable entries unrecovered",
                durable.len()
            ));
        }
        if durable.is_empty() {
            failures.push(format!(
                "recovery ({kind}): nothing spilled — the trial exercised nothing"
            ));
        }
        if clean {
            if s.clean_recoveries != 1 {
                failures.push("recovery (clean): seal not honoured on reopen".into());
            }
            if s.recovery_extents_verified != 0 {
                failures.push(format!(
                    "recovery (clean): clean start took the slow scan ({} extents re-verified)",
                    s.recovery_extents_verified
                ));
            }
        } else {
            if s.clean_recoveries != 0 {
                failures.push("recovery (crashed): cut run recovered as clean".into());
            }
            // The post-cut overwrites (version 2) must not have survived.
            for key in 0..8u64 {
                chaos_page(key, 2, &mut page);
                if reopened.get(key, &mut out).ok() == Some(true) && out == page {
                    failures.push(format!(
                        "recovery (crashed): post-crash write of key {key} resurfaced"
                    ));
                }
            }
        }
        reopened.shutdown();
        let _ = seed; // geometry is content-driven; the seed stays for symmetry
    }
    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&map_path);
    failures
}

/// Page payload for the chaos trial: versioned incompressible noise, so
/// every page takes the spill machinery (never the same-filled elision)
/// and any single flipped bit is visible.
fn chaos_page(key: u64, version: u64, buf: &mut [u8]) {
    let mut rng = SplitMix64::new(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version);
    for b in buf.iter_mut() {
        *b = rng.next_u64() as u8;
    }
}

/// Reduced-ops CI gate: exercise the spill pipeline, same-filled path,
/// and telemetry plane for real, and fail loudly if an invariant breaks.
fn run_smoke() -> i32 {
    let zipf = Arc::new(Zipf::new(KEYS, ZIPF_S));
    eprintln!(
        "storebench --smoke: spill pipeline + same-filled + telemetry + codec-sweep + tier-sweep gate"
    );
    let spill = run_spill_trial(SPILL_THREADS, 10_000, &zipf);
    let same = run_same_filled_trial(20_000);
    let ovh = run_overhead_probe(20_000, &zipf);
    let sweep = run_codec_sweep(20_000, &zipf, 10_000);
    let tiers = run_tier_sweep(8_000);
    eprintln!(
        "  spill: {:.0} ops/s, {} spilled in {} batches ({:.1}/batch), gc_runs={}, file={} B, max_resident={} B (budget {SPILL_BUDGET})",
        spill.ops_per_sec,
        spill.spilled,
        spill.spill_batches,
        spill.entries_per_batch,
        spill.gc_runs,
        spill.file_bytes_on_disk,
        spill.max_resident_seen,
    );
    eprintln!(
        "  same-filled: {} elided puts, p50 {} ns vs compressed p50 {} ns",
        same.same_filled_counter, same.put_same_filled_p50_ns, same.put_compressed_p50_ns,
    );
    eprintln!(
        "  telemetry: overhead {:.2}% ({:.0} ops/s on vs {:.0} ops/s off), {} events recorded ({} dropped)",
        ovh.overhead_pct,
        ovh.ops_per_sec_on,
        ovh.ops_per_sec_off,
        spill.telemetry.events_recorded,
        spill.telemetry.events_dropped,
    );
    let mut failures = Vec::new();
    if spill.max_resident_seen > SPILL_BUDGET as u64 {
        failures.push(format!(
            "budget exceeded: saw {} resident bytes with budget {SPILL_BUDGET}",
            spill.max_resident_seen
        ));
    }
    if spill.spilled == 0 {
        failures.push("spill pipeline unexercised: nothing spilled".into());
    }
    if spill.spill_batches == 0 {
        failures.push("spill writer committed no batches".into());
    }
    if same.same_filled_counter == 0 {
        failures.push("same-filled fast path unexercised".into());
    }
    // Telemetry gates: every tier the spill trial exercises must have a
    // sane histogram, ring event counts must agree with the counters
    // they shadow, and the measured overhead must stay within budget.
    for op in [
        "put",
        "get_memory",
        "get_spill",
        "spill_write",
        "spill_read",
    ] {
        if let Some(f) = smoke::check_hist(&spill.telemetry, op) {
            failures.push(f);
        }
    }
    if let Some(f) = smoke::check_event_agrees(
        &spill.telemetry,
        "batch_commit",
        "spill_batches",
        spill.spill_batches,
    ) {
        failures.push(f);
    }
    if spill.telemetry.events_recorded == 0 {
        failures.push("event ring recorded nothing".into());
    }
    if ovh.overhead_pct > 5.0 {
        failures.push(format!(
            "telemetry overhead {:.2}% exceeds the 5% budget ({:.0} ops/s on vs {:.0} ops/s off)",
            ovh.overhead_pct, ovh.ops_per_sec_on, ovh.ops_per_sec_off
        ));
    }
    // Codec-sweep gates: on the pattern-heavy mix, adaptive selection
    // must not lose to the LZRW1-only baseline at put p50, must route
    // pages to both codecs, must exercise all four per-codec latency
    // histograms, and must not pay for the put win with compression on
    // the ordinary zipfian text/noise mix.
    let lz = sweep
        .iter()
        .find(|t| t.policy == CodecPolicy::Lzrw1Only)
        .expect("sweep ran lzrw1-only");
    let ad = sweep
        .iter()
        .find(|t| t.policy == CodecPolicy::Adaptive)
        .expect("sweep ran adaptive");
    if ad.put_p50_ns > lz.put_p50_ns {
        failures.push(format!(
            "adaptive put p50 ({} ns) slower than lzrw1-only ({} ns) on the pattern mix",
            ad.put_p50_ns, lz.put_p50_ns
        ));
    }
    if ad.puts_bdi == 0 || ad.puts_lzrw1 == 0 {
        failures.push(format!(
            "adaptive routed nothing to some codec: {} lzrw1, {} bdi puts",
            ad.puts_lzrw1, ad.puts_bdi
        ));
    }
    for op in [
        "compress_lzrw1",
        "compress_bdi",
        "decompress_lzrw1",
        "decompress_bdi",
    ] {
        if let Some(f) = smoke::check_hist(&ad.telemetry, op) {
            failures.push(f);
        }
    }
    if ad.ratio < lz.ratio * 0.99 {
        failures.push(format!(
            "adaptive pattern-mix ratio {:.3} worse than lzrw1-only {:.3}",
            ad.ratio, lz.ratio
        ));
    }
    if ad.zipf_ratio < lz.zipf_ratio * 0.99 {
        failures.push(format!(
            "adaptive zipfian ratio {:.3} worse than lzrw1-only {:.3}",
            ad.zipf_ratio, lz.zipf_ratio
        ));
    }
    // Tier-sweep gates: at equal budget on the hot-skewed mix, adaptive
    // placement must beat compress-everything at get p50 (hot hits are
    // memcpys, not decompresses), the recency arm must exercise all
    // three tiers plus both demotion directions and the background
    // demoter, and no arm may ever overshoot its budget.
    let flat_hot = tier_arm(&tiers, "compress-all", 0.99);
    let rec_hot = tier_arm(&tiers, "recency", 0.99);
    if rec_hot.get_p50_ns >= flat_hot.get_p50_ns {
        failures.push(format!(
            "recency get p50 ({} ns) not better than compress-all ({} ns) on the s=0.99 mix",
            rec_hot.get_p50_ns, flat_hot.get_p50_ns
        ));
    }
    if rec_hot.hits_hot == 0 || rec_hot.hits_memory == 0 || rec_hot.hits_spill == 0 {
        failures.push(format!(
            "recency arm left a tier unexercised: {} hot, {} warm, {} cold hits",
            rec_hot.hits_hot, rec_hot.hits_memory, rec_hot.hits_spill
        ));
    }
    if rec_hot.promotions == 0 {
        failures.push("recency arm promoted nothing back to hot".into());
    }
    if rec_hot.demoted_hot == 0 || rec_hot.demoted_warm == 0 {
        failures.push(format!(
            "demotion unexercised in the recency arm: {} hot->warm/cold, {} warm->cold",
            rec_hot.demoted_hot, rec_hot.demoted_warm
        ));
    }
    if rec_hot.demoter_passes == 0 {
        failures.push("background demoter never completed a pass".into());
    }
    for a in &tiers {
        if a.max_resident_seen > TIER_BUDGET as u64 {
            failures.push(format!(
                "tier arm {} s={} exceeded budget: saw {} resident bytes with budget {TIER_BUDGET}",
                a.policy, a.zipf_s, a.max_resident_seen
            ));
        }
    }
    smoke::report("storebench", &failures)
}

fn main() {
    let mut ops_per_thread: u64 = 200_000;
    let mut out_path = String::from("BENCH_store.json");
    let mut smoke = false;
    let mut chaos = false;
    let mut seed: u64 = 0xC4A0_5CA0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ops" => {
                ops_per_thread = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--ops expects a number of operations per thread");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out expects a file path");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects a number (the fault-injection seed)");
                    std::process::exit(2);
                })
            }
            "--smoke" => smoke = true,
            "--chaos" => chaos = true,
            other => {
                eprintln!(
                    "unknown arg: {other}\nusage: storebench [--ops N] [--out PATH] [--smoke] [--chaos [--seed N]]"
                );
                std::process::exit(2);
            }
        }
    }
    if chaos {
        // `--chaos --smoke` is the reduced-ops CI gate; bare `--chaos`
        // runs the full schedule at the configured op count.
        let ops = if smoke { 6_000 } else { ops_per_thread / 4 };
        std::process::exit(run_chaos(8, ops.max(1), seed));
    }
    if smoke {
        std::process::exit(run_smoke());
    }

    let zipf = Arc::new(Zipf::new(KEYS, ZIPF_S));
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a small host auto-sharding resolves to few shards; always measure
    // at least 8 so the striped path itself is what's under test.
    let sharded_shards = StoreConfig::in_memory(BUDGET).resolved_shards().max(8);

    eprintln!("storebench: {KEYS} zipfian(s={ZIPF_S}) keys, {ops_per_thread} ops/thread, mixed 50/40/10 put/get/remove, {host_cpus} host cpu(s)");
    let run_set = |label: &str, shards: usize| -> Vec<Trial> {
        let mut trials = Vec::new();
        for &t in &THREAD_COUNTS {
            let trial = run_trial(
                shards,
                t,
                ops_per_thread,
                &zipf,
                true,
                CodecPolicy::Adaptive,
            );
            eprintln!(
                "  [{label}] threads={:<2} {:>12.0} ops/s  p50={:>6} ns  p99={:>7} ns  ratio={:.2}",
                trial.threads, trial.ops_per_sec, trial.p50_ns, trial.p99_ns, trial.ratio
            );
            trials.push(trial);
        }
        trials
    };

    let baseline = run_set("shards=1", 1);
    let sharded = run_set(&format!("shards={sharded_shards}"), sharded_shards);

    let scaling = sharded.last().map(|t| t.ops_per_sec).unwrap_or(0.0)
        / sharded
            .first()
            .map(|t| t.ops_per_sec.max(1.0))
            .unwrap_or(1.0);
    eprintln!("  sharded 8-thread / 1-thread scaling: {scaling:.2}x (upper bound: min(8, {host_cpus} host cpus))");

    let spill = run_spill_trial(SPILL_THREADS, ops_per_thread / 4, &zipf);
    eprintln!(
        "  [spill]    threads={:<2} {:>12.0} ops/s  put p50={} ns  get(mem) p50={} ns  get(disk) p50={} ns",
        spill.threads,
        spill.ops_per_sec,
        spill.put_p50_ns,
        spill.get_memory_p50_ns,
        spill.get_spill_p50_ns,
    );
    eprintln!(
        "  [spill]    {} spilled in {} batches = {:.1} entries/batch, {} GC runs, file {} B ({} dead), max resident {} B / budget {SPILL_BUDGET}",
        spill.spilled,
        spill.spill_batches,
        spill.entries_per_batch,
        spill.gc_runs,
        spill.file_bytes_on_disk,
        spill.spill_dead_bytes,
        spill.max_resident_seen,
    );

    let same = run_same_filled_trial(ops_per_thread);
    eprintln!(
        "  [same-fill] {} elided puts p50={} ns vs {} compressed puts p50={} ns",
        same.same_filled_puts,
        same.put_same_filled_p50_ns,
        same.compressed_puts,
        same.put_compressed_p50_ns,
    );

    let ovh = run_overhead_probe(ops_per_thread / 2, &zipf);
    eprintln!(
        "  [telemetry] overhead {:.2}% ({:.0} ops/s on vs {:.0} ops/s off, interleaved best-of-3)",
        ovh.overhead_pct, ovh.ops_per_sec_on, ovh.ops_per_sec_off,
    );

    let sweep = run_codec_sweep(ops_per_thread, &zipf, ops_per_thread / 2);
    let tiers = run_tier_sweep(ops_per_thread / 8);

    let json = format!(
        "{{\n  \"benchmark\": \"storebench\",\n  \"host_cpus\": {host_cpus},\n  \"page_size\": {PAGE},\n  \"keys\": {KEYS},\n  \"zipf_s\": {ZIPF_S},\n  \"ops_per_thread\": {ops_per_thread},\n  \"mix\": \"50% put / 40% get / 10% remove\",\n  \"baseline_shards_1\": {},\n  \"sharded\": {{\"shards\": {sharded_shards}, \"trials\": {}}},\n  \"scaling_8t_over_1t\": {scaling:.2},\n  \"spill\": {},\n  \"same_filled\": {},\n  \"codec_sweep\": {},\n  \"tier_sweep\": {},\n  \"telemetry\": {},\n  \"note\": \"parallel speedup is bounded by min(threads, host_cpus); on a single-cpu host the expected scaling is ~1.0x and the p99 gap between baseline_shards_1 and sharded is the contention signal. spill.entries_per_batch is the write-coalescing factor (1.0 = one syscall per entry, the pre-pipeline behaviour); gc_runs > 0 with a bounded file_bytes_on_disk shows dead-extent compaction under churn. telemetry.spill_trial is the spill trial's own snapshot: ops are nanosecond latency histograms split by serving tier, events are ring counts; telemetry.overhead is the throughput cost of the telemetry plane vs with_telemetry(false), gated at 5% by --smoke. codec_sweep compares codec policies on a pattern-heavy page mix: adaptive_put_p50_win_pct is the put-latency win of sampled-probe codec selection over the lzrw1-only baseline, and each policy row carries per-codec routing counts, achieved ratios, and compress/decompress p50s from the per-codec telemetry histograms; zipf_ratio is the same policy's compression on the ordinary zipfian text/noise mix (adaptive must hold it), gated by --smoke. tier_sweep compares tier policies at equal budget with the background demoter live: recency_get_p50_win_pct is the read-latency win of adaptive hot/warm/cold placement over compress-all on the hot-skewed mix (hot hits are memcpys, not decompresses), and each arm reports hits split by serving tier, promotion/demotion traffic, and final tier gauges; the non-tier trials above pin compress-all so their numbers isolate the codec and spill paths.\"\n}}\n",
        json_trials(&baseline),
        json_trials(&sharded),
        json_spill(&spill),
        json_same_filled(&same),
        json_codec_sweep(&sweep),
        json_tier_sweep(&tiers),
        json_telemetry(&spill.telemetry, &ovh),
    );
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out_path}");
}
