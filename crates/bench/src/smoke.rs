//! Shared smoke-gate checks over telemetry snapshots.
//!
//! `storebench --smoke` and `loadgen --smoke` both gate CI on the same
//! invariants — histograms that were actually exercised and are
//! internally consistent, ring events that agree with the counters they
//! shadow, Prometheus text that a scraper can parse. Each check returns
//! a failure message, or `None` when the invariant holds, so a gate is
//! a `Vec<String>` of whatever failed.

use cc_telemetry::Snapshot;

/// Histogram sanity: the op must have been recorded and its percentiles
/// must be ordered (`p50 <= p90 <= p99 <= max`).
pub fn check_hist(snap: &Snapshot, op: &str) -> Option<String> {
    let Some(s) = snap.op(op) else {
        return Some(format!("telemetry op {op:?} missing from snapshot"));
    };
    if s.count == 0 {
        return Some(format!("telemetry op {op:?} recorded no samples"));
    }
    if !(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max) {
        return Some(format!(
            "telemetry op {op:?} percentiles out of order: p50 {} p90 {} p99 {} max {}",
            s.p50, s.p90, s.p99, s.max
        ));
    }
    None
}

/// Ring/counter agreement: the event's ring count must equal the value
/// of the counter it shadows. `counter_desc` names the counter in the
/// failure message.
pub fn check_event_agrees(
    snap: &Snapshot,
    event: &str,
    counter_desc: &str,
    counter_value: u64,
) -> Option<String> {
    let ring = snap.event_count(event).unwrap_or(0);
    if ring != counter_value {
        return Some(format!(
            "{event} events ({ring}) disagree with {counter_desc} counter ({counter_value})"
        ));
    }
    None
}

/// Prometheus exposition sanity: non-empty, and every non-comment line
/// is exactly `name[{labels}] value` with a numeric value.
pub fn check_prometheus(text: &str, must_contain: &[&str]) -> Option<String> {
    if text.trim().is_empty() {
        return Some("prometheus text is empty".into());
    }
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let (Some(_name), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
            return Some(format!("prometheus line is not `name value`: {line:?}"));
        };
        if value.parse::<f64>().is_err() {
            return Some(format!("prometheus value is not numeric: {line:?}"));
        }
    }
    for needle in must_contain {
        if !text.contains(needle) {
            return Some(format!("prometheus text is missing {needle:?}"));
        }
    }
    None
}

/// Print failures and return a process exit code (0 = gate passed).
pub fn report(gate: &str, failures: &[String]) -> i32 {
    if failures.is_empty() {
        eprintln!("  {gate} smoke OK");
        0
    } else {
        for f in failures {
            eprintln!("  {gate} smoke FAILED: {f}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_telemetry::{Telemetry, TelemetrySpec};

    const SPEC: TelemetrySpec = TelemetrySpec {
        counters: &["reqs"],
        ops: &["op_a"],
        events: &["ev_a"],
    };

    fn snap_with_activity() -> Snapshot {
        let tel = Telemetry::new(SPEC, 1);
        tel.count(0, 0, 3);
        tel.record(0, 100);
        tel.record(0, 200);
        tel.event(0, 1, 2);
        tel.event(0, 3, 4);
        tel.snapshot()
    }

    #[test]
    fn hist_gate_catches_missing_and_empty() {
        let snap = snap_with_activity();
        assert!(check_hist(&snap, "op_a").is_none());
        assert!(check_hist(&snap, "nope").unwrap().contains("missing"));
        let empty = Telemetry::new(SPEC, 1).snapshot();
        assert!(check_hist(&empty, "op_a").unwrap().contains("no samples"));
    }

    #[test]
    fn event_agreement_gate() {
        let snap = snap_with_activity();
        assert!(check_event_agrees(&snap, "ev_a", "twos", 2).is_none());
        let f = check_event_agrees(&snap, "ev_a", "threes", 3).unwrap();
        assert!(f.contains("disagree"), "{f}");
    }

    #[test]
    fn prometheus_gate() {
        let text = snap_with_activity().to_prometheus("cc_test");
        assert!(check_prometheus(&text, &["cc_test_reqs_total"]).is_none());
        assert!(check_prometheus("", &[]).unwrap().contains("empty"));
        assert!(check_prometheus("bad line here\n", &[])
            .unwrap()
            .contains("not `name value`"));
        assert!(check_prometheus("metric nan_maybe\n", &[])
            .unwrap()
            .contains("not numeric"));
        assert!(check_prometheus(&text, &["cc_test_absent_total"])
            .unwrap()
            .contains("missing"));
    }
}
