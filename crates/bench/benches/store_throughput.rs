//! Criterion throughput bench for the sharded `CompressedStore`.
//!
//! Two groups:
//!
//! * `store_hot_path` — single-threaded put and get latency, isolating the
//!   per-op cost (compression, shard lookup, buffer recycling) without
//!   contention.
//! * `store_scaling` — a fixed batch of mixed zipfian put/get/remove ops
//!   split across 1/2/4/8 threads, for both `shards = 1` (the old single
//!   global lock) and the auto-sharded configuration. Elements/sec across
//!   the thread counts shows the lock-striping win.
//! * `store_same_filled` — puts and gets of repeated-word pages, which
//!   take the pattern-elision fast path; compare against `store_hot_path`
//!   to see the cost of LZRW1 they skip.
//! * `store_spill_path` — gets served from the spill file (seek + read +
//!   decompress + revalidate) under a tight budget, the cold-tier cost.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_util::SplitMix64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const PAGE: usize = 4096;
const KEYS: u64 = 1024;
const BUDGET: usize = 64 << 20;
/// Total mixed ops per measured iteration, split across the threads.
const BATCH: u64 = 8192;

fn page_for(key: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((key as usize + i / 13) % 64) as u8 + b' ';
    }
}

fn prefilled(shards: usize) -> Arc<CompressedStore> {
    let store = CompressedStore::new(StoreConfig::in_memory(BUDGET).with_shards(shards));
    let mut page = vec![0u8; PAGE];
    for key in 0..KEYS {
        page_for(key, &mut page);
        store.put(key, &page).expect("prefill");
    }
    Arc::new(store)
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_hot_path");
    group.throughput(Throughput::Bytes(PAGE as u64));

    group.bench_function("put", |b| {
        let store = prefilled(0);
        let mut page = vec![0u8; PAGE];
        let mut n = 0u64;
        b.iter(|| {
            let key = n % KEYS;
            n += 1;
            page_for(key, &mut page);
            store.put(key, &page).expect("put")
        });
    });

    group.bench_function("get", |b| {
        let store = prefilled(0);
        let mut out = vec![0u8; PAGE];
        let mut n = 0u64;
        b.iter(|| {
            let key = n % KEYS;
            n += 1;
            store.get(key, &mut out).expect("get")
        });
    });
    group.finish();
}

/// One measured iteration: `BATCH` mixed ops split across `threads`.
fn mixed_batch(store: &Arc<CompressedStore>, threads: usize, round: u64) {
    let per_thread = BATCH / threads as u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let store = Arc::clone(store);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(round ^ (0xABCD + t as u64));
            let mut page = vec![0u8; PAGE];
            let mut out = vec![0u8; PAGE];
            for _ in 0..per_thread {
                // Cheap zipf-ish skew: min of two uniform draws.
                let a = rng.next_u64() % KEYS;
                let b = rng.next_u64() % KEYS;
                let key = a.min(b);
                match rng.next_u64() % 10 {
                    0..=4 => {
                        page_for(key, &mut page);
                        store.put(key, &page).expect("put");
                    }
                    5..=8 => {
                        let _ = store.get(key, &mut out).expect("get");
                    }
                    _ => {
                        store.remove(key);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
}

fn bench_same_filled(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_same_filled");
    group.throughput(Throughput::Bytes(PAGE as u64));

    // A repeated-word page: detected on put, stored as 8 bytes.
    fn same_page_for(key: u64, buf: &mut [u8]) {
        let word = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_ne_bytes();
        for (i, b) in buf.iter_mut().enumerate() {
            *b = word[i % 8];
        }
    }

    group.bench_function("put", |b| {
        let store = prefilled(0);
        let mut page = vec![0u8; PAGE];
        let mut n = 0u64;
        b.iter(|| {
            let key = n % KEYS;
            n += 1;
            same_page_for(key, &mut page);
            store.put(key, &page).expect("put")
        });
    });

    group.bench_function("get", |b| {
        let store = prefilled(0);
        let mut page = vec![0u8; PAGE];
        for key in 0..KEYS {
            same_page_for(key, &mut page);
            store.put(key, &page).expect("prefill");
        }
        let mut out = vec![0u8; PAGE];
        let mut n = 0u64;
        b.iter(|| {
            let key = n % KEYS;
            n += 1;
            store.get(key, &mut out).expect("get")
        });
    });
    group.finish();
}

fn bench_spill_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_spill_path");
    group.throughput(Throughput::Bytes(PAGE as u64));

    group.bench_function("get_disk", |b| {
        let path = std::env::temp_dir().join(format!("storebench-crit-{}.bin", std::process::id()));
        // Budget of ~2 compressed pages: after the fill, effectively the
        // whole key space lives on the spill file.
        let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
        let mut page = vec![0u8; PAGE];
        for key in 0..KEYS {
            page_for(key, &mut page);
            store.put(key, &page).expect("prefill");
        }
        store.flush().unwrap();
        let mut out = vec![0u8; PAGE];
        let mut n = 0u64;
        b.iter(|| {
            let key = n % KEYS;
            n += 1;
            store.get(key, &mut out).expect("get")
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_scaling");
    group.throughput(Throughput::Elements(BATCH));
    for &threads in &[1usize, 2, 4, 8] {
        for (label, shards) in [("shards1", 1usize), ("sharded", 0usize)] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                let store = prefilled(shards);
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    mixed_batch(&store, threads, round)
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_hot_path, bench_same_filled, bench_spill_path, bench_scaling
}
criterion_main!(benches);
