//! One Criterion bench per paper exhibit, at reduced scale.
//!
//! The full-fidelity reproductions are the `src/bin/{fig1a,fig1b,fig3,
//! table1}` harnesses (see EXPERIMENTS.md); these benches keep a smaller
//! version of each exhibit runnable under plain `cargo bench`, so every
//! table and figure has a bench target and regressions in any experiment
//! path are caught.

use cc_analytic::{bandwidth_speedup, grid, ratio_axis, reference_speedup, speed_axis};
use cc_sim::{Mode, SimConfig, System};
use cc_workloads::{
    compare::CompareApp,
    gold::{GoldApp, GoldPhase, GoldWorkload},
    isca::IscaApp,
    sortapp::{SortApp, SortInput},
    thrasher::{measure_cycle_access_time, Thrasher},
    Workload,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const MB: u64 = 1024 * 1024;

fn fig1_models(c: &mut Criterion) {
    let ratios = ratio_axis(0.05, 1.0, 40);
    let speeds = speed_axis(0.25, 16.0, 40);
    c.bench_function("fig1a_surface", |b| {
        b.iter(|| grid(bandwidth_speedup, &ratios, &speeds))
    });
    c.bench_function("fig1b_surface", |b| {
        b.iter(|| grid(reference_speedup, &ratios, &speeds))
    });
}

fn fig3_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_point");
    group.sample_size(10);
    for (label, mode, write) in [
        ("std_rw", Mode::Std, true),
        ("cc_rw", Mode::Cc, true),
        ("std_ro", Mode::Std, false),
        ("cc_ro", Mode::Cc, false),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut sys = System::new(SimConfig::decstation(MB as usize, mode));
                let mut t = Thrasher::figure3(2 * MB, write);
                t.passes = 2;
                measure_cycle_access_time(&mut sys, &t)
            })
        });
    }
    group.finish();
}

fn table1_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_row");
    group.sample_size(10);
    let mem = 512 * 1024;

    group.bench_function("compare", |b| {
        b.iter(|| {
            let mut sys = System::new(SimConfig::decstation(mem, Mode::Cc));
            CompareApp {
                text_len: 1200,
                band: 16,
                seed: 3,
            }
            .run(&mut sys)
        })
    });
    group.bench_function("isca", |b| {
        b.iter(|| {
            let mut sys = System::new(SimConfig::decstation(mem, Mode::Cc));
            IscaApp {
                processors: 4,
                memory_blocks: 100_000,
                cache_sets: 256,
                ways: 2,
                references: 10_000,
                seed: 9,
                think: cc_util::Ns::ZERO,
            }
            .run(&mut sys)
        })
    });
    group.bench_function("sort_partial", |b| {
        b.iter(|| {
            let mut sys = System::new(SimConfig::decstation(mem, Mode::Cc));
            SortApp {
                input: SortInput::Partial,
                text_bytes: 96 * 1024,
                seed: 4,
                cmp_cost: cc_util::Ns::ZERO,
            }
            .run(&mut sys)
        })
    });
    group.bench_function("sort_random", |b| {
        b.iter(|| {
            let mut sys = System::new(SimConfig::decstation(mem, Mode::Cc));
            SortApp {
                input: SortInput::Random,
                text_bytes: 96 * 1024,
                seed: 4,
                cmp_cost: cc_util::Ns::ZERO,
            }
            .run(&mut sys)
        })
    });
    group.bench_function("gold_create", |b| {
        b.iter(|| {
            let mut sys = System::new(SimConfig::decstation(mem, Mode::Cc));
            GoldWorkload {
                app: GoldApp {
                    messages: 400,
                    words_per_message: 30,
                    vocabulary: 1000,
                    buckets: 256,
                    queries: 500,
                    seed: 6,
                    parse_cost: cc_util::Ns::ZERO,
                    query_cost: cc_util::Ns::ZERO,
                },
                phase: GoldPhase::Create,
            }
            .run(&mut sys)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = fig1_models, fig3_points, table1_rows
}
criterion_main!(benches);
