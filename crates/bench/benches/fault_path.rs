//! Micro-benchmarks of the cache mechanism's hot paths (host wall-time).
//!
//! These measure the *mechanism overhead* of the reproduction itself:
//! insert (compress + place), fault-from-cache (locate + decompress),
//! clean-batch assembly, and the System access fast path. They guard
//! against performance regressions that would make the figure harnesses
//! impractically slow — the simulator runs millions of these per
//! experiment.

use cc_compress::Lzrw1;
use cc_core::{cache::CpuCosts, CacheConfig, CompressionCache, MemBacking, PageKey};
use cc_mem::FramePool;
use cc_sim::{Mode, SimConfig, System};
use cc_util::Ns;
use cc_workloads::datagen;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const PAGE: usize = 4096;
const MB: usize = 1024 * 1024;

fn cache_setup() -> (CompressionCache, FramePool, MemBacking, Vec<u8>) {
    let cfg = CacheConfig::paper(512);
    let cache = CompressionCache::new(
        cfg,
        Box::new(Lzrw1::new()),
        CpuCosts::decstation_5000_200(),
        64 * MB as u64,
    );
    let pool = FramePool::new(520, PAGE);
    let backing = MemBacking::fast(64 * MB);
    let mut page = vec![0u8; PAGE];
    datagen::fill_4to1(&mut page, 3);
    (cache, pool, backing, page)
}

fn bench_insert_evicted(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Bytes(PAGE as u64));
    group.bench_function("insert_evicted", |b| {
        let (mut cache, mut pool, mut backing, page) = cache_setup();
        let mut clock = Ns::ZERO;
        let mut n = 0u32;
        b.iter(|| {
            let key = PageKey {
                seg: 0,
                page: n % 4096,
            };
            n += 1;
            cache.insert_evicted(&mut pool, &mut backing, &mut clock, key, &page, true)
        });
    });

    group.bench_function("fault_from_cache", |b| {
        let (mut cache, mut pool, mut backing, page) = cache_setup();
        let mut clock = Ns::ZERO;
        for i in 0..64u32 {
            cache.insert_evicted(
                &mut pool,
                &mut backing,
                &mut clock,
                PageKey { seg: 0, page: i },
                &page,
                true,
            );
        }
        let mut out = vec![0u8; PAGE];
        let mut i = 0u32;
        b.iter(|| {
            let key = PageKey {
                seg: 0,
                page: i % 64,
            };
            i += 1;
            let r = cache.fault(&mut pool, &mut backing, &mut clock, key, &mut out, true);
            // Reset the shadow so the next fault on this page is legal.
            cache.evict_clean(key);
            r
        });
    });

    group.bench_function("clean_batch", |b| {
        b.iter_batched(
            || {
                let (mut cache, mut pool, mut backing, page) = cache_setup();
                let mut clock = Ns::ZERO;
                for i in 0..32u32 {
                    cache.insert_evicted(
                        &mut pool,
                        &mut backing,
                        &mut clock,
                        PageKey { seg: 0, page: i },
                        &page,
                        true,
                    );
                }
                (cache, pool, backing, clock)
            },
            |(mut cache, mut pool, mut backing, mut clock)| {
                cache.clean_batch(&mut pool, &mut backing, &mut clock)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_system_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.bench_function("access_hit", |b| {
        let mut sys = System::new(SimConfig::decstation(4 * MB, Mode::Cc));
        let seg = sys.create_segment(MB as u64);
        sys.write_u32(seg, 0, 1);
        b.iter(|| sys.read_u32(seg, 0));
    });

    group.bench_function("fault_cycle_cc", |b| {
        // A 2x-overcommitted cyclic write: every iteration is a fault
        // through the full compress/decompress machinery.
        let mut sys = System::new(SimConfig::decstation(MB, Mode::Cc));
        let seg = sys.create_segment(2 * MB as u64);
        let npages = 2 * MB as u64 / 4096;
        for p in 0..npages {
            sys.write_u32(seg, p * 4096, p as u32);
        }
        let mut p = 0u64;
        b.iter(|| {
            let v = sys.read_u32(seg, p * 4096);
            p = (p + 1) % npages;
            v
        });
    });

    group.bench_function("fault_cycle_std", |b| {
        let mut sys = System::new(SimConfig::decstation(MB, Mode::Std));
        let seg = sys.create_segment(2 * MB as u64);
        let npages = 2 * MB as u64 / 4096;
        for p in 0..npages {
            sys.write_u32(seg, p * 4096, p as u32);
        }
        let mut p = 0u64;
        b.iter(|| {
            let v = sys.read_u32(seg, p * 4096);
            p = (p + 1) % npages;
            v
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_insert_evicted, bench_system_paths
}
criterion_main!(benches);
