//! Codec throughput on page-like data classes.
//!
//! Measures the real (host) speed of the from-scratch codecs per data
//! class. These numbers justify the `CostProfile` scale factors in
//! `cc-compress` (LZSS ~4x slower than LZRW1; RLE ~4x faster) — the
//! virtual-time model uses the *paper's* DECstation bandwidths, but the
//! relative shape comes from here.

use cc_compress::{Compressor, Lzrw1, Lzss, Null, Rle};
use cc_util::SplitMix64;
use cc_workloads::datagen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const PAGE: usize = 4096;

fn data_classes() -> Vec<(&'static str, Vec<u8>)> {
    let mut page = vec![0u8; PAGE];
    let zero = vec![0u8; PAGE];
    datagen::fill_4to1(&mut page, 7);
    let four_to_one = page.clone();
    let mut dp = vec![0u8; PAGE];
    datagen::fill_dp_values(&mut dp, 3);
    let text = datagen::repetitive_text(PAGE, 5);
    let mut rng = SplitMix64::new(9);
    let noise: Vec<u8> = (0..PAGE).map(|_| rng.next_u64() as u8).collect();
    vec![
        ("zero", zero),
        ("4to1", four_to_one),
        ("dp", dp),
        ("text", text),
        ("noise", noise),
    ]
}

fn codecs() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Lzrw1::new()),
        Box::new(Lzss::new()),
        Box::new(Rle::new()),
        Box::new(Null::new()),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_page");
    group.throughput(Throughput::Bytes(PAGE as u64));
    for (class, data) in data_classes() {
        for codec in codecs().iter_mut() {
            let mut out = Vec::with_capacity(PAGE + 16);
            group.bench_with_input(BenchmarkId::new(codec.name(), class), &data, |b, data| {
                b.iter(|| codec.compress(std::hint::black_box(data), &mut out));
            });
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress_page");
    group.throughput(Throughput::Bytes(PAGE as u64));
    for (class, data) in data_classes() {
        for codec in codecs().iter_mut() {
            let mut packed = Vec::new();
            codec.compress(&data, &mut packed);
            let mut out = Vec::with_capacity(PAGE);
            group.bench_with_input(
                BenchmarkId::new(codec.name(), class),
                &packed,
                |b, packed| {
                    b.iter(|| {
                        codec
                            .decompress(std::hint::black_box(packed), &mut out, data.len())
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_compress, bench_decompress
}
criterion_main!(benches);
