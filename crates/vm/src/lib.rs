//! Sprite-like virtual memory substrate.
//!
//! This crate owns the page tables and the resident-set LRU — the parts of
//! the VM system that are *identical* between the unmodified ("std") and
//! compression-cache ("cc") configurations of the simulator. What happens
//! to a page once it leaves the resident set (straight to a swap file, or
//! into the compression cache) is the policy difference under study, so it
//! lives above this crate, in `cc-core` and `cc-sim`.
//!
//! A virtual page is always in exactly one of four places, mirroring the
//! paper's hierarchy (§4.1): uncompressed and resident; compressed in the
//! compression cache; on backing store; or never touched (zero-fill). The
//! transitions are driven by the simulator; [`Vm`] enforces their
//! legality (see [`PageState`]) and keeps exact LRU over resident pages
//! with the per-page timestamps that the three-way memory arbiter compares.

#![warn(missing_docs)]

use cc_mem::FrameId;
use cc_util::{LruHandle, LruList, Ns, Slab};

/// Identifier of a segment (one per process address space region; the
/// workloads here use one data segment each, as `thrasher` does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegId(pub u32);

/// Identity of a virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPage {
    /// Owning segment.
    pub seg: SegId,
    /// Page index within the segment.
    pub page: u32,
}

impl VPage {
    /// Pack into a u64 tag (for [`cc_mem::FrameOwner`]).
    pub fn tag(self) -> u64 {
        ((self.seg.0 as u64) << 32) | self.page as u64
    }

    /// Unpack from a tag produced by [`VPage::tag`].
    pub fn from_tag(tag: u64) -> Self {
        VPage {
            seg: SegId((tag >> 32) as u32),
            page: tag as u32,
        }
    }
}

/// Where a virtual page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Never touched; first access zero-fills a frame.
    Untouched,
    /// Uncompressed in a physical frame.
    Resident {
        /// The frame holding the page.
        frame: FrameId,
        /// Modified since it was last made consistent with lower levels.
        dirty: bool,
        /// Last access time (LRU age input).
        last_access: Ns,
    },
    /// In the compression cache (which tracks the compressed location and
    /// dirtiness internally).
    Compressed,
    /// Only on backing store.
    Swapped,
}

/// What `access` found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The page was resident; its frame is returned and recency updated.
    Hit {
        /// Frame holding the page.
        frame: FrameId,
    },
    /// The page is not resident; the simulator must run its fault path.
    Fault {
        /// Where the page was found.
        kind: FaultKind,
    },
}

/// Why a page fault happened — determines the fault service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// First touch: allocate and zero a frame.
    ZeroFill,
    /// Decompress from the compression cache.
    Compressed,
    /// Read from backing store.
    Swapped,
}

#[derive(Debug)]
struct Segment {
    pte: Vec<PageState>,
    /// LRU handle for each resident page (parallel to `pte`).
    handles: Vec<Option<LruHandle>>,
}

/// Counters maintained by the VM layer.
#[derive(Debug, Clone, Default)]
pub struct VmStats {
    /// Total page accesses (reads + writes).
    pub accesses: u64,
    /// Accesses that hit a resident page.
    pub hits: u64,
    /// Faults on untouched pages.
    pub zero_fill_faults: u64,
    /// Faults on pages held compressed.
    pub compressed_faults: u64,
    /// Faults on swapped-out pages.
    pub swap_faults: u64,
}

impl VmStats {
    /// All faults.
    pub fn faults(&self) -> u64 {
        self.zero_fill_faults + self.compressed_faults + self.swap_faults
    }
}

/// The virtual memory system: page tables plus the resident LRU.
///
/// # Examples
///
/// ```
/// use cc_mem::FrameId;
/// use cc_util::Ns;
/// use cc_vm::{AccessResult, FaultKind, Vm, VPage};
///
/// let mut vm = Vm::new();
/// let seg = vm.create_segment(16);
/// let vp = VPage { seg, page: 3 };
/// // First touch faults as zero-fill...
/// assert_eq!(
///     vm.access(vp, false, Ns::ZERO),
///     AccessResult::Fault { kind: FaultKind::ZeroFill }
/// );
/// // ...the simulator installs a frame...
/// vm.install(vp, FrameId(0), false, Ns::ZERO);
/// // ...and the next access hits.
/// assert_eq!(vm.access(vp, true, Ns(10)), AccessResult::Hit { frame: FrameId(0) });
/// ```
#[derive(Debug, Default)]
pub struct Vm {
    segments: Slab<Segment>,
    resident: LruList<VPage>,
    stats: VmStats,
}

impl Vm {
    /// Create an empty VM system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a segment of `npages` untouched pages.
    pub fn create_segment(&mut self, npages: u32) -> SegId {
        let key = self.segments.insert(Segment {
            pte: vec![PageState::Untouched; npages as usize],
            handles: vec![None; npages as usize],
        });
        SegId(key as u32)
    }

    /// Number of pages in a segment.
    pub fn segment_pages(&self, seg: SegId) -> u32 {
        self.segments[seg.0 as usize].pte.len() as u32
    }

    /// Counters.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Current state of a page.
    pub fn state(&self, vp: VPage) -> PageState {
        self.segments[vp.seg.0 as usize].pte[vp.page as usize]
    }

    /// Access a page (the workload-facing entry point). On a hit, recency
    /// and the dirty bit are updated and the frame returned; on a miss the
    /// caller services the fault and calls [`Vm::install`].
    pub fn access(&mut self, vp: VPage, write: bool, now: Ns) -> AccessResult {
        self.stats.accesses += 1;
        let seg = &mut self.segments[vp.seg.0 as usize];
        match &mut seg.pte[vp.page as usize] {
            PageState::Resident {
                frame,
                dirty,
                last_access,
            } => {
                *dirty = *dirty || write;
                *last_access = now;
                let frame = *frame;
                let handle = seg.handles[vp.page as usize].expect("resident page without handle");
                self.resident.touch(handle);
                self.stats.hits += 1;
                AccessResult::Hit { frame }
            }
            PageState::Untouched => {
                self.stats.zero_fill_faults += 1;
                AccessResult::Fault {
                    kind: FaultKind::ZeroFill,
                }
            }
            PageState::Compressed => {
                self.stats.compressed_faults += 1;
                AccessResult::Fault {
                    kind: FaultKind::Compressed,
                }
            }
            PageState::Swapped => {
                self.stats.swap_faults += 1;
                AccessResult::Fault {
                    kind: FaultKind::Swapped,
                }
            }
        }
    }

    /// Make a page resident in `frame` (fault service completion).
    ///
    /// # Panics
    ///
    /// Panics if the page is already resident.
    pub fn install(&mut self, vp: VPage, frame: FrameId, dirty: bool, now: Ns) {
        let seg = &mut self.segments[vp.seg.0 as usize];
        let pte = &mut seg.pte[vp.page as usize];
        assert!(
            !matches!(pte, PageState::Resident { .. }),
            "install over resident page {vp:?}"
        );
        *pte = PageState::Resident {
            frame,
            dirty,
            last_access: now,
        };
        let handle = self.resident.push_mru(vp);
        seg.handles[vp.page as usize] = Some(handle);
    }

    /// The least recently used resident page and its last access time,
    /// without removing it — the VM's bid in the three-way age comparison.
    pub fn oldest_resident(&self) -> Option<(VPage, Ns)> {
        self.resident
            .peek_lru()
            .map(|(_, &vp)| match self.state(vp) {
                PageState::Resident { last_access, .. } => (vp, last_access),
                other => unreachable!("LRU entry {vp:?} not resident: {other:?}"),
            })
    }

    /// Detach the LRU resident page for eviction: removes it from the LRU
    /// and page table, returning `(page, frame, dirty)`. The caller decides
    /// its destination and must then call [`Vm::set_compressed`],
    /// [`Vm::set_swapped`], or [`Vm::install`] (eviction cancelled).
    pub fn take_oldest_resident(&mut self) -> Option<(VPage, FrameId, bool)> {
        let (_, &vp) = self.resident.peek_lru()?;
        Some(self.take_resident(vp))
    }

    /// Detach a specific resident page (see [`Vm::take_oldest_resident`]).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn take_resident(&mut self, vp: VPage) -> (VPage, FrameId, bool) {
        let seg = &mut self.segments[vp.seg.0 as usize];
        let (frame, dirty) = match seg.pte[vp.page as usize] {
            PageState::Resident { frame, dirty, .. } => (frame, dirty),
            other => panic!("take_resident on {vp:?} in state {other:?}"),
        };
        let handle = seg.handles[vp.page as usize]
            .take()
            .expect("resident page without handle");
        self.resident.remove(handle);
        // Leave the PTE in a transitional state; callers immediately set
        // the destination. Untouched is never legal for a page that had
        // data, so use Swapped as the conservative placeholder and rely on
        // the setter calls below for the real destination.
        seg.pte[vp.page as usize] = PageState::Swapped;
        (vp, frame, dirty)
    }

    /// Set the dirty bit of a resident page without counting an access
    /// (used when the faulting access was a write: the fault path installs
    /// the page clean and then marks it).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn mark_dirty(&mut self, vp: VPage) {
        match &mut self.segments[vp.seg.0 as usize].pte[vp.page as usize] {
            PageState::Resident { dirty, .. } => *dirty = true,
            other => panic!("mark_dirty on non-resident {vp:?}: {other:?}"),
        }
    }

    /// Record that a page now lives in the compression cache.
    pub fn set_compressed(&mut self, vp: VPage) {
        self.set_non_resident(vp, PageState::Compressed);
    }

    /// Record that a page now lives only on backing store.
    pub fn set_swapped(&mut self, vp: VPage) {
        self.set_non_resident(vp, PageState::Swapped);
    }

    fn set_non_resident(&mut self, vp: VPage, state: PageState) {
        let seg = &mut self.segments[vp.seg.0 as usize];
        let pte = &mut seg.pte[vp.page as usize];
        assert!(
            !matches!(pte, PageState::Resident { .. }),
            "page {vp:?} still resident; take_resident first"
        );
        *pte = state;
    }

    /// Iterate over the resident pages from least to most recently used
    /// (diagnostics and invariant checks).
    pub fn resident_lru_iter(&self) -> impl Iterator<Item = VPage> + '_ {
        self.resident.iter_lru().map(|(_, &vp)| vp)
    }

    /// Verify cross-structure invariants (every LRU entry resident, every
    /// resident page in the LRU exactly once). For tests.
    pub fn check_invariants(&self) {
        let mut lru_count = 0;
        for (_, &vp) in self.resident.iter_mru() {
            assert!(
                matches!(self.state(vp), PageState::Resident { .. }),
                "LRU entry {vp:?} not resident"
            );
            lru_count += 1;
        }
        let mut resident = 0;
        for (seg_key, seg) in self.segments.iter() {
            for (i, pte) in seg.pte.iter().enumerate() {
                if let PageState::Resident { .. } = pte {
                    resident += 1;
                    assert!(
                        seg.handles[i].is_some(),
                        "resident page {seg_key}/{i} missing LRU handle"
                    );
                } else {
                    assert!(
                        seg.handles[i].is_none(),
                        "non-resident page {seg_key}/{i} has LRU handle"
                    );
                }
            }
        }
        assert_eq!(lru_count, resident, "LRU and page tables disagree");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(seg: SegId, page: u32) -> VPage {
        VPage { seg, page }
    }

    #[test]
    fn tag_roundtrip() {
        let p = VPage {
            seg: SegId(7),
            page: 123_456,
        };
        assert_eq!(VPage::from_tag(p.tag()), p);
    }

    #[test]
    fn first_touch_is_zero_fill() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(4);
        match vm.access(vp(seg, 0), false, Ns::ZERO) {
            AccessResult::Fault {
                kind: FaultKind::ZeroFill,
            } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(vm.stats().zero_fill_faults, 1);
    }

    #[test]
    fn hit_updates_recency_and_dirty() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(4);
        vm.install(vp(seg, 0), FrameId(0), false, Ns(1));
        vm.install(vp(seg, 1), FrameId(1), false, Ns(2));
        // Page 0 is older; touch it read-only.
        assert_eq!(
            vm.access(vp(seg, 0), false, Ns(5)),
            AccessResult::Hit { frame: FrameId(0) }
        );
        // Now page 1 is the LRU victim.
        assert_eq!(vm.oldest_resident(), Some((vp(seg, 1), Ns(2))));
        // A write sets the dirty bit.
        vm.access(vp(seg, 1), true, Ns(6));
        let (_, _, dirty) = vm.take_resident(vp(seg, 1));
        assert!(dirty);
        vm.check_invariants();
    }

    #[test]
    fn clean_page_stays_clean_through_reads() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(1);
        vm.install(vp(seg, 0), FrameId(3), false, Ns::ZERO);
        vm.access(vp(seg, 0), false, Ns(1));
        vm.access(vp(seg, 0), false, Ns(2));
        let (_, _, dirty) = vm.take_resident(vp(seg, 0));
        assert!(!dirty);
    }

    #[test]
    fn eviction_state_transitions() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(2);
        vm.install(vp(seg, 0), FrameId(0), true, Ns(0));
        vm.install(vp(seg, 1), FrameId(1), false, Ns(1));

        let (victim, frame, dirty) = vm.take_oldest_resident().unwrap();
        assert_eq!(victim, vp(seg, 0));
        assert_eq!(frame, FrameId(0));
        assert!(dirty);
        vm.set_compressed(victim);
        assert_eq!(vm.state(victim), PageState::Compressed);
        assert_eq!(
            vm.access(victim, false, Ns(9)),
            AccessResult::Fault {
                kind: FaultKind::Compressed
            }
        );

        let (v2, _, _) = vm.take_oldest_resident().unwrap();
        vm.set_swapped(v2);
        assert_eq!(
            vm.access(v2, false, Ns(10)),
            AccessResult::Fault {
                kind: FaultKind::Swapped
            }
        );
        assert_eq!(vm.resident_count(), 0);
        assert!(vm.take_oldest_resident().is_none());
        vm.check_invariants();
    }

    #[test]
    fn reinstall_after_fault() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(1);
        vm.install(vp(seg, 0), FrameId(0), true, Ns(0));
        let (v, _, _) = vm.take_oldest_resident().unwrap();
        vm.set_compressed(v);
        // Fault back in clean (decompressed copy matches the cache copy).
        vm.install(v, FrameId(5), false, Ns(7));
        assert_eq!(
            vm.access(v, false, Ns(8)),
            AccessResult::Hit { frame: FrameId(5) }
        );
        vm.check_invariants();
    }

    #[test]
    fn lru_order_is_exact() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(8);
        for i in 0..8 {
            vm.install(vp(seg, i), FrameId(i), false, Ns(i as u64));
        }
        // Touch pages 0..4 in reverse order at later times.
        for (t, i) in (0..4).rev().enumerate() {
            vm.access(vp(seg, i), false, Ns(100 + t as u64));
        }
        // Expected LRU order now: 4,5,6,7 (untouched since install), then
        // 3,2,1,0 by touch order.
        let order: Vec<u32> = vm.resident_lru_iter().map(|p| p.page).collect();
        assert_eq!(order, vec![4, 5, 6, 7, 3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "install over resident page")]
    fn double_install_panics() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(1);
        vm.install(vp(seg, 0), FrameId(0), false, Ns(0));
        vm.install(vp(seg, 0), FrameId(1), false, Ns(1));
    }

    #[test]
    #[should_panic(expected = "take_resident on")]
    fn take_non_resident_panics() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(1);
        vm.take_resident(vp(seg, 0));
    }

    #[test]
    fn stats_count_fault_kinds() {
        let mut vm = Vm::new();
        let seg = vm.create_segment(3);
        vm.access(vp(seg, 0), false, Ns(0)); // zero-fill
        vm.install(vp(seg, 0), FrameId(0), false, Ns(0));
        vm.access(vp(seg, 0), false, Ns(1)); // hit
        let (v, _, _) = vm.take_resident(vp(seg, 0));
        vm.set_compressed(v);
        vm.access(v, false, Ns(2)); // compressed fault
        vm.set_swapped(v);
        vm.access(v, false, Ns(3)); // swap fault
        let s = vm.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.zero_fill_faults, 1);
        assert_eq!(s.compressed_faults, 1);
        assert_eq!(s.swap_faults, 1);
        assert_eq!(s.faults(), 3);
    }
}
