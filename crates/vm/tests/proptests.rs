//! Property tests of the VM page tables and resident LRU against a model.

use cc_mem::FrameId;
use cc_util::Ns;
use cc_vm::{AccessResult, FaultKind, PageState, VPage, Vm};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Access page (read or write); faults are serviced by installing the
    /// next free "frame".
    Access { page: u8, write: bool },
    /// Evict the LRU resident page to compressed or swapped.
    EvictOldest { to_compressed: bool },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32, any::<bool>()).prop_map(|(page, write)| Op::Access { page, write }),
        any::<bool>().prop_map(|to_compressed| Op::EvictOldest { to_compressed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vm_state_machine_matches_model(ops in proptest::collection::vec(op(), 1..300)) {
        let mut vm = Vm::new();
        let seg = vm.create_segment(32);
        // Model: page -> (resident?, dirty), plus LRU order of residents.
        let mut dirty: HashMap<u8, bool> = HashMap::new();
        let mut lru: Vec<u8> = Vec::new(); // front = LRU
        let mut touched: HashMap<u8, PageState> = HashMap::new();
        let mut next_frame = 0u32;
        let mut clock = 0u64;

        for op in ops {
            clock += 1;
            match op {
                Op::Access { page, write } => {
                    let vp = VPage { seg, page: page as u32 };
                    match vm.access(vp, write, Ns(clock)) {
                        AccessResult::Hit { .. } => {
                            prop_assert!(lru.contains(&page), "hit on non-resident");
                            lru.retain(|&p| p != page);
                            lru.push(page);
                            if write {
                                dirty.insert(page, true);
                            }
                        }
                        AccessResult::Fault { kind } => {
                            // Model agreement on fault kind.
                            let expect = match touched.get(&page) {
                                None => FaultKind::ZeroFill,
                                Some(PageState::Compressed) => FaultKind::Compressed,
                                Some(PageState::Swapped) => FaultKind::Swapped,
                                Some(other) => {
                                    return Err(TestCaseError::fail(format!(
                                        "model out of sync: {other:?}"
                                    )))
                                }
                            };
                            prop_assert_eq!(kind, expect);
                            let zero_fill = matches!(kind, FaultKind::ZeroFill);
                            vm.install(vp, FrameId(next_frame), zero_fill, Ns(clock));
                            if write {
                                vm.mark_dirty(vp);
                            }
                            next_frame += 1;
                            lru.push(page);
                            dirty.insert(page, zero_fill || write);
                            touched.insert(page, PageState::Untouched); // placeholder: resident
                        }
                    }
                }
                Op::EvictOldest { to_compressed } => {
                    match vm.take_oldest_resident() {
                        Some((vp, _frame, was_dirty)) => {
                            prop_assert!(!lru.is_empty());
                            let expect_page = lru.remove(0);
                            prop_assert_eq!(vp.page as u8, expect_page, "LRU order diverged");
                            prop_assert_eq!(
                                was_dirty,
                                dirty.get(&expect_page).copied().unwrap_or(false),
                                "dirty bit diverged"
                            );
                            let new_state = if to_compressed {
                                vm.set_compressed(vp);
                                PageState::Compressed
                            } else {
                                vm.set_swapped(vp);
                                PageState::Swapped
                            };
                            touched.insert(expect_page, new_state);
                            dirty.remove(&expect_page);
                        }
                        None => prop_assert!(lru.is_empty()),
                    }
                }
            }
            prop_assert_eq!(vm.resident_count(), lru.len());
        }
        vm.check_invariants();
    }
}
