//! Property tests of the block file layer: contents and I/O accounting
//! against a byte-array model, including the §4.3 read-modify-write rule.

use cc_blockfs::FileSystem;
use cc_disk::{Disk, DiskParams};
use cc_util::Ns;
use proptest::prelude::*;

const BLOCK: usize = 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { off: u16, len: u16, byte: u8 },
    Read { off: u16, len: u16 },
}

fn op(file_bytes: usize) -> impl Strategy<Value = Op> {
    let max = (file_bytes - 1) as u16;
    prop_oneof![
        (0..max, 1u16..5000, any::<u8>()).prop_map(|(off, len, byte)| Op::Write { off, len, byte }),
        (0..max, 1u16..5000).prop_map(|(off, len)| Op::Read { off, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn contents_and_accounting_match_model(
        ops in proptest::collection::vec(op(16 * BLOCK), 1..60)
    ) {
        let mut fs = FileSystem::new(Disk::new(DiskParams::rz57()));
        let file = fs.create("f", 16);
        let mut model = vec![0u8; 16 * BLOCK];
        let mut now = Ns::ZERO;
        for o in ops {
            match o {
                Op::Write { off, len, byte } => {
                    let off = off as usize;
                    let len = (len as usize).min(model.len() - off);
                    let data = vec![byte; len];
                    let before = fs.stats().physical_bytes_written;
                    let c = fs.write_bytes(now, file, off as u64, &data);
                    now = now.max(c.done);
                    model[off..off + len].copy_from_slice(&data);
                    // §4.3: the physical write covers whole blocks around
                    // the logical range.
                    let blocks = (off + len - 1) / BLOCK - off / BLOCK + 1;
                    prop_assert_eq!(
                        fs.stats().physical_bytes_written - before,
                        (blocks * BLOCK) as u64
                    );
                }
                Op::Read { off, len } => {
                    let off = off as usize;
                    let len = (len as usize).min(model.len() - off);
                    if len == 0 {
                        continue;
                    }
                    let mut out = vec![0u8; len];
                    let before = fs.stats().physical_bytes_read;
                    now = fs.read_bytes(now, file, off as u64, &mut out);
                    prop_assert_eq!(&out, &model[off..off + len]);
                    // Reads are always whole covering blocks.
                    let blocks = (off + len - 1) / BLOCK - off / BLOCK + 1;
                    prop_assert_eq!(
                        fs.stats().physical_bytes_read - before,
                        (blocks * BLOCK) as u64
                    );
                }
            }
        }
        // Every partial-edge write must have induced RMW reads.
        prop_assert!(fs.stats().physical_bytes_read.is_multiple_of(BLOCK as u64));
    }
}
