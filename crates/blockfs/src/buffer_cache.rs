//! The Sprite file buffer cache.
//!
//! Sprite's defining VM feature (Nelson, Welch & Ousterhout 1988) is that
//! the file cache and virtual memory *trade* physical pages dynamically by
//! comparing the LRU ages of their oldest pages — §4 of the paper extends
//! that two-way negotiation to three ways. This module provides the file
//! side: an LRU cache of `(file, block)` entries whose frames come from the
//! shared [`cc_mem::FramePool`], exposing exactly the hooks the memory
//! arbiter needs (oldest age, eviction, dirty write-back information).
//!
//! The cache stores block *contents* in its frames; the simulator charges
//! copy costs. Paging (swap) traffic bypasses this cache — Sprite's VM
//! reads and writes swap files directly — so in the reproduced experiments
//! it mostly represents the third claimant on memory, and it is exercised
//! directly by file-workload tests and the compressed-file-cache extension
//! example.

use std::collections::HashMap;

use cc_mem::{FrameId, FrameOwner, FramePool};
use cc_util::{LruHandle, LruList, Ns};

use crate::FileId;

/// Key of a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheBlockKey {
    /// Owning file.
    pub file: FileId,
    /// Block index within the file.
    pub block: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    frame: FrameId,
    dirty: bool,
    last_access: Ns,
    handle: LruHandle,
}

/// A block evicted from the cache; the caller owns writing it back (if
/// dirty) and freeing the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Which block this was.
    pub key: CacheBlockKey,
    /// The frame holding its contents.
    pub frame: FrameId,
    /// Whether it has unwritten modifications.
    pub dirty: bool,
}

/// LRU file-block cache backed by pool frames.
#[derive(Debug, Default)]
pub struct BufferCache {
    map: HashMap<CacheBlockKey, Entry>,
    lru: LruList<CacheBlockKey>,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a block, updating recency on hit.
    pub fn lookup(&mut self, key: CacheBlockKey, now: Ns) -> Option<FrameId> {
        match self.map.get_mut(&key) {
            Some(e) => {
                e.last_access = now;
                self.lru.touch(e.handle);
                self.hits += 1;
                Some(e.frame)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a block that now lives in `frame` (caller already filled it).
    ///
    /// # Panics
    ///
    /// Panics if the block is already cached — the caller must `lookup`
    /// first; double-caching a block would alias two frames.
    pub fn insert(&mut self, key: CacheBlockKey, frame: FrameId, now: Ns, dirty: bool) {
        assert!(!self.map.contains_key(&key), "block {key:?} already cached");
        let handle = self.lru.push_mru(key);
        self.map.insert(
            key,
            Entry {
                frame,
                dirty,
                last_access: now,
                handle,
            },
        );
    }

    /// Mark a cached block dirty (after a write into its frame).
    ///
    /// # Panics
    ///
    /// Panics if the block is not cached.
    pub fn mark_dirty(&mut self, key: CacheBlockKey) {
        self.map
            .get_mut(&key)
            .unwrap_or_else(|| panic!("mark_dirty of uncached {key:?}"))
            .dirty = true;
    }

    /// Last-access time of the least recently used block — the cache's
    /// "age" input to the three-way memory arbiter. `None` when empty.
    pub fn oldest_access(&self) -> Option<Ns> {
        self.lru
            .peek_lru()
            .map(|(_, key)| self.map[key].last_access)
    }

    /// Evict the least recently used block. The caller must write it back
    /// if dirty and return the frame to the pool (or reuse it).
    pub fn evict_lru(&mut self) -> Option<EvictedBlock> {
        let key = self.lru.pop_lru()?;
        let e = self.map.remove(&key).expect("lru/map out of sync");
        Some(EvictedBlock {
            key,
            frame: e.frame,
            dirty: e.dirty,
        })
    }

    /// Remove a specific block (e.g. on file truncation), returning its
    /// eviction record if present.
    pub fn remove(&mut self, key: CacheBlockKey) -> Option<EvictedBlock> {
        let e = self.map.remove(&key)?;
        self.lru.remove(e.handle);
        Some(EvictedBlock {
            key,
            frame: e.frame,
            dirty: e.dirty,
        })
    }

    /// Iterate over dirty blocks (for periodic sync).
    pub fn dirty_blocks(&self) -> impl Iterator<Item = (CacheBlockKey, FrameId)> + '_ {
        self.map
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(k, e)| (*k, e.frame))
    }

    /// Clear a block's dirty bit after write-back.
    pub fn mark_clean(&mut self, key: CacheBlockKey) {
        if let Some(e) = self.map.get_mut(&key) {
            e.dirty = false;
        }
    }
}

/// Read a file block through the cache: returns `(frame, time_available)`.
///
/// On a miss this allocates a frame from `pool` (the caller must have
/// ensured one is available — that is the arbiter's job), reads from `fs`,
/// and inserts. This free function keeps the borrow surfaces of the cache,
/// pool, and fs separate.
pub fn read_block_through(
    cache: &mut BufferCache,
    pool: &mut FramePool,
    fs: &mut crate::FileSystem,
    now: Ns,
    key: CacheBlockKey,
) -> (FrameId, Ns) {
    if let Some(frame) = cache.lookup(key, now) {
        return (frame, now);
    }
    let frame = pool
        .alloc(FrameOwner::FileCache {
            tag: (key.file.0 as u64) << 32 | key.block,
        })
        .expect("caller must guarantee a free frame before read_block_through");
    let bb = fs.block_bytes() as u64;
    let mut buf = vec![0u8; bb as usize];
    let done = fs.read_bytes(now, key.file, key.block * bb, &mut buf);
    pool.data_mut(frame).copy_from_slice(&buf);
    cache.insert(key, frame, done, false);
    (frame, done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileSystem;
    use cc_disk::{Disk, DiskParams};

    fn setup() -> (BufferCache, FramePool, FileSystem, FileId) {
        let mut fs = FileSystem::new(Disk::new(DiskParams::rz57()));
        let f = fs.create("data", 32);
        (BufferCache::new(), FramePool::new(16, 4096), fs, f)
    }

    fn key(file: FileId, block: u64) -> CacheBlockKey {
        CacheBlockKey { file, block }
    }

    #[test]
    fn hit_after_miss() {
        let (mut cache, mut pool, mut fs, f) = setup();
        let (frame1, t1) = read_block_through(&mut cache, &mut pool, &mut fs, Ns::ZERO, key(f, 3));
        assert!(t1 > Ns::ZERO, "miss pays disk time");
        let (frame2, t2) = read_block_through(&mut cache, &mut pool, &mut fs, t1, key(f, 3));
        assert_eq!(frame1, frame2);
        assert_eq!(t2, t1, "hit is free at this layer");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(fs.disk().stats().reads, 1);
    }

    #[test]
    fn cached_data_matches_file() {
        let (mut cache, mut pool, mut fs, f) = setup();
        let page = vec![0x5Au8; 4096];
        let w = fs.write_bytes(Ns::ZERO, f, 5 * 4096, &page);
        let (frame, _) = read_block_through(&mut cache, &mut pool, &mut fs, w.done, key(f, 5));
        assert_eq!(pool.data(frame), &page[..]);
    }

    #[test]
    fn eviction_order_is_lru() {
        let (mut cache, mut pool, mut fs, f) = setup();
        let mut t = Ns::ZERO;
        for b in 0..4 {
            let (_, done) = read_block_through(&mut cache, &mut pool, &mut fs, t, key(f, b));
            t = done;
        }
        // Touch block 0 so block 1 becomes oldest.
        cache.lookup(key(f, 0), t);
        let e = cache.evict_lru().unwrap();
        assert_eq!(e.key, key(f, 1));
        assert!(!e.dirty);
        pool.free(e.frame);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn dirty_tracking() {
        let (mut cache, mut pool, mut fs, f) = setup();
        let (frame, t) = read_block_through(&mut cache, &mut pool, &mut fs, Ns::ZERO, key(f, 7));
        pool.data_mut(frame)[0] = 0xEE;
        cache.mark_dirty(key(f, 7));
        assert_eq!(cache.dirty_blocks().count(), 1);
        cache.mark_clean(key(f, 7));
        assert_eq!(cache.dirty_blocks().count(), 0);
        // Dirty bit survives eviction reporting.
        cache.mark_dirty(key(f, 7));
        let e = cache.evict_lru().unwrap();
        assert!(e.dirty);
        let _ = t;
    }

    #[test]
    fn oldest_access_tracks_lru_tail() {
        let (mut cache, mut pool, mut fs, f) = setup();
        assert_eq!(cache.oldest_access(), None);
        let (_, t0) = read_block_through(&mut cache, &mut pool, &mut fs, Ns::ZERO, key(f, 0));
        let (_, t1) = read_block_through(&mut cache, &mut pool, &mut fs, t0, key(f, 1));
        assert_eq!(cache.oldest_access(), Some(t0));
        // Touching block 0 later makes block 1 the oldest.
        cache.lookup(key(f, 0), t1 + Ns::from_ms(1));
        assert_eq!(cache.oldest_access(), Some(t1));
    }

    #[test]
    fn remove_specific_block() {
        let (mut cache, mut pool, mut fs, f) = setup();
        read_block_through(&mut cache, &mut pool, &mut fs, Ns::ZERO, key(f, 2));
        assert!(cache.remove(key(f, 2)).is_some());
        assert!(cache.remove(key(f, 2)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let (mut cache, mut pool, mut fs, f) = setup();
        let (frame, _) = read_block_through(&mut cache, &mut pool, &mut fs, Ns::ZERO, key(f, 0));
        cache.insert(key(f, 0), frame, Ns::ZERO, false);
    }
}
