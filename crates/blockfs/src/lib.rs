//! Sprite-like block file layer over a simulated disk.
//!
//! §4.3 of the paper turns on a property of the Sprite file system that
//! this crate reproduces exactly:
//!
//! > *"with the exception of the last block in a file, the file system
//! > enforces transfers in multiples of a whole file system block. If part
//! > of a block is written then the file system reads the old contents and
//! > overwrites the part just written before writing the whole block back
//! > to disk. In other words, if a page were compressed from 4 Kbytes to
//! > 2 Kbytes, a 2-Kbyte write would result in a 4-Kbyte read and a
//! > 4-Kbyte write rather than only the expected 2 Kbyte write! ...
//! > a request to read 2 Kbytes within a 4-Kbyte block would result in the
//! > file system reading all 4 Kbytes"*
//!
//! [`FileSystem::write_bytes`] therefore performs a read-modify-write for
//! any partially covered block, and [`FileSystem::read_bytes`] always reads
//! whole covering blocks, with both the extra I/O and its time charged to
//! the caller. These semantics are what make the compression cache's
//! backing-store interface (fragment packing, batched 32 KB writes)
//! worthwhile, and what limit it (every page-in is a full 4 KB read).
//!
//! The crate also provides the Sprite **file buffer cache** substrate
//! ([`BufferCache`]): an LRU block cache drawing frames from the shared
//! [`cc_mem::FramePool`], so the simulator can trade physical memory
//! between VM pages, file blocks, and compressed pages by comparing LRU
//! ages — the §4.2 mechanism.

#![warn(missing_docs)]

mod buffer_cache;

pub use buffer_cache::{read_block_through, BufferCache, CacheBlockKey, EvictedBlock};

use cc_disk::{Completion, Disk};
use cc_util::{Ns, Slab};

/// Identifier of a file within the [`FileSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u32);

/// I/O accounting maintained by the file layer (over and above the disk's
/// own stats): how much work the whole-block rule induced.
#[derive(Debug, Clone, Default)]
pub struct FsStats {
    /// Reads issued only to complete a partial block write (§4.3's hidden
    /// 4 KB read behind a 2 KB write).
    pub rmw_reads: u64,
    /// Bytes the caller asked to read.
    pub logical_bytes_read: u64,
    /// Bytes the caller asked to write.
    pub logical_bytes_written: u64,
    /// Bytes actually moved from disk (block-rounded).
    pub physical_bytes_read: u64,
    /// Bytes actually moved to disk (block-rounded).
    pub physical_bytes_written: u64,
}

#[derive(Debug)]
struct FileMeta {
    #[allow(dead_code)] // Names exist for debugging and reports.
    name: String,
    /// First disk block of this file's contiguous extent.
    start_block: u64,
    /// Length in blocks.
    nblocks: u64,
    /// The file's real contents (the simulation keeps actual bytes
    /// end-to-end so data integrity through swap is testable).
    data: Vec<u8>,
}

/// A file system with contiguous per-file extents on one disk.
///
/// Files are created at a fixed block size, the way Sprite swap files are
/// sized to their segment. Extents are allocated sequentially, so offsets
/// that are close within a file are close on disk (the paper's "no seek
/// necessary if the pages are close to each other in the swap file").
#[derive(Debug)]
pub struct FileSystem {
    disk: Disk,
    files: Slab<FileMeta>,
    next_block: u64,
    stats: FsStats,
}

impl FileSystem {
    /// Create a file system on `disk`.
    pub fn new(disk: Disk) -> Self {
        FileSystem {
            disk,
            files: Slab::new(),
            next_block: 0,
            stats: FsStats::default(),
        }
    }

    /// Block size in bytes (the disk's addressable unit; 4 KB throughout
    /// the paper).
    pub fn block_bytes(&self) -> usize {
        self.disk.params().block_bytes as usize
    }

    /// Accumulated file-layer statistics.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// The underlying disk (for its stats and busy timeline).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Create a file of `nblocks` blocks; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the disk has no room for the extent.
    pub fn create(&mut self, name: &str, nblocks: u64) -> FileId {
        assert!(
            self.next_block + nblocks <= self.disk.params().blocks,
            "disk full: cannot allocate {nblocks} blocks for {name}"
        );
        let start = self.next_block;
        self.next_block += nblocks;
        let bytes = (nblocks * self.block_bytes() as u64) as usize;
        let key = self.files.insert(FileMeta {
            name: name.to_string(),
            start_block: start,
            nblocks,
            data: vec![0; bytes],
        });
        FileId(key as u32)
    }

    /// File length in bytes.
    pub fn len_bytes(&self, file: FileId) -> u64 {
        let f = &self.files[file.0 as usize];
        f.nblocks * self.block_bytes() as u64
    }

    /// Read `out.len()` bytes at `offset`, waiting for the disk.
    ///
    /// The transfer is rounded out to whole blocks (both edges), exactly as
    /// Sprite would; the returned instant is when the data is available.
    /// One contiguous disk request covers all blocks.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn read_bytes(&mut self, now: Ns, file: FileId, offset: u64, out: &mut [u8]) -> Ns {
        if out.is_empty() {
            return now;
        }
        let bb = self.block_bytes() as u64;
        let f = &self.files[file.0 as usize];
        assert!(
            offset + out.len() as u64 <= f.nblocks * bb,
            "read past EOF: {offset}+{} > {}",
            out.len(),
            f.nblocks * bb
        );
        let first = offset / bb;
        let last = (offset + out.len() as u64 - 1) / bb;
        let nblocks = (last - first + 1) as u32;
        let completion = self.disk.read(now, f.start_block + first, nblocks);
        out.copy_from_slice(&f.data[offset as usize..offset as usize + out.len()]);
        self.stats.logical_bytes_read += out.len() as u64;
        self.stats.physical_bytes_read += nblocks as u64 * bb;
        completion.done
    }

    /// Write `data` at `offset`. Returns the disk completion; the caller
    /// chooses whether to wait (page-outs normally do not).
    ///
    /// Any partially covered block costs a blocking read-modify-write: the
    /// old block is read (the caller's clock should be treated as delayed
    /// until `Completion::start` of the write — we fold the read into the
    /// disk timeline, which serializes it before the write).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range access.
    pub fn write_bytes(&mut self, now: Ns, file: FileId, offset: u64, data: &[u8]) -> Completion {
        let bb = self.block_bytes() as u64;
        assert!(!data.is_empty(), "empty write");
        let f = &self.files[file.0 as usize];
        assert!(
            offset + data.len() as u64 <= f.nblocks * bb,
            "write past EOF: {offset}+{} > {}",
            data.len(),
            f.nblocks * bb
        );
        let first = offset / bb;
        let last = (offset + data.len() as u64 - 1) / bb;
        let nblocks = (last - first + 1) as u32;
        let start_block = f.start_block + first;

        // Read-modify-write for ragged edges: Sprite reads the old block
        // before overwriting part of it.
        let leading_partial = !offset.is_multiple_of(bb);
        let trailing_partial = !(offset + data.len() as u64).is_multiple_of(bb);
        let mut t = now;
        if leading_partial {
            let c = self.disk.read(t, start_block, 1);
            t = c.done;
            self.stats.rmw_reads += 1;
            self.stats.physical_bytes_read += bb;
        }
        if trailing_partial && (last > first || !leading_partial) {
            let c = self.disk.read(t, f.start_block + last, 1);
            t = c.done;
            self.stats.rmw_reads += 1;
            self.stats.physical_bytes_read += bb;
        }

        let completion = self.disk.write(t, start_block, nblocks);
        let f = &mut self.files[file.0 as usize];
        f.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        self.stats.logical_bytes_written += data.len() as u64;
        self.stats.physical_bytes_written += nblocks as u64 * bb;
        completion
    }

    /// Disk block address of a file block (for locality-aware callers like
    /// the swap layout code).
    pub fn disk_block_of(&self, file: FileId, file_block: u64) -> u64 {
        let f = &self.files[file.0 as usize];
        assert!(file_block < f.nblocks, "block {file_block} past EOF");
        f.start_block + file_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_disk::DiskParams;

    fn fs() -> FileSystem {
        FileSystem::new(Disk::new(DiskParams::rz57()))
    }

    #[test]
    fn create_and_roundtrip_whole_blocks() {
        let mut fs = fs();
        let f = fs.create("swap0", 16);
        assert_eq!(fs.len_bytes(f), 16 * 4096);
        let page = vec![0xA5u8; 4096];
        let w = fs.write_bytes(Ns::ZERO, f, 4096, &page);
        let mut out = vec![0u8; 4096];
        let done = fs.read_bytes(w.done, f, 4096, &mut out);
        assert_eq!(out, page);
        assert!(done > w.done);
        assert_eq!(fs.stats().rmw_reads, 0, "aligned write needs no RMW");
    }

    #[test]
    fn partial_write_costs_a_read_modify_write() {
        let mut fs = fs();
        let f = fs.create("swap0", 4);
        // The paper's example: a 2 KB write inside a 4 KB block becomes a
        // 4 KB read plus a 4 KB write.
        let half = vec![0x11u8; 2048];
        fs.write_bytes(Ns::ZERO, f, 1024, &half);
        assert_eq!(fs.stats().rmw_reads, 1);
        assert_eq!(fs.stats().physical_bytes_read, 4096);
        assert_eq!(fs.stats().physical_bytes_written, 4096);
        assert_eq!(fs.stats().logical_bytes_written, 2048);
        assert_eq!(fs.disk().stats().reads, 1);
        assert_eq!(fs.disk().stats().writes, 1);
    }

    #[test]
    fn straddling_write_rmws_both_edges() {
        let mut fs = fs();
        let f = fs.create("swap0", 4);
        // 6 KB write starting 1 KB into block 0: partial head and tail.
        let data = vec![0x22u8; 6144];
        fs.write_bytes(Ns::ZERO, f, 1024, &data);
        assert_eq!(fs.stats().rmw_reads, 2);
        assert_eq!(fs.stats().physical_bytes_written, 2 * 4096);
        // Contents must be intact around the edges.
        let mut out = vec![0u8; 2 * 4096];
        fs.read_bytes(Ns::from_secs(1), f, 0, &mut out);
        assert!(out[..1024].iter().all(|&b| b == 0));
        assert!(out[1024..1024 + 6144].iter().all(|&b| b == 0x22));
        assert!(out[1024 + 6144..].iter().all(|&b| b == 0));
    }

    #[test]
    fn small_read_moves_a_whole_block() {
        let mut fs = fs();
        let f = fs.create("swap0", 2);
        let mut out = vec![0u8; 512];
        fs.read_bytes(Ns::ZERO, f, 100, &mut out);
        assert_eq!(fs.stats().logical_bytes_read, 512);
        assert_eq!(fs.stats().physical_bytes_read, 4096);
    }

    #[test]
    fn multi_block_read_is_one_disk_request() {
        let mut fs = fs();
        let f = fs.create("swap0", 16);
        let mut out = vec![0u8; 8 * 4096];
        fs.read_bytes(Ns::ZERO, f, 0, &mut out);
        assert_eq!(fs.disk().stats().reads, 1, "one contiguous request");
        assert_eq!(fs.stats().physical_bytes_read, 8 * 4096);
    }

    #[test]
    fn files_get_disjoint_extents() {
        let mut fs = fs();
        let a = fs.create("a", 8);
        let b = fs.create("b", 8);
        assert_eq!(fs.disk_block_of(a, 0), 0);
        assert_eq!(fs.disk_block_of(b, 0), 8);
        // Writes to one file never bleed into the other.
        fs.write_bytes(Ns::ZERO, a, 0, &vec![1u8; 8 * 4096]);
        let mut out = vec![9u8; 4096];
        fs.read_bytes(Ns::from_secs(1), b, 0, &mut out);
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn write_then_read_waits_for_disk() {
        let mut fs = fs();
        let f = fs.create("swap0", 64);
        let w = fs.write_bytes(Ns::ZERO, f, 0, &vec![3u8; 32 * 4096]);
        // A read issued "immediately" completes only after the write.
        let mut out = vec![0u8; 4096];
        let done = fs.read_bytes(Ns::ZERO, f, 60 * 4096, &mut out);
        assert!(done > w.done);
    }

    #[test]
    #[should_panic(expected = "read past EOF")]
    fn read_past_eof_panics() {
        let mut fs = fs();
        let f = fs.create("tiny", 1);
        let mut out = vec![0u8; 8192];
        fs.read_bytes(Ns::ZERO, f, 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "disk full")]
    fn disk_exhaustion_panics() {
        let mut fs = fs();
        fs.create("huge", 262_145);
    }
}
