//! Utility substrate for the compression-cache reproduction.
//!
//! This crate collects the small, dependency-free building blocks shared by
//! every other crate in the workspace:
//!
//! - [`time`] — the virtual-time representation ([`time::Ns`]) used by the
//!   whole simulator. All costs in the system are expressed as nanoseconds of
//!   virtual time so that runs are exactly reproducible.
//! - [`slab`] — a minimal slab allocator with stable integer keys.
//! - [`lru`] — an intrusive doubly-linked LRU list built on the slab, used by
//!   the VM resident list, the file buffer cache, and the compression cache.
//! - [`rng`] — a tiny deterministic SplitMix64 generator for seeded workload
//!   generation inside core crates (the heavyweight `rand` crate is only used
//!   by workload *generators*, never by the simulator itself).
//! - [`hist`] — log-bucketed histograms for latency and ratio statistics.
//! - [`crc`] — table-driven CRC-32 for self-verifying on-disk extents.
//! - [`plot`] — ASCII line charts and heatmaps used by the figure harnesses.
//! - [`fmt`] — human-friendly byte/time formatting.

#![warn(missing_docs)]

pub mod crc;
pub mod fmt;
pub mod hist;
pub mod lru;
pub mod plot;
pub mod rng;
pub mod slab;
pub mod time;

pub use crc::{crc32, Crc32};
pub use hist::Histogram;
pub use lru::{LruHandle, LruList};
pub use rng::SplitMix64;
pub use slab::Slab;
pub use time::Ns;
