//! A minimal slab allocator with stable `usize` keys.
//!
//! The VM page tables, frame descriptors, and LRU lists all need containers
//! whose elements keep a stable identity while other elements come and go.
//! `Vec` indices move under removal and `HashMap` costs hashing on the fault
//! fast path, so we use the classic slab: a vector of slots plus an
//! intrusive free list threaded through the vacant slots.

/// A slot-stable arena. Keys returned by [`Slab::insert`] remain valid until
/// the entry is removed; removed keys are recycled.
///
/// # Examples
///
/// ```
/// use cc_util::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab[a], "alpha");
/// assert_eq!(slab.remove(b), "beta");
/// let c = slab.insert("gamma"); // reuses b's slot
/// assert_eq!(c, b);
/// assert_eq!(slab.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<usize>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied(T),
    Vacant { next_free: Option<usize> },
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Create an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Create an empty slab with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its stable key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let next = match self.slots[idx] {
                    Slot::Vacant { next_free } => next_free,
                    Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next;
                self.slots[idx] = Slot::Occupied(value);
                idx
            }
            None => {
                self.slots.push(Slot::Occupied(value));
                self.slots.len() - 1
            }
        }
    }

    /// Remove and return the entry at `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not occupied.
    pub fn remove(&mut self, key: usize) -> T {
        let slot = std::mem::replace(
            &mut self.slots[key],
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        match slot {
            Slot::Occupied(v) => {
                self.free_head = Some(key);
                self.len -= 1;
                v
            }
            Slot::Vacant { next_free } => {
                // Undo the replacement to keep the free list intact.
                self.slots[key] = Slot::Vacant { next_free };
                panic!("slab: remove of vacant key {key}");
            }
        }
    }

    /// Shared access to the entry at `key`, if occupied.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.slots.get(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access to the entry at `key`, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.slots.get_mut(key) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether `key` refers to a live entry.
    pub fn contains(&self, key: usize) -> bool {
        matches!(self.slots.get(key), Some(Slot::Occupied(_)))
    }

    /// Iterate over `(key, &value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(v) => Some((i, v)),
            Slot::Vacant { .. } => None,
        })
    }

    /// Iterate over `(key, &mut value)` pairs in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Occupied(v) => Some((i, v)),
                Slot::Vacant { .. } => None,
            })
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = None;
        self.len = 0;
    }
}

impl<T> std::ops::Index<usize> for Slab<T> {
    type Output = T;
    fn index(&self, key: usize) -> &T {
        self.get(key).expect("slab: index of vacant key")
    }
}

impl<T> std::ops::IndexMut<usize> for Slab<T> {
    fn index_mut(&mut self, key: usize) -> &mut T {
        self.get_mut(key).expect("slab: index of vacant key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        assert!(s.is_empty());
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s[a], 10);
        assert_eq!(*s.get(b).unwrap(), 20);
        assert_eq!(s.remove(a), 10);
        assert!(!s.contains(a));
        assert!(s.contains(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keys_recycle_lifo() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO recycling: most recently freed slot first.
        assert_eq!(s.insert(3), b);
        assert_eq!(s.insert(4), a);
    }

    #[test]
    fn iteration_skips_vacant() {
        let mut s = Slab::new();
        let _a = s.insert("a");
        let b = s.insert("b");
        let _c = s.insert("c");
        s.remove(b);
        let items: Vec<_> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec!["a", "c"]);
        for (_, v) in s.iter_mut() {
            *v = "x";
        }
        assert!(s.iter().all(|(_, v)| *v == "x"));
    }

    #[test]
    #[should_panic(expected = "remove of vacant key")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.remove(a);
    }

    #[test]
    fn clear_resets() {
        let mut s = Slab::new();
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.insert(9), 0);
    }

    #[test]
    fn stress_interleaved() {
        let mut s = Slab::with_capacity(64);
        let mut keys = Vec::new();
        for round in 0..100 {
            for i in 0..10 {
                keys.push((s.insert(round * 10 + i), round * 10 + i));
            }
            // Remove every other key inserted this round.
            let start = keys.len() - 10;
            let mut i = start;
            while i < keys.len() {
                let (k, v) = keys[i];
                assert_eq!(s.remove(k), v);
                keys.remove(i);
                i += 1;
            }
        }
        for &(k, v) in &keys {
            assert_eq!(s[k], v);
        }
        assert_eq!(s.len(), keys.len());
    }
}
