//! Virtual time for the simulator.
//!
//! Every cost in the reproduction — a memory reference, an LZRW1 pass over a
//! page, a disk seek — is expressed in integer nanoseconds of *virtual* time.
//! Using an integer representation (rather than `f64` seconds) keeps the
//! simulation exactly deterministic and associative regardless of the order
//! in which costs are accumulated.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant of virtual time, in nanoseconds.
///
/// `Ns` is used both as a point on the simulation clock and as a span
/// between two points; the arithmetic provided is the common subset that is
/// meaningful for both.
///
/// # Examples
///
/// ```
/// use cc_util::Ns;
///
/// let seek = Ns::from_ms(15);
/// let rot = Ns::from_us(8300);
/// assert_eq!((seek + rot).as_us(), 23_300);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// The zero duration / simulation start.
    pub const ZERO: Ns = Ns(0);
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: Ns = Ns(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from a floating-point number of seconds (rounded to the
    /// nearest nanosecond; negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Ns {
        if s <= 0.0 {
            Ns::ZERO
        } else {
            Ns((s * 1e9).round() as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting only; never used for simulation math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Ns) -> Option<Ns> {
        self.0.checked_sub(rhs.0).map(Ns)
    }

    /// The later of two instants.
    pub fn max(self, rhs: Ns) -> Ns {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: Ns) -> Ns {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Time to move `bytes` at `bytes_per_sec` of bandwidth.
    ///
    /// This is the single conversion point between bandwidth-style machine
    /// parameters and virtual time, used for disk transfers, memcpy, and
    /// compression costs.
    ///
    /// # Examples
    ///
    /// ```
    /// use cc_util::Ns;
    /// // 4 KB at 2 MB/s is 2 ms.
    /// assert_eq!(Ns::for_transfer(4096, 2_000_000).as_us(), 2048);
    /// ```
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Ns {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // Split the computation to avoid overflow for large byte counts:
        // bytes * 1e9 can exceed u64 when bytes > ~18 GB, which workloads
        // do reach cumulatively. u128 keeps it exact.
        let ns = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        Ns(ns as u64)
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Ns::from_secs(1), Ns(1_000_000_000));
        assert_eq!(Ns::from_ms(1), Ns(1_000_000));
        assert_eq!(Ns::from_us(1), Ns(1_000));
        assert_eq!(Ns::from_secs_f64(0.5), Ns(500_000_000));
        assert_eq!(Ns::from_secs_f64(-1.0), Ns::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ns(100);
        let b = Ns(40);
        assert_eq!(a + b, Ns(140));
        assert_eq!(a - b, Ns(60));
        assert_eq!(a * 3, Ns(300));
        assert_eq!(a / 4, Ns(25));
        assert_eq!(b.saturating_sub(a), Ns::ZERO);
        assert_eq!(a.saturating_sub(b), Ns(60));
        assert_eq!(a.checked_sub(b), Some(Ns(60)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn transfer_times() {
        // 2 MB at 2 MB/s is one second.
        assert_eq!(Ns::for_transfer(2_000_000, 2_000_000), Ns::from_secs(1));
        // Zero bytes is free.
        assert_eq!(Ns::for_transfer(0, 1), Ns::ZERO);
        // Huge transfers must not overflow.
        let t = Ns::for_transfer(1 << 40, 100_000_000);
        assert!(t > Ns::from_secs(10_000));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = Ns::for_transfer(1, 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Ns(5)), "5ns");
        assert_eq!(format!("{}", Ns::from_us(2)), "2.000us");
        assert_eq!(format!("{}", Ns::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", Ns::from_secs(4)), "4.000s");
    }

    #[test]
    fn sum_iterates() {
        let total: Ns = [Ns(1), Ns(2), Ns(3)].into_iter().sum();
        assert_eq!(total, Ns(6));
    }
}
