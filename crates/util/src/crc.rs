//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! The spill file's self-verifying extent headers need a checksum that is
//! cheap, well-understood, and dependency-free. This is the classic
//! reflected table-driven CRC-32 with a 256-entry table built at compile
//! time; one table lookup plus one shift per input byte.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (full message; init `0xFFFF_FFFF`, final xor-out).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 over a message supplied in pieces.
///
/// The spill extent header checksums discontiguous regions (the header
/// prefix and then the payload, with the CRC field itself sitting between
/// them on disk), so the one-shot [`crc32`] is not enough: feed each region
/// with [`Crc32::update`] and read the digest with [`Crc32::finish`].
/// Feeding the same bytes in any split produces the same value as one
/// contiguous [`crc32`] call.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh digest (init `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Absorb the next region of the message.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final digest (applies the final xor-out; the hasher may keep
    /// absorbing afterwards — `finish` does not consume it).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn incremental_matches_one_shot_for_every_split() {
        let base: Vec<u8> = (0..129u32).map(|i| (i * 131 % 251) as u8).collect();
        let want = crc32(&base);
        for split in 0..=base.len() {
            let mut h = Crc32::new();
            h.update(&base[..split]);
            h.update(&base[split..]);
            assert_eq!(h.finish(), want, "split at {split}");
        }
        // Three-way split with an empty middle piece.
        let mut h = Crc32::new();
        h.update(&base[..40]);
        h.update(&[]);
        h.update(&base[40..]);
        assert_eq!(h.finish(), want);
    }

    #[test]
    fn any_single_bit_flip_changes_the_crc() {
        let base: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let want = crc32(&base);
        let mut flipped = base.clone();
        for byte in 0..base.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
        assert_eq!(flipped, base);
    }
}
