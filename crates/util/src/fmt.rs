//! Human-friendly formatting helpers for reports and harness output.

/// Format a byte count with a binary-unit suffix (`KiB`, `MiB`, ...).
///
/// # Examples
///
/// ```
/// assert_eq!(cc_util::fmt::bytes(4096), "4.0KiB");
/// assert_eq!(cc_util::fmt::bytes(12 * 1024 * 1024), "12.0MiB");
/// assert_eq!(cc_util::fmt::bytes(512), "512B");
/// ```
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if n < 1024 {
        return format!("{n}B");
    }
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1}{}", UNITS[unit])
}

/// Format a duration given in seconds as the paper's `minutes:seconds`
/// (Table 1 style).
///
/// # Examples
///
/// ```
/// assert_eq!(cc_util::fmt::min_sec(974.0), "16:14");
/// assert_eq!(cc_util::fmt::min_sec(59.6), "1:00");
/// ```
pub fn min_sec(secs: f64) -> String {
    let total = secs.round() as u64;
    format!("{}:{:02}", total / 60, total % 60)
}

/// Format a nanosecond count with an auto-scaled unit (`ns`, `us`, `ms`,
/// `s`), keeping three significant-ish digits.
///
/// # Examples
///
/// ```
/// assert_eq!(cc_util::fmt::ns(311), "311ns");
/// assert_eq!(cc_util::fmt::ns(3_797), "3.8us");
/// assert_eq!(cc_util::fmt::ns(12_400_000), "12.4ms");
/// assert_eq!(cc_util::fmt::ns(2_500_000_000), "2.50s");
/// ```
pub fn ns(n: u64) -> String {
    if n < 1_000 {
        format!("{n}ns")
    } else if n < 1_000_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else if n < 1_000_000_000 {
        format!("{:.1}ms", n as f64 / 1e6)
    } else {
        format!("{:.2}s", n as f64 / 1e9)
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Left-pad `s` to `width` columns.
pub fn pad_left(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{}{}", " ".repeat(width - s.len()), s)
    }
}

/// Right-pad `s` to `width` columns.
pub fn pad_right(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{}{}", s, " ".repeat(width - s.len()))
    }
}

/// Render a simple aligned table: `header` then `rows`, columns padded to
/// the widest cell. Intended for harness stdout, not for machine parsing.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&pad_right(cell, widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_units() {
        assert_eq!(bytes(0), "0B");
        assert_eq!(bytes(1023), "1023B");
        assert_eq!(bytes(1024), "1.0KiB");
        assert_eq!(bytes(1536), "1.5KiB");
        assert_eq!(bytes(1 << 30), "1.0GiB");
        assert!(bytes(u64::MAX).contains("TiB"));
    }

    #[test]
    fn min_sec_matches_paper_style() {
        // Table 1 lists compare as 16:14 (974 seconds).
        assert_eq!(min_sec(974.0), "16:14");
        assert_eq!(min_sec(0.0), "0:00");
        assert_eq!(min_sec(3599.9), "60:00");
    }

    #[test]
    fn ns_units() {
        assert_eq!(ns(0), "0ns");
        assert_eq!(ns(999), "999ns");
        assert_eq!(ns(1_000), "1.0us");
        assert_eq!(ns(999_949), "999.9us");
        assert_eq!(ns(52_000), "52.0us");
        assert_eq!(ns(1_500_000), "1.5ms");
        assert_eq!(ns(60_000_000_000), "60.00s");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn padding() {
        assert_eq!(pad_left("ab", 4), "  ab");
        assert_eq!(pad_right("ab", 4), "ab  ");
        assert_eq!(pad_left("abcde", 4), "abcde");
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }
}
