//! Intrusive LRU list with O(1) touch, insert, and eviction.
//!
//! Three independent consumers in the reproduced system keep LRU order over
//! their pages: the VM resident set, the file buffer cache, and the
//! compression cache's frame queue. Sprite approximated LRU with clock
//! hands; we keep exact LRU (the paper's analysis assumes LRU replacement,
//! §5.1) using a doubly-linked list threaded through a slab so that *every*
//! operation on the fault fast path is constant time.

use crate::slab::Slab;

/// Opaque handle to an entry in an [`LruList`].
///
/// Handles are invalidated by `remove`/`pop_lru`; using a stale handle is a
/// logic error that the list detects when it can (panicking) rather than
/// corrupting order silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LruHandle(usize);

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A doubly-linked least-recently-used list.
///
/// The *head* is the most recently used entry, the *tail* the least recently
/// used. [`LruList::touch`] moves an entry to the head in O(1).
///
/// # Examples
///
/// ```
/// use cc_util::LruList;
///
/// let mut lru = LruList::new();
/// let a = lru.push_mru("a");
/// let _b = lru.push_mru("b");
/// assert_eq!(*lru.peek_lru().unwrap().1, "a");
/// lru.touch(a); // "a" becomes most recent
/// assert_eq!(*lru.peek_lru().unwrap().1, "b");
/// ```
#[derive(Debug, Clone)]
pub struct LruList<T> {
    nodes: Slab<Node<T>>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
}

impl<T> Default for LruList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LruList<T> {
    /// Create an empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Slab::new(),
            head: None,
            tail: None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert `value` as the most recently used entry.
    pub fn push_mru(&mut self, value: T) -> LruHandle {
        let idx = self.nodes.insert(Node {
            value,
            prev: None,
            next: self.head,
        });
        if let Some(old_head) = self.head {
            self.nodes[old_head].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        LruHandle(idx)
    }

    /// Insert `value` as the *least* recently used entry.
    ///
    /// Used when reloading a page whose recency should not displace the
    /// working set (e.g. pages prefetched as part of a batched swap read).
    pub fn push_lru(&mut self, value: T) -> LruHandle {
        let idx = self.nodes.insert(Node {
            value,
            prev: self.tail,
            next: None,
        });
        if let Some(old_tail) = self.tail {
            self.nodes[old_tail].next = Some(idx);
        }
        self.tail = Some(idx);
        if self.head.is_none() {
            self.head = Some(idx);
        }
        LruHandle(idx)
    }

    /// Move an entry to the most-recently-used position.
    pub fn touch(&mut self, handle: LruHandle) {
        if self.head == Some(handle.0) {
            return;
        }
        self.unlink(handle.0);
        let node = &mut self.nodes[handle.0];
        node.prev = None;
        node.next = self.head;
        if let Some(old_head) = self.head {
            self.nodes[old_head].prev = Some(handle.0);
        }
        self.head = Some(handle.0);
        if self.tail.is_none() {
            self.tail = Some(handle.0);
        }
    }

    /// Remove and return the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<T> {
        let tail = self.tail?;
        self.unlink(tail);
        Some(self.nodes.remove(tail).value)
    }

    /// The least recently used entry, without removing it.
    pub fn peek_lru(&self) -> Option<(LruHandle, &T)> {
        self.tail.map(|t| (LruHandle(t), &self.nodes[t].value))
    }

    /// The most recently used entry, without removing it.
    pub fn peek_mru(&self) -> Option<(LruHandle, &T)> {
        self.head.map(|h| (LruHandle(h), &self.nodes[h].value))
    }

    /// Remove the entry behind `handle` and return its value.
    pub fn remove(&mut self, handle: LruHandle) -> T {
        self.unlink(handle.0);
        self.nodes.remove(handle.0).value
    }

    /// Shared access to the entry behind `handle`.
    pub fn get(&self, handle: LruHandle) -> Option<&T> {
        self.nodes.get(handle.0).map(|n| &n.value)
    }

    /// Exclusive access to the entry behind `handle`.
    pub fn get_mut(&mut self, handle: LruHandle) -> Option<&mut T> {
        self.nodes.get_mut(handle.0).map(|n| &mut n.value)
    }

    /// Whether `handle` refers to a live entry.
    pub fn contains(&self, handle: LruHandle) -> bool {
        self.nodes.contains(handle.0)
    }

    /// Iterate from most to least recently used.
    pub fn iter_mru(&self) -> IterMru<'_, T> {
        IterMru {
            list: self,
            next: self.head,
        }
    }

    /// Iterate from least to most recently used.
    pub fn iter_lru(&self) -> IterLru<'_, T> {
        IterLru {
            list: self,
            next: self.tail,
        }
    }

    /// Detach `idx` from its neighbors without freeing the node.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let node = &self.nodes[idx];
            (node.prev, node.next)
        };
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        let node = &mut self.nodes[idx];
        node.prev = None;
        node.next = None;
    }

    /// Verify the internal doubly-linked structure; used by property tests.
    ///
    /// Returns the number of entries reachable from the head. Panics if the
    /// forward and backward traversals disagree with each other or with
    /// `len()`.
    pub fn check_invariants(&self) -> usize {
        let mut forward = Vec::new();
        let mut cur = self.head;
        let mut prev: Option<usize> = None;
        while let Some(i) = cur {
            let node = &self.nodes[i];
            assert_eq!(node.prev, prev, "prev link broken at {i}");
            forward.push(i);
            prev = Some(i);
            cur = node.next;
            assert!(forward.len() <= self.nodes.len(), "cycle detected");
        }
        assert_eq!(self.tail, prev, "tail does not match last node");
        let mut backward = Vec::new();
        let mut cur = self.tail;
        while let Some(i) = cur {
            backward.push(i);
            cur = self.nodes[i].prev;
        }
        backward.reverse();
        assert_eq!(forward, backward, "forward/backward traversal mismatch");
        assert_eq!(forward.len(), self.nodes.len(), "unreachable nodes exist");
        forward.len()
    }
}

/// Iterator from most to least recently used. See [`LruList::iter_mru`].
pub struct IterMru<'a, T> {
    list: &'a LruList<T>,
    next: Option<usize>,
}

impl<'a, T> Iterator for IterMru<'a, T> {
    type Item = (LruHandle, &'a T);
    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.next?;
        let node = &self.list.nodes[idx];
        self.next = node.next;
        Some((LruHandle(idx), &node.value))
    }
}

/// Iterator from least to most recently used. See [`LruList::iter_lru`].
pub struct IterLru<'a, T> {
    list: &'a LruList<T>,
    next: Option<usize>,
}

impl<'a, T> Iterator for IterLru<'a, T> {
    type Item = (LruHandle, &'a T);
    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.next?;
        let node = &self.list.nodes[idx];
        self.next = node.prev;
        Some((LruHandle(idx), &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_fifo_without_touch() {
        let mut lru = LruList::new();
        for i in 0..5 {
            lru.push_mru(i);
        }
        for expected in 0..5 {
            assert_eq!(lru.pop_lru(), Some(expected));
        }
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_promotes() {
        let mut lru = LruList::new();
        let a = lru.push_mru('a');
        let _b = lru.push_mru('b');
        let _c = lru.push_mru('c');
        lru.touch(a);
        assert_eq!(lru.pop_lru(), Some('b'));
        assert_eq!(lru.pop_lru(), Some('c'));
        assert_eq!(lru.pop_lru(), Some('a'));
    }

    #[test]
    fn touch_head_is_noop() {
        let mut lru = LruList::new();
        let _a = lru.push_mru('a');
        let b = lru.push_mru('b');
        lru.touch(b);
        lru.check_invariants();
        assert_eq!(lru.pop_lru(), Some('a'));
    }

    #[test]
    fn remove_middle() {
        let mut lru = LruList::new();
        let _a = lru.push_mru(1);
        let b = lru.push_mru(2);
        let _c = lru.push_mru(3);
        assert_eq!(lru.remove(b), 2);
        lru.check_invariants();
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), Some(3));
    }

    #[test]
    fn push_lru_goes_to_tail() {
        let mut lru = LruList::new();
        lru.push_mru("warm");
        lru.push_lru("cold");
        assert_eq!(*lru.peek_lru().unwrap().1, "cold");
        assert_eq!(*lru.peek_mru().unwrap().1, "warm");
    }

    #[test]
    fn iterators_agree() {
        let mut lru = LruList::new();
        for i in 0..4 {
            lru.push_mru(i);
        }
        let mru: Vec<_> = lru.iter_mru().map(|(_, v)| *v).collect();
        let mut lru_order: Vec<_> = lru.iter_lru().map(|(_, v)| *v).collect();
        lru_order.reverse();
        assert_eq!(mru, vec![3, 2, 1, 0]);
        assert_eq!(mru, lru_order);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut lru = LruList::new();
        let a = lru.push_mru(42);
        lru.touch(a);
        lru.check_invariants();
        assert_eq!(lru.remove(a), 42);
        assert!(lru.is_empty());
        lru.check_invariants();
    }

    #[test]
    fn handles_stable_across_other_removals() {
        let mut lru = LruList::new();
        let a = lru.push_mru(1);
        let b = lru.push_mru(2);
        let c = lru.push_mru(3);
        lru.remove(b);
        assert_eq!(*lru.get(a).unwrap(), 1);
        assert_eq!(*lru.get(c).unwrap(), 3);
        *lru.get_mut(c).unwrap() = 33;
        assert_eq!(*lru.get(c).unwrap(), 33);
    }
}
