//! ASCII plotting for figure harnesses.
//!
//! The paper's figures are reproduced as data tables plus quick ASCII
//! renderings so the shape (crossovers, plateaus, regions) can be eyeballed
//! straight from the harness output without any plotting toolchain.

/// Render one or more line series as an ASCII chart.
///
/// All series share the x positions `xs`. The chart is `width x height`
/// characters; each series gets the glyph at the same index in `glyphs`
/// (cycled if there are more series than glyphs).
pub fn line_chart(
    title: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let mut out = format!("{title}\n");
    if xs.is_empty() || series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let xmax = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            if y.is_finite() {
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
    }
    if !ymin.is_finite() {
        out.push_str("(no finite data)\n");
        return out;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let xspan = if (xmax - xmin).abs() < f64::EPSILON {
        1.0
    } else {
        xmax - xmin
    };

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            if !y.is_finite() {
                continue;
            }
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let row = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>10.2} |")
        } else if i == height - 1 {
            format!("{ymin:>10.2} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}  {}\n", "", "-".repeat(width.min(width))));
    out.push_str(&format!(
        "{:>10}  {:<10.2}{:>width$.2}\n",
        "",
        xmin,
        xmax,
        width = width.saturating_sub(10)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{}={}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("  ")));
    out
}

/// Render a 2-D scalar field as an ASCII heatmap, binning values into the
/// glyph ramp. Used for the Figure 1 speedup surfaces: the paper shades
/// three regions (off-scale >6x, 1–6x speedup, slowdown); `thresholds`
/// selects glyph boundaries.
///
/// `grid[row][col]`; row 0 is printed at the top.
pub fn heatmap(title: &str, grid: &[Vec<f64>], thresholds: &[(f64, char)], below: char) -> String {
    let mut out = format!("{title}\n");
    for row in grid {
        for &v in row {
            let mut glyph = below;
            for &(t, g) in thresholds {
                if v >= t {
                    glyph = g;
                }
            }
            out.push(glyph);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_series_glyphs() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let s1 = ("up", vec![0.0, 1.0, 2.0, 3.0]);
        let s2 = ("down", vec![3.0, 2.0, 1.0, 0.0]);
        let chart = line_chart("test", &xs, &[s1, s2], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("*=up"));
        assert!(chart.contains("o=down"));
    }

    #[test]
    fn line_chart_handles_empty() {
        let chart = line_chart("empty", &[], &[], 40, 10);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn line_chart_flat_series() {
        let xs = vec![0.0, 1.0];
        let chart = line_chart("flat", &xs, &[("c", vec![5.0, 5.0])], 20, 5);
        assert!(chart.contains('*'));
    }

    #[test]
    fn heatmap_thresholds() {
        let grid = vec![vec![0.5, 1.5, 7.0]];
        let hm = heatmap("h", &grid, &[(1.0, '.'), (6.0, '#')], ' ');
        assert!(hm.contains(" .#"));
    }

    #[test]
    fn line_chart_ignores_nan() {
        let xs = vec![0.0, 1.0, 2.0];
        let chart = line_chart("nan", &xs, &[("s", vec![1.0, f64::NAN, 3.0])], 20, 5);
        assert!(chart.contains('*'));
    }
}
