//! Simple histograms for latency and ratio statistics.
//!
//! The evaluation harnesses report means, percentiles, and distributions of
//! page access times and per-page compression ratios. A power-of-two
//! bucketed histogram keeps memory constant while preserving enough
//! resolution (±50% per bucket, refined by a linear sub-bucket split) for
//! the figures in the paper.

/// A log2-bucketed histogram of `u64` samples with 8 linear sub-buckets per
/// power of two (HdrHistogram-style, fixed precision).
///
/// # Examples
///
/// ```
/// use cc_util::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 100);
/// assert!((h.mean() - 21.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// bucket index = 8*floor(log2(v)) + next 3 bits of v.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Number of buckets in the shared log2 + 8-linear-sub-buckets scheme.
///
/// Exposed so lock-free mirrors of [`Histogram`] (the telemetry crate's
/// atomic histogram) can allocate a fixed array using the exact same
/// bucket layout and convert back via [`Histogram::from_raw`].
pub const BUCKETS: usize = 64 * SUB + 1;

/// Bucket index of a sample in the shared scheme (see [`BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let log = 63 - v.leading_zeros();
    if log <= SUB_BITS {
        // Values < 16 get exact-ish small buckets at the front.
        return v as usize;
    }
    let sub = ((v >> (log - SUB_BITS)) & ((SUB as u64) - 1)) as usize;
    (log as usize) * SUB + sub
}

/// Representative (lower-bound) value of a bucket index in the shared
/// scheme — the inverse of [`bucket_index`] up to bucket resolution.
#[inline]
pub fn bucket_lower_bound(idx: usize) -> u64 {
    // Values below 2^(SUB_BITS + 1) get exact buckets in `bucket_index`
    // (index == value), so the floor is the index itself.
    if idx < (1 << (SUB_BITS + 1)) {
        return idx as u64;
    }
    let log = (idx / SUB) as u32;
    if log <= SUB_BITS {
        // Dead zone: indexes 16..32 are never produced (values below 16
        // map to exact buckets). Clamp to the boundary so the mapping
        // stays monotone for callers that sweep every index.
        return 1 << (SUB_BITS + 1);
    }
    let sub = (idx % SUB) as u64;
    (1u64 << log) | (sub << (log - SUB_BITS))
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }

    /// Representative (lower-bound) value of a bucket index.
    fn bucket_floor(idx: usize) -> u64 {
        bucket_lower_bound(idx)
    }

    /// Rebuild a histogram from raw parts captured elsewhere (e.g. a
    /// snapshot of an atomic bucket array using the same [`BUCKETS`]
    /// scheme). `buckets` shorter than [`BUCKETS`] is padded with zeros;
    /// longer is truncated.
    pub fn from_raw(buckets: &[u64], count: u64, sum: u128, min: u64, max: u64) -> Self {
        let mut b = vec![0u64; BUCKETS];
        for (dst, &src) in b.iter_mut().zip(buckets.iter()) {
            *dst = src;
        }
        Histogram {
            buckets: b,
            count,
            sum,
            min,
            max,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`; returns the lower bound of the
    /// bucket containing the q-th sample (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..=8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::SplitMix64::new(11);
        for _ in 0..10_000 {
            h.record(rng.gen_range(1_000_000));
        }
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        // Median of uniform [0, 1e6) should be in the right ballpark
        // (log buckets give ±12.5% resolution).
        let med = h.quantile(0.5) as f64;
        assert!((350_000.0..650_000.0).contains(&med), "median {med}");
    }

    #[test]
    fn record_n_equals_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(37, 10);
        for _ in 0..10 {
            b.record(37);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn from_raw_matches_recorded() {
        let mut h = Histogram::new();
        let mut raw = vec![0u64; BUCKETS];
        let mut rng = crate::rng::SplitMix64::new(3);
        let (mut count, mut sum, mut min, mut max) = (0u64, 0u128, u64::MAX, 0u64);
        for _ in 0..5000 {
            let v = rng.gen_range(1 << 20);
            h.record(v);
            raw[bucket_index(v)] += 1;
            count += 1;
            sum += v as u128;
            min = min.min(v);
            max = max.max(v);
        }
        let rebuilt = Histogram::from_raw(&raw, count, sum, min, max);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        for &q in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rebuilt.quantile(q), h.quantile(q), "q={q}");
        }
    }

    #[test]
    fn bucket_scheme_is_inverse_consistent() {
        for v in (0..64u32).map(|s| 1u64 << s).chain(0..256) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            let floor = bucket_lower_bound(idx);
            assert!(floor <= v, "floor({idx}) = {floor} > {v}");
            // The next bucket's floor must be above the value.
            if idx + 1 < BUCKETS {
                assert!(bucket_lower_bound(idx + 1) > v, "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn large_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= h.quantile(0.0));
    }
}
