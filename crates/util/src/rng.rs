//! Deterministic pseudo-random number generation.
//!
//! The simulator core must be reproducible bit-for-bit from a seed, so it
//! cannot depend on ambient entropy. SplitMix64 (Steele, Lea & Flood 2014)
//! is tiny, passes BigCrush when used as a 64-bit generator, and is more
//! than random enough for workload address streams and synthetic data.

/// SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use cc_util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire 2019: fast unbiased bounded integers.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derive an independent generator (useful for giving each workload
    /// phase its own stream while staying reproducible from one seed).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_zero_is_not_degenerate() {
        let mut r = SplitMix64::new(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.windows(2).all(|w| w[0] != w[1]));
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_hits_all_small_values() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = SplitMix64::new(5);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(0).gen_range(0);
    }
}
