//! Property tests of the foundational containers against reference models.
//!
//! The LRU list and slab underpin every cache in the system; a subtle
//! linking bug would surface as wrong eviction *order* — data would stay
//! intact while every performance result silently skewed. These tests pin
//! the exact semantics against straightforward model implementations.

use cc_util::{Histogram, LruHandle, LruList, Slab, SplitMix64};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
enum LruOp {
    Push(u32),
    PushCold(u32),
    Touch(usize),
    Remove(usize),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        any::<u32>().prop_map(LruOp::Push),
        any::<u32>().prop_map(LruOp::PushCold),
        (0usize..64).prop_map(LruOp::Touch),
        (0usize..64).prop_map(LruOp::Remove),
        Just(LruOp::PopLru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The LRU list behaves exactly like a VecDeque model (front = MRU).
    #[test]
    fn lru_matches_model(ops in proptest::collection::vec(lru_op(), 1..200)) {
        let mut lru: LruList<u32> = LruList::new();
        let mut handles: Vec<LruHandle> = Vec::new();
        // Model: deque of (handle index, value), front = most recent.
        let mut model: VecDeque<(usize, u32)> = VecDeque::new();

        for op in ops {
            match op {
                LruOp::Push(v) => {
                    let h = lru.push_mru(v);
                    handles.push(h);
                    model.push_front((handles.len() - 1, v));
                }
                LruOp::PushCold(v) => {
                    let h = lru.push_lru(v);
                    handles.push(h);
                    model.push_back((handles.len() - 1, v));
                }
                LruOp::Touch(i) => {
                    if let Some(pos) = model.iter().position(|&(hi, _)| hi == i) {
                        let item = model.remove(pos).unwrap();
                        model.push_front(item);
                        lru.touch(handles[i]);
                    }
                }
                LruOp::Remove(i) => {
                    if let Some(pos) = model.iter().position(|&(hi, _)| hi == i) {
                        let (_, v) = model.remove(pos).unwrap();
                        let got = lru.remove(handles[i]);
                        prop_assert_eq!(got, v);
                    }
                }
                LruOp::PopLru => {
                    let expect = model.pop_back().map(|(_, v)| v);
                    prop_assert_eq!(lru.pop_lru(), expect);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
            lru.check_invariants();
        }
        // Full eviction order must match.
        let mut order = Vec::new();
        while let Some(v) = lru.pop_lru() {
            order.push(v);
        }
        let expect: Vec<u32> = model.iter().rev().map(|&(_, v)| v).collect();
        prop_assert_eq!(order, expect);
    }

    /// The slab behaves like a HashMap keyed by its returned keys.
    #[test]
    fn slab_matches_model(ops in proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Some),   // insert value
            Just(None),                    // remove a random live key
        ],
        1..200,
    )) {
        let mut slab: Slab<u64> = Slab::new();
        let mut model: std::collections::HashMap<usize, u64> = Default::default();
        let mut rng = SplitMix64::new(1);
        for op in ops {
            match op {
                Some(v) => {
                    let k = slab.insert(v);
                    prop_assert!(!model.contains_key(&k), "slab reused a live key");
                    model.insert(k, v);
                }
                None => {
                    if model.is_empty() {
                        continue;
                    }
                    let keys: Vec<usize> = model.keys().copied().collect();
                    let k = keys[rng.gen_index(keys.len())];
                    let expect = model.remove(&k).unwrap();
                    prop_assert_eq!(slab.remove(k), expect);
                }
            }
            prop_assert_eq!(slab.len(), model.len());
            for (&k, &v) in &model {
                prop_assert_eq!(slab.get(k).copied(), Some(v));
            }
        }
    }

    /// Histogram totals are exact and quantiles stay within observed range.
    #[test]
    fn histogram_totals_exact(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().map(|&v| v as u128).sum::<u128>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let x = h.quantile(q);
            prop_assert!(x >= h.min() && x <= h.max());
        }
    }

    /// Merging two histograms equals recording everything into one.
    #[test]
    fn histogram_merge_equivalent(
        a in proptest::collection::vec(0u64..100_000, 0..100),
        b in proptest::collection::vec(0u64..100_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.sum(), hall.sum());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q), hall.quantile(q));
        }
    }
}
