//! Virtual-time backing-store device models.
//!
//! The paper pages to a DEC RZ57 SCSI disk on a DECstation 5000/200 and
//! argues (§3, §6) that the compression cache's value is set by the ratio
//! of compression speed to backing-store bandwidth — so the device model
//! must capture the first-order costs that ratio is built from:
//!
//! - **seeks**, proportional-ish to head travel distance (two seeks per
//!   fault is what makes the unmodified `std_rw` thrasher so slow);
//! - **rotational latency**, paid whenever the head moved;
//! - **transfer time**, linear in bytes;
//! - **queueing**: the device serves one request at a time. Writes are
//!   asynchronous (the paper's cleaner is a kernel thread that overlaps
//!   cleaning with computation); reads block the faulting process and queue
//!   behind any writes already issued.
//!
//! [`Disk::read`]/[`Disk::write`] advance a private `busy_until` timeline
//! and return the request's completion time; the caller (the simulator)
//! decides whether to wait on it. This gives correct overlap semantics
//! without a discrete-event core.
//!
//! Besides the RZ57, presets are provided for the mobile-computing devices
//! the paper's introduction motivates (a slow laptop drive, paging over
//! Ethernet, and a wireless link) so the benches can sweep the
//! compression-vs-I/O axis of Figure 1 with concrete hardware points.

#![warn(missing_docs)]

use cc_util::{Histogram, Ns};

/// Geometry and timing parameters of a backing-store device.
///
/// A "disk" with zero seek and rotation plus a fixed per-request overhead
/// models a network backing store.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Human-readable model name.
    pub name: &'static str,
    /// Device capacity in addressable blocks (see `block_bytes`).
    pub blocks: u64,
    /// Bytes per addressable block.
    pub block_bytes: u32,
    /// Sustained media transfer rate, bytes/second.
    pub transfer_bps: u64,
    /// Shortest (track-to-track) seek.
    pub seek_min: Ns,
    /// Average (1/3-stroke) seek, as quoted on data sheets.
    pub seek_avg: Ns,
    /// Full-stroke seek.
    pub seek_max: Ns,
    /// Spindle speed in revolutions per minute (0 = no rotation, e.g. a
    /// network link).
    pub rpm: u32,
    /// Fixed controller/protocol overhead charged on every request.
    pub per_request_overhead: Ns,
}

impl DiskParams {
    /// The DEC RZ57: the 1.0 GB 5.25" SCSI drive the paper measured
    /// against. ~14.5 ms average seek, 3600 RPM, ~2.2 MB/s sustained.
    pub fn rz57() -> Self {
        DiskParams {
            name: "RZ57",
            blocks: 262_144, // 1 GiB of 4 KiB blocks
            block_bytes: 4096,
            transfer_bps: 2_200_000,
            seek_min: Ns::from_ms(2),
            seek_avg: Ns::from_us(14_500),
            seek_max: Ns::from_ms(30),
            rpm: 3600,
            per_request_overhead: Ns::from_us(500),
        }
    }

    /// A small, slow mobile drive (the paper's target environment has
    /// "small, slower local disks").
    pub fn mobile_hdd() -> Self {
        DiskParams {
            name: "mobile-hdd",
            blocks: 65_536, // 256 MiB
            block_bytes: 4096,
            transfer_bps: 900_000,
            seek_min: Ns::from_ms(4),
            seek_avg: Ns::from_ms(20),
            seek_max: Ns::from_ms(40),
            rpm: 3000,
            per_request_overhead: Ns::from_ms(1),
        }
    }

    /// Paging over a 10 Mb/s Ethernet to a file server (§3 footnote 2).
    pub fn ethernet_10mbps() -> Self {
        DiskParams {
            name: "ethernet-10mbps",
            blocks: 1 << 20,
            block_bytes: 4096,
            transfer_bps: 1_100_000, // ~10 Mb/s with protocol efficiency
            seek_min: Ns::ZERO,
            seek_avg: Ns::ZERO,
            seek_max: Ns::ZERO,
            rpm: 0,
            per_request_overhead: Ns::from_ms(2), // RPC round-trip
        }
    }

    /// A slow wireless link, the motivating worst case for mobile paging.
    pub fn wireless_2mbps() -> Self {
        DiskParams {
            name: "wireless-2mbps",
            blocks: 1 << 20,
            block_bytes: 4096,
            transfer_bps: 230_000, // ~2 Mb/s radio, ~92% efficiency
            seek_min: Ns::ZERO,
            seek_avg: Ns::ZERO,
            seek_max: Ns::ZERO,
            rpm: 0,
            per_request_overhead: Ns::from_ms(5),
        }
    }

    /// One full spindle rotation.
    pub fn rotation_time(&self) -> Ns {
        if self.rpm == 0 {
            Ns::ZERO
        } else {
            Ns(60_000_000_000 / self.rpm as u64)
        }
    }

    /// Raw transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Ns {
        Ns::for_transfer(bytes, self.transfer_bps)
    }

    /// Seek time for a head movement of `distance` blocks.
    ///
    /// Uses the standard square-root-of-distance model anchored so a full
    /// stroke costs `seek_max`. A zero-distance move is free.
    pub fn seek_time(&self, distance: u64) -> Ns {
        if distance == 0 || self.seek_avg == Ns::ZERO {
            return Ns::ZERO;
        }
        let frac = (distance as f64 / self.blocks as f64).min(1.0);
        // sqrt model: t(frac) = min + (max - min) * sqrt(frac).
        let min = self.seek_min.as_ns() as f64;
        let max = self.seek_max.as_ns() as f64;
        Ns((min + (max - min) * frac.sqrt()) as u64)
    }
}

/// Counters describing everything a [`Disk`] did.
#[derive(Debug, Clone, Default)]
pub struct DiskStats {
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Requests that required a head movement.
    pub seeks: u64,
    /// Total time spent seeking.
    pub seek_time: Ns,
    /// Total rotational latency.
    pub rot_time: Ns,
    /// Total media transfer time.
    pub transfer_time: Ns,
    /// Total time the device was busy (includes per-request overhead).
    pub busy_time: Ns,
    /// Distribution of per-request service times (ns).
    pub service_hist: Histogram,
}

impl DiskStats {
    /// Total requests of both kinds.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved in either direction.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// A single simulated device with a FIFO service timeline.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    /// Block the head is positioned after, i.e. the next sequential block.
    head: u64,
    /// Time at which the device finishes its last accepted request.
    busy_until: Ns,
    stats: DiskStats,
}

/// Timing of an accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the device starts servicing the request.
    pub start: Ns,
    /// When the data is fully transferred.
    pub done: Ns,
}

impl Disk {
    /// Create a device from parameters, head parked at block 0.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            head: 0,
            busy_until: Ns::ZERO,
            stats: DiskStats::default(),
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// When the device will next be idle.
    pub fn busy_until(&self) -> Ns {
        self.busy_until
    }

    /// Submit a read of `nblocks` starting at `block`; returns start and
    /// completion times. The caller must advance its clock to `done` before
    /// using the data (reads block the faulting process).
    ///
    /// # Panics
    ///
    /// Panics if the request is empty or runs off the end of the device.
    pub fn read(&mut self, now: Ns, block: u64, nblocks: u32) -> Completion {
        let c = self.service(now, block, nblocks);
        self.stats.reads += 1;
        self.stats.bytes_read += nblocks as u64 * self.params.block_bytes as u64;
        c
    }

    /// Submit a write of `nblocks` starting at `block`; returns start and
    /// completion times. The caller normally does *not* wait (dirty-page
    /// cleaning overlaps computation), but any subsequent request queues
    /// behind it.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty or runs off the end of the device.
    pub fn write(&mut self, now: Ns, block: u64, nblocks: u32) -> Completion {
        let c = self.service(now, block, nblocks);
        self.stats.writes += 1;
        self.stats.bytes_written += nblocks as u64 * self.params.block_bytes as u64;
        c
    }

    fn service(&mut self, now: Ns, block: u64, nblocks: u32) -> Completion {
        assert!(nblocks > 0, "zero-length disk request");
        assert!(
            block + nblocks as u64 <= self.params.blocks,
            "request [{block}, +{nblocks}) beyond device end {}",
            self.params.blocks
        );
        let start = now.max(self.busy_until);
        let distance = block.abs_diff(self.head);
        let seek = self.params.seek_time(distance);
        // Rotational latency: half a rotation on average whenever the head
        // moved; sequential continuation pays nothing.
        let rot = if distance == 0 {
            Ns::ZERO
        } else {
            self.params.rotation_time() / 2
        };
        let transfer = self
            .params
            .transfer_time(nblocks as u64 * self.params.block_bytes as u64);
        let service = self.params.per_request_overhead + seek + rot + transfer;
        let done = start + service;

        if distance > 0 {
            self.stats.seeks += 1;
            self.stats.seek_time += seek;
            self.stats.rot_time += rot;
        }
        self.stats.transfer_time += transfer;
        self.stats.busy_time += service;
        self.stats.service_hist.record(service.as_ns());

        self.head = block + nblocks as u64;
        self.busy_until = done;
        Completion { start, done }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::rz57())
    }

    #[test]
    fn sequential_reads_skip_seek_and_rotation() {
        let mut d = disk();
        let c1 = d.read(Ns::ZERO, 0, 1);
        let c2 = d.read(c1.done, 1, 1);
        // Second request is sequential: service time is overhead + transfer.
        let expected = d.params().per_request_overhead + d.params().transfer_time(4096);
        assert_eq!(c2.done - c2.start, expected);
        assert_eq!(d.stats().seeks, 0, "head starts at 0; no movement needed");
    }

    #[test]
    fn random_read_pays_seek_and_rotation() {
        let mut d = disk();
        let c = d.read(Ns::ZERO, 100_000, 1);
        let service = c.done - c.start;
        assert!(service > d.params().seek_min + d.params().rotation_time() / 2);
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn seek_time_is_monotone_in_distance() {
        let p = DiskParams::rz57();
        let mut last = Ns::ZERO;
        for d in [0u64, 1, 10, 1000, 100_000, 262_143] {
            let t = p.seek_time(d);
            assert!(t >= last, "seek not monotone at distance {d}");
            last = t;
        }
        assert_eq!(p.seek_time(0), Ns::ZERO);
        // Full stroke should be near seek_max.
        let full = p.seek_time(p.blocks);
        assert!(full >= p.seek_max - Ns::from_ms(1));
    }

    #[test]
    fn writes_do_not_block_but_do_queue() {
        let mut d = disk();
        let w = d.write(Ns::ZERO, 50_000, 8);
        assert!(w.done > Ns::ZERO);
        // A read issued at time zero queues behind the write.
        let r = d.read(Ns::ZERO, 50_008, 1);
        assert_eq!(r.start, w.done);
        assert!(r.done > w.done);
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut d = disk();
        let w = d.write(Ns::ZERO, 0, 1);
        let later = w.done + Ns::from_secs(1);
        let r = d.read(later, 1, 1);
        assert_eq!(r.start, later, "idle disk must start immediately");
    }

    #[test]
    fn batched_transfer_beats_per_block_requests() {
        // One 8-block transfer vs eight 1-block transfers at scattered
        // locations: batching must win by a wide margin (the §4.3 argument
        // for writing 32 KB of fragments at once).
        let mut batched = disk();
        let b = batched.read(Ns::ZERO, 10_000, 8);

        let mut scattered = disk();
        let mut t = Ns::ZERO;
        for i in 0..8u64 {
            let c = scattered.read(t, 10_000 + i * 5000, 1);
            t = c.done;
        }
        assert!(
            (b.done - b.start) * 3 < t,
            "batched {} vs scattered {}",
            b.done - b.start,
            t
        );
    }

    #[test]
    fn network_presets_have_no_seek() {
        for p in [DiskParams::ethernet_10mbps(), DiskParams::wireless_2mbps()] {
            assert_eq!(p.seek_time(100_000), Ns::ZERO, "{}", p.name);
            assert_eq!(p.rotation_time(), Ns::ZERO, "{}", p.name);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        d.read(Ns::ZERO, 0, 4);
        d.write(Ns::from_secs(1), 99_000, 8);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 4 * 4096);
        assert_eq!(s.bytes_written, 8 * 4096);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.bytes(), 12 * 4096);
        assert_eq!(s.service_hist.count(), 2);
        assert!(s.busy_time > Ns::ZERO);
    }

    #[test]
    #[should_panic(expected = "beyond device end")]
    fn out_of_range_request_panics() {
        disk().read(Ns::ZERO, 262_144, 1);
    }

    #[test]
    fn rz57_random_4k_io_is_on_the_order_of_20ms() {
        // Sanity-anchor the model against the paper's regime: a random
        // 4 KB I/O on the RZ57 should cost roughly 15-30 ms, which is what
        // makes std_rw thrashing cost ~50-75 ms per fault (two I/Os).
        let mut d = disk();
        let c = d.read(Ns::ZERO, 131_072, 1); // half-stroke away
        let ms = (c.done - c.start).as_ms_f64();
        assert!((10.0..35.0).contains(&ms), "random 4K IO took {ms}ms");
    }
}
