//! Property tests of the disk timeline model.

use cc_disk::{Disk, DiskParams};
use cc_util::Ns;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Req {
    read: bool,
    block: u64,
    nblocks: u8,
    gap_us: u32,
}

fn req(max_block: u64) -> impl Strategy<Value = Req> {
    (any::<bool>(), 0..max_block, 1u8..16, 0u32..50_000).prop_map(
        |(read, block, nblocks, gap_us)| Req {
            read,
            block,
            nblocks,
            gap_us,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The device timeline is consistent: requests never overlap, never
    /// start before submission, completions are monotone, and the stats
    /// balance with the request stream.
    #[test]
    fn timeline_is_consistent(reqs in proptest::collection::vec(req(262_000), 1..100)) {
        let params = DiskParams::rz57();
        let mut disk = Disk::new(params.clone());
        let mut now = Ns::ZERO;
        let mut last_done = Ns::ZERO;
        let mut bytes = 0u64;
        for r in &reqs {
            now += Ns::from_us(r.gap_us as u64);
            let nb = r.nblocks.clamp(1, 8) as u32;
            let block = r.block.min(params.blocks - nb as u64);
            let c = if r.read {
                disk.read(now, block, nb)
            } else {
                disk.write(now, block, nb)
            };
            prop_assert!(c.start >= now, "started before submission");
            prop_assert!(c.start >= last_done, "overlapping service");
            prop_assert!(c.done > c.start, "zero-time service");
            // Service time is at least the raw transfer time.
            let min_service = params.transfer_time(nb as u64 * params.block_bytes as u64)
                + params.per_request_overhead;
            prop_assert!(c.done - c.start >= min_service);
            last_done = c.done;
            bytes += nb as u64 * params.block_bytes as u64;
        }
        let s = disk.stats();
        prop_assert_eq!(s.requests(), reqs.len() as u64);
        prop_assert_eq!(s.bytes(), bytes);
        prop_assert!(s.seeks <= s.requests());
        prop_assert_eq!(disk.busy_until(), last_done);
    }

    /// Sequential streams never seek after the first positioning request.
    #[test]
    fn sequential_stream_has_at_most_one_seek(start in 0u64..100_000, n in 1u32..60) {
        let mut disk = Disk::new(DiskParams::rz57());
        let mut now = Ns::ZERO;
        for i in 0..n as u64 {
            let c = disk.read(now, start + i, 1);
            now = c.done;
        }
        prop_assert!(disk.stats().seeks <= 1, "seeks: {}", disk.stats().seeks);
    }
}
