//! End-to-end integrity tests of the compression cache mechanism.
//!
//! These drive the cache exactly as the simulator will — evictions and
//! faults with real page bytes over an in-memory backing store — and
//! verify that every page comes back bit-identical regardless of the path
//! it took (cache hit, clean drop to swap, cleaner write-back, swap GC,
//! threshold rejection). A single byte lost anywhere in the circular
//! buffer, fragment packing, or GC relocation fails these tests.

use cc_compress::Lzrw1;
use cc_core::{
    cache::CpuCosts, CacheConfig, CleanEvictOutcome, CompressionCache, FaultOutcome, InsertOutcome,
    MemBacking, PageKey,
};
use cc_mem::FramePool;
use cc_util::{Ns, SplitMix64};

const PAGE: usize = 4096;

fn key(n: u32) -> PageKey {
    PageKey { seg: 0, page: n }
}

fn new_cache(max_slots: usize, swap_clusters: u64) -> (CompressionCache, FramePool, MemBacking) {
    let cfg = CacheConfig::paper(max_slots);
    let cache = CompressionCache::new(
        cfg,
        Box::new(Lzrw1::new()),
        CpuCosts::decstation_5000_200(),
        swap_clusters * 32 * 1024,
    );
    let pool = FramePool::new(max_slots + 8, PAGE);
    let backing = MemBacking::fast((swap_clusters * 32 * 1024) as usize);
    (cache, pool, backing)
}

/// A compressible page whose contents are a function of `n`.
fn page_compressible(n: u32) -> Vec<u8> {
    let mut p = vec![0u8; PAGE];
    let word = format!("page-{n:08}-content ");
    let bytes = word.as_bytes();
    for (i, b) in p.iter_mut().enumerate() {
        *b = bytes[i % bytes.len()];
    }
    p
}

/// An incompressible page (seeded noise).
fn page_random(n: u32) -> Vec<u8> {
    let mut rng = SplitMix64::new(n as u64 + 0x1234);
    (0..PAGE).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn insert_then_fault_roundtrips_in_memory() {
    let (mut cache, mut pool, mut backing) = new_cache(16, 8);
    let mut clock = Ns::ZERO;
    let page = page_compressible(1);
    let outcome = cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(1), &page, true);
    assert!(
        matches!(outcome, InsertOutcome::Stored { .. }),
        "{outcome:?}"
    );
    assert!(clock > Ns::ZERO, "compression must cost time");
    assert_eq!(cache.live_entries(), 1);

    let mut out = vec![0u8; PAGE];
    let f = cache.fault(&mut pool, &mut backing, &mut clock, key(1), &mut out, true);
    assert!(matches!(f, FaultOutcome::FromCache { .. }), "{f:?}");
    assert_eq!(out, page);
    assert_eq!(backing.reads, 0, "cache hit must not touch backing store");
    cache.check_invariants();
}

#[test]
fn rejected_page_goes_raw_to_swap_and_comes_back() {
    let (mut cache, mut pool, mut backing) = new_cache(16, 8);
    let mut clock = Ns::ZERO;
    let page = page_random(7);
    let outcome = cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(7), &page, true);
    assert!(
        matches!(outcome, InsertOutcome::Rejected { .. }),
        "{outcome:?}"
    );
    assert_eq!(cache.live_entries(), 0, "rejected pages are not cached");
    assert_eq!(cache.stats().compress_rejected, 1);

    let mut out = vec![0u8; PAGE];
    let f = cache.fault(&mut pool, &mut backing, &mut clock, key(7), &mut out, true);
    assert!(matches!(f, FaultOutcome::FromSwapRaw { .. }), "{f:?}");
    assert_eq!(out, page);
    cache.check_invariants();
}

#[test]
fn cleaner_writes_then_drop_moves_home_to_swap() {
    let (mut cache, mut pool, mut backing) = new_cache(64, 8);
    let mut clock = Ns::ZERO;
    let pages: Vec<Vec<u8>> = (0..10).map(page_compressible).collect();
    for (i, p) in pages.iter().enumerate() {
        cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(i as u32), p, true);
    }
    assert!(cache.dirty_bytes() > 0);
    let cleaned = cache.clean_batch(&mut pool, &mut backing, &mut clock);
    assert!(cleaned > 0, "cleaner must write something");
    assert!(backing.writes > 0);

    // Shrink the cache to nothing; clean entries drop to swap.
    let mut released = 0;
    while cache
        .release_frame(&mut pool, &mut backing, &mut clock)
        .is_some()
    {
        released += 1;
    }
    assert!(released > 0);
    assert_eq!(cache.mapped_frames(), 0, "fully shrunk");
    let moved = cache.take_moved_to_swap();
    assert!(!moved.is_empty(), "dropped clean pages must be reported");

    // Every page still reads back correctly (from swap now — possibly via
    // a readahead install that makes later faults cache hits).
    let mut from_swap = 0;
    for (i, p) in pages.iter().enumerate() {
        let mut out = vec![0u8; PAGE];
        let f = cache.fault(
            &mut pool,
            &mut backing,
            &mut clock,
            key(i as u32),
            &mut out,
            true,
        );
        match f {
            FaultOutcome::FromSwapCompressed { .. } => from_swap += 1,
            FaultOutcome::FromCache { .. } => {}
            other => panic!("page {i}: {other:?}"),
        }
        assert_eq!(&out, p, "page {i} corrupted through swap");
        // Release the shadow so later wrap pressure can reuse space.
        assert_ne!(
            cache.evict_clean(key(i as u32)),
            CleanEvictOutcome::NeedStore
        );
    }
    assert!(from_swap > 0, "at least the first fault must hit the disk");
    cache.check_invariants();
}

#[test]
fn clean_eviction_of_unmodified_page_is_free() {
    let (mut cache, mut pool, mut backing) = new_cache(16, 8);
    let mut clock = Ns::ZERO;
    let page = page_compressible(3);
    cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(3), &page, true);

    // Fault it back (shadow), then evict clean: no work.
    let mut out = vec![0u8; PAGE];
    cache.fault(&mut pool, &mut backing, &mut clock, key(3), &mut out, true);
    let before = clock;
    let attempts_before = cache.stats().compress_attempts;
    let outcome = cache.evict_clean(key(3));
    assert_eq!(outcome, CleanEvictOutcome::ToCompressed);
    assert_eq!(clock, before, "clean eviction costs nothing");
    assert_eq!(cache.stats().compress_attempts, attempts_before);

    // And it still faults correctly afterwards.
    let mut out2 = vec![0u8; PAGE];
    let f = cache.fault(&mut pool, &mut backing, &mut clock, key(3), &mut out2, true);
    assert!(matches!(f, FaultOutcome::FromCache { .. }));
    assert_eq!(out2, page);
}

#[test]
fn dirty_reinsert_supersedes_and_old_copy_never_returns() {
    let (mut cache, mut pool, mut backing) = new_cache(32, 8);
    let mut clock = Ns::ZERO;
    let old = page_compressible(5);
    cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(5), &old, true);
    // Push it to swap.
    cache.clean_batch(&mut pool, &mut backing, &mut clock);

    // Fault back, "modify" (the caller would), and reinsert new contents.
    let mut out = vec![0u8; PAGE];
    cache.fault(&mut pool, &mut backing, &mut clock, key(5), &mut out, true);
    let mut newp = old.clone();
    newp[100..110].copy_from_slice(b"MODIFIED!!");
    cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(5), &newp, true);

    let mut out2 = vec![0u8; PAGE];
    cache.fault(&mut pool, &mut backing, &mut clock, key(5), &mut out2, true);
    assert_eq!(out2, newp, "stale copy resurfaced");
    cache.check_invariants();
}

#[test]
fn buffer_mode_when_no_memory_granted() {
    // may_grow = false and an empty pool: the cache must still preserve
    // data by writing compressed pages straight to the backing store.
    let (mut cache, _unused_pool, mut backing) = new_cache(4, 8);
    let mut pool = FramePool::new(1, PAGE); // effectively no spare memory
    let only = pool.alloc(cc_mem::FrameOwner::Vm { tag: 0 }).unwrap(); // consume it
    let _ = only;
    let mut clock = Ns::ZERO;

    let page = page_compressible(9);
    let outcome = cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(9), &page, false);
    assert!(
        matches!(outcome, InsertOutcome::StoredToSwap { .. }),
        "{outcome:?}"
    );
    assert_eq!(cache.mapped_frames(), 0);

    let mut out = vec![0u8; PAGE];
    let f = cache.fault(&mut pool, &mut backing, &mut clock, key(9), &mut out, false);
    assert!(
        matches!(f, FaultOutcome::FromSwapCompressed { cached: false, .. }),
        "{f:?}"
    );
    assert_eq!(out, page);
}

#[test]
fn wraparound_reuses_space_without_corruption() {
    // A 4-slot cache cycled through 200 pages: the circular buffer wraps
    // dozens of times; every page must survive via the cleaner + swap.
    let (mut cache, mut pool, mut backing) = new_cache(4, 64);
    let mut clock = Ns::ZERO;
    let n = 200u32;
    for i in 0..n {
        let page = page_compressible(i);
        let o = cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(i), &page, true);
        assert!(
            matches!(
                o,
                InsertOutcome::Stored { .. } | InsertOutcome::StoredToSwap { .. }
            ),
            "page {i}: {o:?}"
        );
    }
    cache.check_invariants();
    assert!(cache.mapped_frames() <= 4);
    let _ = cache.take_moved_to_swap();
    for i in 0..n {
        let mut out = vec![0u8; PAGE];
        let f = cache.fault(&mut pool, &mut backing, &mut clock, key(i), &mut out, true);
        assert!(!matches!(f, FaultOutcome::Miss), "page {i} lost: {f:?}");
        assert_eq!(out, page_compressible(i), "page {i} corrupted");
    }
    assert!(cache.stats().write_stall >= Ns::ZERO);
    cache.check_invariants();
}

#[test]
fn swap_gc_relocates_live_pages_intact() {
    // A tiny swap area (3 clusters = 96 fragments) with a mix of pinned
    // (never rewritten) and churning pages. The pinned pages end up
    // scattered across clusters, so supersede traffic alone cannot recycle
    // whole clusters and the log cleaner must relocate live data.
    let (mut cache, mut pool, mut backing) = new_cache(4, 3);
    let mut clock = Ns::ZERO;
    let churn: Vec<u32> = (0..5).collect();
    let mut pins: Vec<u32> = Vec::new();
    let mut round = 0u32;
    while cache.stats().gc_runs == 0 && round < 100 {
        for &i in &churn {
            let mut page = page_compressible(i);
            page[0] = round as u8;
            cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(i), &page, true);
            cache.clean_batch(&mut pool, &mut backing, &mut clock);
        }
        // Periodically pin a fresh page (written once, never superseded),
        // up to 12 pins = 12 live fragments spread over time.
        if round.is_multiple_of(3) && pins.len() < 12 {
            let p = 1000 + round;
            cache.insert_evicted(
                &mut pool,
                &mut backing,
                &mut clock,
                key(p),
                &page_compressible(p),
                true,
            );
            cache.clean_batch(&mut pool, &mut backing, &mut clock);
            pins.push(p);
        }
        round += 1;
    }
    assert!(
        cache.stats().gc_runs > 0,
        "GC never ran after {round} rounds"
    );
    let _ = cache.take_moved_to_swap();
    // Every pinned page survived relocation; every churn page has its
    // final contents.
    for &p in &pins {
        let mut out = vec![0u8; PAGE];
        let f = cache.fault(&mut pool, &mut backing, &mut clock, key(p), &mut out, true);
        assert!(!matches!(f, FaultOutcome::Miss), "pin {p} lost");
        assert_eq!(out, page_compressible(p), "pin {p} corrupted by GC");
        assert_ne!(cache.evict_clean(key(p)), CleanEvictOutcome::NeedStore);
    }
    for &i in &churn {
        let mut out = vec![0u8; PAGE];
        let f = cache.fault(&mut pool, &mut backing, &mut clock, key(i), &mut out, true);
        assert!(!matches!(f, FaultOutcome::Miss), "page {i} lost");
        let mut expect = page_compressible(i);
        expect[0] = (round - 1) as u8;
        assert_eq!(out, expect, "page {i} corrupted by GC");
        assert_ne!(cache.evict_clean(key(i)), CleanEvictOutcome::NeedStore);
    }
    cache.check_invariants();
}

#[test]
fn readahead_installs_neighbors_without_io() {
    let (mut cache, mut pool, mut backing) = new_cache(32, 8);
    let mut clock = Ns::ZERO;
    // Insert several small pages; clean them in one batch so they share
    // file blocks; then drop everything from memory.
    for i in 0..8u32 {
        cache.insert_evicted(
            &mut pool,
            &mut backing,
            &mut clock,
            key(i),
            &page_compressible(i),
            true,
        );
    }
    cache.clean_batch(&mut pool, &mut backing, &mut clock);
    while cache
        .release_frame(&mut pool, &mut backing, &mut clock)
        .is_some()
    {}
    let _ = cache.take_moved_to_swap();

    let reads_before = backing.reads;
    let mut out = vec![0u8; PAGE];
    cache.fault(&mut pool, &mut backing, &mut clock, key(0), &mut out, true);
    let installs = cache.stats().readahead_installs;
    assert!(
        installs > 0,
        "block-rounded read should install neighbors: {:?}",
        cache.stats()
    );
    // The neighbor now faults from cache with no further backing reads.
    let neighbor = (1..8)
        .find(|&i| {
            // Probe via a fault and inspect the outcome.
            let mut o = vec![0u8; PAGE];
            let f = cache.fault(&mut pool, &mut backing, &mut clock, key(i), &mut o, true);
            if matches!(f, FaultOutcome::FromCache { .. }) {
                assert_eq!(o, page_compressible(i));
                true
            } else {
                false
            }
        })
        .is_some();
    assert!(neighbor, "no neighbor was served from cache");
    assert!(backing.reads > reads_before);
}

#[test]
fn model_checked_random_workout() {
    // Randomized sequence of insert/fault/clean/release/evict-clean
    // against a mirror model of page contents. This is the cache's
    // strongest integrity test: any divergence between the model and the
    // cache's answers is corruption.
    let mut rng = SplitMix64::new(0xC0FFEE);
    let (mut cache, mut pool, mut backing) = new_cache(8, 32);
    let mut clock = Ns::ZERO;
    let npages = 40u32;
    let mut model: Vec<Option<Vec<u8>>> = vec![None; npages as usize];
    // Pages the cache is responsible for (not "resident" in this abstract
    // driver): everything inserted and not currently faulted-in-and-dirty.
    for step in 0..3000 {
        let i = rng.gen_range(npages as u64) as u32;
        match rng.gen_range(100) {
            0..=49 => {
                // Evict a page to the cache with fresh contents.
                let mut page = if rng.gen_bool(0.15) {
                    page_random(i + step as u32)
                } else {
                    page_compressible(i)
                };
                page[8] = step as u8;
                page[9] = (step >> 8) as u8;
                cache.insert_evicted(&mut pool, &mut backing, &mut clock, key(i), &page, true);
                model[i as usize] = Some(page);
            }
            50..=84 => {
                // Fault.
                let mut out = vec![0u8; PAGE];
                let f = cache.fault(&mut pool, &mut backing, &mut clock, key(i), &mut out, true);
                match &model[i as usize] {
                    Some(expect) => {
                        assert!(
                            !matches!(f, FaultOutcome::Miss),
                            "step {step}: lost page {i}"
                        );
                        assert_eq!(&out, expect, "step {step}: page {i} corrupted");
                        // Half the time, declare it evicted-clean again.
                        if rng.gen_bool(0.5) {
                            let o = cache.evict_clean(key(i));
                            assert_ne!(
                                o,
                                CleanEvictOutcome::NeedStore,
                                "step {step}: clean evict lost track of page {i}"
                            );
                        } else {
                            // Re-insert as dirty with same contents.
                            let page = model[i as usize].clone().unwrap();
                            cache.insert_evicted(
                                &mut pool,
                                &mut backing,
                                &mut clock,
                                key(i),
                                &page,
                                true,
                            );
                        }
                    }
                    None => {
                        assert!(
                            matches!(f, FaultOutcome::Miss),
                            "step {step}: phantom page {i}"
                        );
                    }
                }
            }
            85..=92 => {
                cache.clean_batch(&mut pool, &mut backing, &mut clock);
            }
            93..=97 => {
                cache.release_frame(&mut pool, &mut backing, &mut clock);
            }
            _ => {
                cache.drop_page(key(i));
                model[i as usize] = None;
            }
        }
        let _ = cache.take_moved_to_swap();
        if step % 500 == 0 {
            cache.check_invariants();
        }
    }
    cache.check_invariants();
    // Final sweep: every modeled page must read back exactly.
    for i in 0..npages {
        if let Some(expect) = &model[i as usize] {
            let mut out = vec![0u8; PAGE];
            let f = cache.fault(&mut pool, &mut backing, &mut clock, key(i), &mut out, true);
            assert!(!matches!(f, FaultOutcome::Miss), "final: lost page {i}");
            assert_eq!(&out, expect, "final: page {i} corrupted");
        }
    }
}
