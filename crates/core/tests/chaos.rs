//! Chaos tests: the store against a lying spill medium.
//!
//! The contract under fault injection is strict and small:
//!
//! 1. **Never garbage.** Any `get` that returns data returns exactly the
//!    bytes that were put. Corruption surfaces as `StoreError::Corrupt`
//!    (and the entry is dropped so later gets miss) — never as a page.
//! 2. **Budget holds.** `resident_bytes` settles at or below the
//!    configured budget even when failed batches bounce entries back to
//!    memory (the store sheds clean pages to repair the overshoot).
//! 3. **Degraded mode is entered and exited on schedule.** Consecutive
//!    hard batch failures disable spilling; probation probes re-enable
//!    it once the medium answers again.
//! 4. **Nothing hangs.** A dead writer (even one that panicked inside
//!    the medium) turns `flush()` into `Err(ShuttingDown)`, not a wait
//!    for completions that will never come.

use cc_core::medium::{Fault, FaultInjector, FaultPlan, FileMedium, SpillMedium};
use cc_core::store::{CompressedStore, StoreConfig, StoreError};
use cc_util::SplitMix64;
use proptest::prelude::*;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE: usize = 1024;

fn temp_path(tag: &str, salt: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cc-chaos-{tag}-{}-{salt:x}.bin",
        std::process::id()
    ))
}

/// Deterministic page content for `(key, version)`: incompressible
/// noise, so every page takes the raw/compressed path (never the
/// same-filled fast path, which bypasses the spill machinery entirely).
fn noise_page(key: u64, version: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version);
    (0..PAGE).map(|_| rng.next_u64() as u8).collect()
}

/// Spin until `cond` holds or `what` times out.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: any single bit flip in the spill file — header or
    /// payload, any extent — is detected. The damaged key surfaces as
    /// `Corrupt` exactly once (then misses: the entry was dropped);
    /// every other key reads back byte-exact; no get ever returns
    /// wrong bytes.
    #[test]
    fn any_single_bit_flip_is_detected(sel in any::<u64>()) {
        const KEYS: u64 = 24;
        let path = temp_path("bitflip", sel);
        {
            // Single read attempt: a verification failure is immediately
            // persistent (the flip is on the medium, retrying cannot
            // help), which keeps the case fast and the accounting exact.
            let store = CompressedStore::new(
                StoreConfig::with_spill(2 * PAGE, &path)
                    .with_spill_retry(1, Duration::ZERO),
            );
            for key in 0..KEYS {
                store.put(key, &noise_page(key, 1)).unwrap();
            }
            store.flush().unwrap();

            // Flip one bit, chosen by the proptest case, anywhere in the
            // file — through a second handle to the same inode.
            let flipped_in_data = {
                use std::os::unix::fs::FileExt as _;
                let f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .unwrap();
                let len = f.metadata().unwrap().len();
                prop_assert!(len > 0, "nothing spilled under a 2-page budget");
                let data_end = store.stats().bytes_on_spill.min(len);
                let bit = sel % (len * 8);
                let mut byte = [0u8; 1];
                f.read_exact_at(&mut byte, bit / 8).unwrap();
                byte[0] ^= 1 << (bit % 8);
                f.write_all_at(&byte, bit / 8).unwrap();
                bit / 8 < data_end
            };

            let mut out = vec![0u8; PAGE];
            let mut corrupt_keys = Vec::new();
            for key in 0..KEYS {
                match store.get(key, &mut out) {
                    Ok(true) => prop_assert_eq!(
                        &out,
                        &noise_page(key, 1),
                        "key {} returned wrong bytes", key
                    ),
                    Ok(false) => prop_assert!(
                        false,
                        "key {} missing before any Corrupt was reported", key
                    ),
                    Err(StoreError::Corrupt) => corrupt_keys.push(key),
                    Err(e) => prop_assert!(false, "key {key}: unexpected error {e}"),
                }
            }
            // One flipped bit damages at most one extent; within the
            // written region it damages exactly one.
            prop_assert!(corrupt_keys.len() <= 1, "one bit, {corrupt_keys:?} corrupt");
            if flipped_in_data {
                prop_assert_eq!(corrupt_keys.len(), 1, "in-extent flip not detected");
            }
            let s = store.stats();
            prop_assert_eq!(s.corrupt_detected, corrupt_keys.len() as u64);
            // The damaged entry was dropped: it now misses (refillable)
            // instead of erroring forever.
            for &key in &corrupt_keys {
                prop_assert_eq!(store.get(key, &mut out).unwrap(), false);
                prop_assert!(!store.contains(key));
            }
            store.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite (codec layer): flipping a bit in the *codec id byte* of
    /// a spill extent is detected — the damaged page surfaces as
    /// `Corrupt`, never as bytes decoded under the wrong codec. The
    /// keyspace mixes BDI-sealed and LZRW1-sealed extents so both codec
    /// ids are on disk when the flip lands.
    #[test]
    fn codec_id_bit_flip_never_decodes_under_wrong_codec(sel in any::<u64>()) {
        const KEYS: u64 = 24;
        // v2 extent layout: magic u32 | plen u32 | gen u64 | codec u8 |
        // pad [u8; 3] | crc u32 | payload.
        const MAGIC: [u8; 4] = 0xCC5E_E002u32.to_le_bytes();
        const CODEC_OFFSET: u64 = 16;
        const HEADER: usize = 24;

        // BDI-sealed content: words clustered near one base.
        let bdi_page = |key: u64| -> Vec<u8> {
            let base = 0x4000_0000_0000u64 + (key << 20);
            let mut p = Vec::with_capacity(PAGE);
            for i in 0..(PAGE as u64 / 8) {
                p.extend_from_slice(&(base + (i * 13 + key) % 100).to_le_bytes());
            }
            p
        };
        // LZRW1-sealed content: byte-regular, word-irregular.
        let lz_page = |key: u64| -> Vec<u8> {
            (0..PAGE).map(|i| ((i / 7 + key as usize) % 61) as u8 + b' ').collect()
        };
        let page_for = |key: u64| if key.is_multiple_of(2) {
            bdi_page(key)
        } else {
            lz_page(key)
        };

        let path = temp_path("codecflip", sel);
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(2 * PAGE, &path)
                    .with_spill_retry(1, Duration::ZERO),
            );
            for key in 0..KEYS {
                store.put(key, &page_for(key)).unwrap();
            }
            store.flush().unwrap();

            // Locate extent headers by magic (validated by a sane payload
            // length) and flip one bit of one extent's codec byte.
            {
                use std::os::unix::fs::FileExt as _;
                let f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .unwrap();
                let len = f.metadata().unwrap().len() as usize;
                let mut file = vec![0u8; len];
                f.read_exact_at(&mut file, 0).unwrap();
                let mut extents = Vec::new();
                let mut at = 0usize;
                while at + HEADER <= len {
                    if file[at..at + 4] == MAGIC {
                        let plen = u32::from_le_bytes(
                            file[at + 4..at + 8].try_into().unwrap(),
                        ) as usize;
                        if plen > 0 && at + HEADER + plen <= len {
                            extents.push(at as u64);
                            at += HEADER + plen;
                            continue;
                        }
                    }
                    at += 1;
                }
                prop_assert!(!extents.is_empty(), "no extents found on spill");
                let target = extents[(sel % extents.len() as u64) as usize];
                let mut byte = [0u8; 1];
                f.read_exact_at(&mut byte, target + CODEC_OFFSET).unwrap();
                byte[0] ^= 1 << (sel % 8);
                f.write_all_at(&byte, target + CODEC_OFFSET).unwrap();
            }

            let mut out = vec![0u8; PAGE];
            let mut corrupt_keys = Vec::new();
            for key in 0..KEYS {
                match store.get(key, &mut out) {
                    Ok(true) => prop_assert_eq!(
                        &out,
                        &page_for(key),
                        "key {} returned wrong bytes after codec-id flip", key
                    ),
                    Ok(false) => prop_assert!(false, "key {} lost without a Corrupt", key),
                    Err(StoreError::Corrupt) => corrupt_keys.push(key),
                    Err(e) => prop_assert!(false, "key {key}: unexpected error {e}"),
                }
            }
            prop_assert_eq!(
                corrupt_keys.len(), 1,
                "exactly the flipped extent must fail: {:?}", corrupt_keys
            );
            prop_assert_eq!(store.stats().corrupt_detected, 1);
            store.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Tentpole acceptance: 8 threads of mixed put/get/remove against a
/// seeded fault injector (EIO reads, bit-flip reads, EIO and torn
/// writes) with GC churning underneath. Every get that returns data
/// returns exact bytes; corruption is detected and counted; retries
/// happen; the budget holds once the dust settles.
#[test]
fn chaos_stress_survives_faulty_medium() {
    const THREADS: u64 = 8;
    const OPS: u64 = 1_500;
    const KEYS_PER_THREAD: u64 = 96;
    const BUDGET: usize = 8 * PAGE;

    let path = temp_path("stress", 0);
    let injector = Arc::new(FaultInjector::new(
        FileMedium::create(&path).unwrap(),
        FaultPlan {
            seed: 0xC4A0_5CA0,
            read_error_1_in: 61,
            read_corrupt_1_in: 43,
            write_error_1_in: 127,
            short_write_1_in: 211,
            ..FaultPlan::default()
        },
    ));
    let store = Arc::new(CompressedStore::with_medium(
        StoreConfig::in_memory(BUDGET)
            .with_spill_batch_bytes(4 * PAGE)
            .with_gc_dead_ratio(0.2)
            .with_spill_retry(3, Duration::from_micros(200))
            // Rate-injected write failures are scattered, but 3
            // consecutive hard batch failures can happen over a long
            // run; this test pins integrity-under-fire, not the
            // degraded transition (tested on its own schedule below).
            .with_degrade_after(u32::MAX),
        Arc::clone(&injector) as Arc<dyn SpillMedium>,
    ));

    let violations = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let violations = Arc::clone(&violations);
            std::thread::spawn(move || {
                let base = t * KEYS_PER_THREAD;
                let mut shadow: HashMap<u64, u64> = HashMap::new();
                let mut version = 0u64;
                let mut rng = SplitMix64::new(t + 1);
                let mut out = vec![0u8; PAGE];
                for _ in 0..OPS {
                    let key = base + rng.next_u64() % KEYS_PER_THREAD;
                    match rng.next_u64() % 10 {
                        // Removes churn the spill file so GC compaction
                        // runs (and relocates extents) mid-fault-storm.
                        0..=1 => {
                            store.remove(key);
                            shadow.remove(&key);
                        }
                        2..=5 => {
                            version += 1;
                            match store.put(key, &noise_page(key, version)) {
                                Ok(()) => {
                                    shadow.insert(key, version);
                                }
                                Err(_) => {
                                    shadow.remove(&key);
                                }
                            }
                        }
                        _ => match store.get(key, &mut out) {
                            Ok(true) => {
                                // THE invariant: returned data is exact.
                                // (A miss is legal — shed or dropped —
                                // but garbage never is.)
                                if let Some(&v) = shadow.get(&key) {
                                    if out != noise_page(key, v) {
                                        violations.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Ok(false) => {
                                shadow.remove(&key);
                            }
                            Err(_) => {
                                // Corrupt (entry dropped) or retries
                                // exhausted on injected EIO: both are
                                // honest failures, never wrong data.
                                shadow.remove(&key);
                            }
                        },
                    }
                }
                shadow
            })
        })
        .collect();

    let mut live: Vec<(u64, u64)> = Vec::new();
    for h in handles {
        live.extend(h.join().expect("chaos thread panicked"));
    }
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "a get returned wrong bytes under fault injection"
    );

    let _ = store.flush();
    // Final readback: every surviving key exact-or-absent.
    let mut out = vec![0u8; PAGE];
    for (key, version) in live {
        if let Ok(true) = store.get(key, &mut out) {
            assert_eq!(out, noise_page(key, version), "final: key {key} corrupted");
        }
    }

    let s = store.stats();
    let inj = injector.injected();
    assert!(inj.total() > 0, "no faults injected: {inj:?}");
    assert!(
        inj.read_corruptions > 0,
        "no read corruption exercised: {inj:?}"
    );
    assert!(
        s.corrupt_detected > 0,
        "injected corruption was never detected ({inj:?}, {s:?})"
    );
    assert!(s.io_retries > 0, "injected EIO never retried ({s:?})");
    assert!(
        s.resident_bytes <= BUDGET as u64,
        "budget violated after settling: {} > {BUDGET} ({s:?})",
        s.resident_bytes
    );
    store.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Tentpole: a scheduled write outage drives the degraded-mode state
/// machine end to end — consecutive hard batch failures disable
/// spilling, probation probes hammer the medium, and the first probe
/// that lands re-enables spill. Entered and recovered exactly once.
#[test]
fn write_outage_degrades_then_probes_recover() {
    const BUDGET: usize = 4 * PAGE;
    // Writes 0..24 hard-fail: enough to burn both batch retries of
    // several batches plus the first probes; probe writes keep
    // consuming write indices, so the outage expires on schedule.
    const OUTAGE: std::ops::Range<u64> = 0..24;

    let path = temp_path("outage", 0);
    let injector = Arc::new(FaultInjector::new(
        FileMedium::create(&path).unwrap(),
        FaultPlan {
            write_outage: Some(OUTAGE),
            ..FaultPlan::default()
        },
    ));
    let store = CompressedStore::with_medium(
        StoreConfig::in_memory(BUDGET)
            .with_spill_batch_bytes(2 * PAGE)
            .with_spill_retry(2, Duration::from_micros(100))
            .with_degrade_after(2)
            .with_probe_interval(Duration::from_millis(2)),
        Arc::clone(&injector) as Arc<dyn SpillMedium>,
    );

    // Push well past the budget: evictions queue spill jobs, batches
    // hard-fail against the outage, entries bounce back to memory, and
    // the failure counter crosses the threshold.
    for key in 0..32u64 {
        let _ = store.put(key, &noise_page(key, 1));
    }
    wait_for("degraded mode", || store.is_degraded());

    let mid = store.stats();
    assert!(mid.degraded, "stats gauge disagrees with is_degraded");
    assert_eq!(mid.degraded_entered, 1, "degrade transition not counted");
    assert!(
        mid.spill_fallback_resident + mid.shed_pages > 0,
        "failed batches neither reverted nor shed: {mid:?}"
    );

    // Probation: probes burn through the rest of the outage window and
    // the first clean canary round-trip recovers the store.
    wait_for("recovery", || !store.is_degraded());

    let s = store.stats();
    assert_eq!(s.degraded_entered, 1, "re-entered degraded after outage");
    assert_eq!(s.degraded_recovered, 1, "recovery not counted");
    assert!(s.medium_probes >= 1, "recovered without probing: {s:?}");
    assert!(
        injector.injected().write_errors >= OUTAGE.end - OUTAGE.start - 1,
        "outage window not consumed: {:?}",
        injector.injected()
    );

    // The medium is trusted again: new puts spill for real and
    // everything still present reads back exact.
    let before = s.spill_batches;
    for key in 100..132u64 {
        store.put(key, &noise_page(key, 2)).unwrap();
    }
    store.flush().unwrap();
    let after = store.stats();
    assert!(
        after.spill_batches > before,
        "spilling never resumed after recovery: {after:?}"
    );
    assert!(!after.degraded);
    let mut out = vec![0u8; PAGE];
    for key in 100..132u64 {
        match store.get(key, &mut out) {
            Ok(true) => assert_eq!(out, noise_page(key, 2), "post-recovery key {key}"),
            Ok(false) => {} // shed while over budget: a miss, never garbage
            Err(e) => panic!("post-recovery key {key}: {e}"),
        }
    }
    assert!(after.resident_bytes <= BUDGET as u64, "{after:?}");
    store.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A medium so broken it panics the writer thread. The store must not
/// hang or lose its mind: it flips degraded, `flush()` returns
/// `Err(ShuttingDown)` instead of waiting forever, in-memory entries
/// stay readable, and the budget is repaired by shedding.
#[test]
fn writer_panic_degrades_and_flush_never_hangs() {
    /// Panics on the first write — simulating a bug (or a poisoned
    /// lock) inside a custom medium, the worst failure a trait object
    /// can inflict.
    struct PanickingMedium;
    impl SpillMedium for PanickingMedium {
        fn read_at(&self, _buf: &mut [u8], _offset: u64) -> io::Result<()> {
            Err(io::Error::other("unreachable: nothing was ever written"))
        }
        fn write_at(&self, _data: &[u8], _offset: u64) -> io::Result<()> {
            panic!("injected medium panic");
        }
        fn flush(&self) -> io::Result<()> {
            Ok(())
        }
        fn set_len(&self, _len: u64) -> io::Result<()> {
            Ok(())
        }
    }

    const BUDGET: usize = 4 * PAGE;
    let store = CompressedStore::with_medium(
        StoreConfig::in_memory(BUDGET)
            .with_spill_retry(1, Duration::ZERO)
            .with_degrade_after(1),
        Arc::new(PanickingMedium),
    );

    // Force evictions: the first spill batch murders the writer.
    for key in 0..16u64 {
        let _ = store.put(key, &noise_page(key, 1));
    }
    wait_for("degraded after writer panic", || store.is_degraded());

    // flush() must return (with the truth), not block on completions
    // that can never arrive.
    match store.flush() {
        Err(StoreError::ShuttingDown) => {}
        Ok(()) => {
            // Legal only if no job was in flight when the writer died;
            // the store must still be degraded and consistent.
        }
        Err(e) => panic!("flush after writer death: unexpected {e}"),
    }
    let s = store.stats();
    assert!(s.degraded, "writer panic must degrade the store");
    assert!(s.degraded_entered >= 1);
    assert!(
        s.resident_bytes <= BUDGET as u64,
        "budget not repaired after reclaim: {s:?}"
    );

    // Whatever survived shedding reads back exact, from memory.
    let mut out = vec![0u8; PAGE];
    let mut readable = 0;
    for key in 0..16u64 {
        match store.get(key, &mut out) {
            Ok(true) => {
                assert_eq!(out, noise_page(key, 1), "key {key} corrupted");
                readable += 1;
            }
            Ok(false) => {}
            Err(e) => panic!("key {key}: {e}"),
        }
    }
    assert!(readable > 0, "everything lost: shedding was total");
    // Same-filled pages bypass the budget and the (dead) writer: the
    // degraded store still serves them.
    store.put(999, &[0x5Au8; PAGE]).unwrap();
    assert!(store.get(999, &mut out).unwrap());
    assert_eq!(out, [0x5Au8; PAGE]);
    // A second flush is just as honest, and just as prompt.
    assert!(matches!(
        store.flush(),
        Err(StoreError::ShuttingDown) | Ok(())
    ));
    store.shutdown();
}

/// Satellite regression: a hard-failed batch reverts its entries to
/// memory residence (counted in `spill_fallback_resident`), the
/// resulting budget overshoot is repaired by shedding clean pages, and
/// one isolated failure does NOT degrade the store.
#[test]
fn spill_failed_fallback_restores_budget_without_degrading() {
    const BUDGET: usize = 4 * PAGE;
    let path = temp_path("fallback", 0);
    // The first medium operations are exactly the first batch's write
    // attempts (nothing has spilled, so no reads can precede them):
    // scripting WriteError at ops 0..3 hard-fails batch #1 through all
    // three of its retries and leaves every later batch clean.
    let injector = Arc::new(FaultInjector::new(
        FileMedium::create(&path).unwrap(),
        FaultPlan {
            script: vec![
                (0, Fault::WriteError),
                (1, Fault::WriteError),
                (2, Fault::WriteError),
            ],
            ..FaultPlan::default()
        },
    ));
    let store = CompressedStore::with_medium(
        StoreConfig::in_memory(BUDGET)
            .with_spill_batch_bytes(2 * PAGE)
            .with_spill_retry(3, Duration::from_micros(100)),
        Arc::clone(&injector) as Arc<dyn SpillMedium>,
    );

    for key in 0..24u64 {
        store.put(key, &noise_page(key, 1)).unwrap();
    }
    store.flush().unwrap();

    let s = store.stats();
    assert_eq!(
        injector.injected().write_errors,
        3,
        "script misfired: {:?}",
        injector.injected()
    );
    assert!(
        s.spill_fallback_resident > 0,
        "failed batch did not fall back to memory: {s:?}"
    );
    assert_eq!(s.io_retries, 2, "3 attempts = 2 retries: {s:?}");
    assert!(
        !s.degraded && s.degraded_entered == 0,
        "one failed batch (< degrade_after) must not degrade: {s:?}"
    );
    assert!(
        s.resident_bytes <= BUDGET as u64,
        "fallback overshoot never shed: {} > {BUDGET} ({s:?})",
        s.resident_bytes
    );

    // Exact-or-absent, and absences are explained by shedding.
    let mut out = vec![0u8; PAGE];
    let mut missing = 0u64;
    for key in 0..24u64 {
        match store.get(key, &mut out) {
            Ok(true) => assert_eq!(out, noise_page(key, 1), "key {key} corrupted"),
            Ok(false) => missing += 1,
            Err(e) => panic!("key {key}: {e}"),
        }
    }
    assert!(
        missing <= s.shed_pages,
        "{missing} keys missing but only {} shed",
        s.shed_pages
    );
    store.shutdown();
    let _ = std::fs::remove_file(&path);
}
