//! Crash-recovery tests: the persistent spill tier against power loss.
//!
//! The contract (DESIGN.md §14) is checked against a shadow model of
//! *durably-committed* entries:
//!
//! 1. **Never garbage.** A recovered store never serves bytes that are
//!    not byte-exact some version that was actually put for that key.
//! 2. **Completeness.** Cut the power at (or anywhere past) a flush
//!    barrier and every key the barrier saw in the spill tier is served
//!    byte-for-byte — torn tails and partial batches past the cut are
//!    discarded, never a durable entry.
//! 3. **Tombstones hold.** A key removed before a durable barrier and
//!    never re-put stays gone after recovery.
//! 4. **Clean shutdown is trusted.** An orderly shutdown seals the
//!    superblock; reopening skips extent verification entirely and
//!    still recovers everything.
//!
//! Crashes are injected with [`CrashSwitch`]: a shared byte-position
//! cut across the data and journal media, so "the machine died at byte
//! N of its cumulative write stream" is a deterministic, replayable
//! fault — optionally with the torn sector scribbled.

use cc_core::medium::{CrashSwitch, FaultInjector, FaultPlan, MemMedium, SpillMedium};
use cc_core::store::{CompressedStore, HitTier, StoreConfig};
use cc_core::CompressAll;
use cc_util::SplitMix64;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 1024;

/// Deterministic incompressible content for `(key, version)` — always
/// takes the raw/compressed spill path, never the same-filled one.
fn noise_page(key: u64, version: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ version);
    (0..PAGE).map(|_| rng.next_u64() as u8).collect()
}

/// A tight-budget persistent config: almost everything spills, no
/// background demoter (CompressAll), GC off unless a trial turns it on.
fn cfg(budget_pages: usize, gc_ratio: f64) -> StoreConfig {
    StoreConfig::with_spill(budget_pages * PAGE, "/unused-recovery-media")
        .with_tier_policy(Arc::new(CompressAll))
        .with_gc_dead_ratio(gc_ratio)
        .with_spill_retry(1, Duration::ZERO)
}

const MATRIX_BUDGET_PAGES: usize = 2;

fn matrix_cfg() -> StoreConfig {
    cfg(MATRIX_BUDGET_PAGES, f64::MAX)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Put(u64),
    Remove(u64),
    /// `flush()` + model snapshot: a durability barrier.
    Barrier,
}

/// When (and whether) the power dies during a trial.
#[derive(Debug, Clone, Copy)]
enum Crash {
    /// Run to completion and shut down in order (clean seal).
    None,
    /// Run to completion but just drop the store (unclean, complete).
    Drop,
    /// Hard cut exactly at barrier `i`'s byte position.
    AtBarrier(usize),
    /// Arm the cut `delta` bytes past barrier `i`: the next write is
    /// torn mid-flight (and the torn sector scribbled when `tear`).
    ArmedAfterBarrier {
        barrier: usize,
        delta: u64,
        tear: bool,
    },
    /// Arm the cut at an absolute byte position before the run starts.
    ArmedAt { at: u64, tear: bool },
}

/// What the store had provably made durable at one barrier.
struct Model {
    bytes: u64,
    /// (key, version): in the spill tier at the barrier — journaled,
    /// data durable, must be served byte-exact after any cut ≥ here.
    must_serve: Vec<(u64, u64)>,
    /// Removed at or before the barrier (tombstone committed by the
    /// barrier's flush) — must miss if never re-put afterwards.
    must_miss: Vec<u64>,
    /// Keys put or removed again *after* this barrier. When the cut
    /// lands deep inside the following phase, those later records may
    /// themselves have become durable, so the barrier's verdict on
    /// these keys is no longer binding.
    touched_later: HashSet<u64>,
}

struct Outcome {
    data: MemMedium,
    journal: MemMedium,
    models: Vec<Model>,
    cut_at: u64,
    /// Every version ever put, per key — the never-garbage set.
    versions: HashMap<u64, HashMap<u64, Vec<u8>>>,
    /// Keys whose final state in the schedule is "removed".
    forever_removed: HashSet<u64>,
    final_bytes: u64,
    /// Stats of the crashed/finished store itself (pre-reopen).
    run_stats: cc_core::StoreStats,
}

/// Run `schedule` against a fresh persistent store over in-memory media
/// wired through one shared [`CrashSwitch`], injecting `crash`.
fn run_trial(schedule: &[Op], config: &StoreConfig, crash: Crash) -> Outcome {
    let data_mem = MemMedium::new();
    let journal_mem = MemMedium::new();
    let switch = match crash {
        Crash::ArmedAt { at, tear } => CrashSwitch::armed(at, tear),
        _ => CrashSwitch::new(),
    };
    let data = Arc::new(FaultInjector::with_switch(
        data_mem.share(),
        FaultPlan::quiet(),
        Arc::clone(&switch),
    )) as Arc<dyn SpillMedium>;
    let journal = Arc::new(FaultInjector::with_switch(
        journal_mem.share(),
        FaultPlan::quiet(),
        Arc::clone(&switch),
    )) as Arc<dyn SpillMedium>;
    let store = CompressedStore::with_persistent_media(config.clone(), data, journal)
        .expect("fresh persistent store");

    let mut vnext: HashMap<u64, u64> = HashMap::new();
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut removed: HashSet<u64> = HashSet::new();
    let mut versions: HashMap<u64, HashMap<u64, Vec<u8>>> = HashMap::new();
    let mut models = Vec::new();
    let mut cut_at = u64::MAX;
    let mut barrier = 0usize;
    for op in schedule {
        match *op {
            Op::Put(k) => {
                let v = {
                    let n = vnext.entry(k).or_insert(0);
                    *n += 1;
                    *n
                };
                let page = noise_page(k, v);
                store.put(k, &page).expect("put");
                versions.entry(k).or_default().insert(v, page);
                shadow.insert(k, v);
                removed.remove(&k);
            }
            Op::Remove(k) => {
                store.remove(k);
                shadow.remove(&k);
                removed.insert(k);
            }
            Op::Barrier => {
                store.flush().expect("flush");
                let must_serve = shadow
                    .iter()
                    .filter(|&(&k, _)| store.peek_tier(k) == Some(HitTier::Spill))
                    .map(|(&k, &v)| (k, v))
                    .collect();
                let bytes = switch.bytes_written();
                match crash {
                    Crash::AtBarrier(i) if i == barrier => {
                        switch.cut_now();
                        cut_at = bytes;
                    }
                    Crash::ArmedAfterBarrier {
                        barrier: i,
                        delta,
                        tear,
                    } if i == barrier => {
                        switch.arm(bytes + delta, tear);
                        cut_at = bytes + delta;
                    }
                    _ => {}
                }
                models.push(Model {
                    bytes,
                    must_serve,
                    must_miss: removed.iter().copied().collect(),
                    touched_later: HashSet::new(),
                });
                barrier += 1;
            }
        }
    }
    // Backfill `touched_later`: walk the schedule once more, noting for
    // each barrier which keys any later op touches.
    let mut later: HashSet<u64> = HashSet::new();
    let mut b = models.len();
    for op in schedule.iter().rev() {
        match *op {
            Op::Put(k) | Op::Remove(k) => {
                later.insert(k);
            }
            Op::Barrier => {
                b -= 1;
                models[b].touched_later = later.clone();
            }
        }
    }
    if let Crash::ArmedAt { at, .. } = crash {
        cut_at = at;
    }
    if matches!(crash, Crash::None) {
        store.shutdown();
    }
    let final_bytes = switch.bytes_written();
    let run_stats = store.stats();
    drop(store);
    Outcome {
        data: data_mem,
        journal: journal_mem,
        models,
        cut_at,
        versions,
        forever_removed: removed,
        final_bytes,
        run_stats,
    }
}

/// Reopen the trial's media and check the recovery contract.
fn verify(o: &Outcome, config: &StoreConfig) -> cc_core::StoreStats {
    let reopened = CompressedStore::open_existing_with_media(
        config.clone().with_gc_dead_ratio(f64::MAX),
        Arc::new(o.data.share()) as Arc<dyn SpillMedium>,
        Arc::new(o.journal.share()) as Arc<dyn SpillMedium>,
    )
    .expect("recovery must succeed whenever a superblock slot survives");
    let stats = reopened.stats();
    let mut out = vec![0u8; PAGE];

    // 1. Never garbage: anything served is byte-exact some put version.
    for (&k, vers) in &o.versions {
        if reopened.get(k, &mut out).expect("recovered get") {
            assert!(
                vers.values().any(|p| p[..] == out[..]),
                "key {k}: served bytes match no version ever put (cut at {})",
                o.cut_at
            );
        }
    }

    // 2./3. Completeness + tombstones vs the last durable barrier. A
    // cut exactly at the barrier (or one torn byte into the next write)
    // makes the barrier's verdict exact for every key; a deeper cut may
    // have made later records durable, so keys the schedule touches
    // again after the barrier are exempt from the barrier's verdict
    // (never-garbage above still binds them).
    if let Some(model) = o.models.iter().rev().find(|m| m.bytes <= o.cut_at) {
        let exact = o.cut_at <= model.bytes + 1;
        for &(k, v) in &model.must_serve {
            if !exact && model.touched_later.contains(&k) {
                continue;
            }
            // Warm restart, not re-PUT: the entry must already be in
            // the spill tier before we ever touch it.
            assert_eq!(
                reopened.peek_tier(k),
                Some(HitTier::Spill),
                "durable key {k} not recovered to the spill tier (cut at {})",
                o.cut_at
            );
            assert!(
                reopened.get(k, &mut out).expect("recovered get"),
                "durable key {k} lost (cut at {})",
                o.cut_at
            );
            // Ops between the barrier and the cut may have journaled a
            // newer version; the served one must be >= the barrier's.
            let served = o.versions[&k]
                .iter()
                .find(|(_, p)| p[..] == out[..])
                .map(|(&sv, _)| sv)
                .expect("never-garbage already checked");
            assert!(
                served >= v,
                "durable key {k} regressed from v{v} to v{served} (cut at {})",
                o.cut_at
            );
            if exact {
                // At the barrier itself (or one torn byte past it)
                // nothing newer can be durable: exact version required.
                assert_eq!(served, v, "key {k}: wrong version at exact-barrier cut");
            }
        }
        for k in model.must_miss.iter().filter(|k| {
            exact || (o.forever_removed.contains(k) && !model.touched_later.contains(k))
        }) {
            assert!(
                !reopened.get(*k, &mut out).expect("recovered get"),
                "removed key {k} resurrected (cut at {})",
                o.cut_at
            );
        }
        assert!(
            stats.extents_recovered >= model.must_serve.len() as u64,
            "recovered {} extents, barrier had {} durable",
            stats.extents_recovered,
            model.must_serve.len()
        );
    }
    stats
}

/// The deterministic schedule the boundary matrix runs: puts, spills,
/// overwrites, removes, and a re-put of a removed key, separated by
/// five durability barriers.
fn matrix_schedule() -> Vec<Op> {
    let mut s = Vec::new();
    for k in 0..12 {
        s.push(Op::Put(k));
    }
    s.push(Op::Barrier); // 0: initial spill wave
    for k in 0..4 {
        s.push(Op::Put(k)); // overwrite -> v2, stale v1 extents on file
    }
    s.push(Op::Barrier); // 1
    for k in 4..8 {
        s.push(Op::Remove(k));
    }
    s.push(Op::Barrier); // 2: tombstones committed
    for k in 12..16 {
        s.push(Op::Put(k));
    }
    s.push(Op::Put(4)); // resurrect one removed key
    s.push(Op::Barrier); // 3
    for k in 8..10 {
        s.push(Op::Put(k)); // second overwrite wave
    }
    s.push(Op::Barrier); // 4
    s
}

/// Tentpole acceptance: a kill at *every* batch-boundary barrier (hard
/// cut, and a one-byte-torn + scribbled-sector variant) recovers all
/// durably-committed entries byte-for-byte and serves zero wrong bytes.
#[test]
fn kill_at_every_batch_boundary_recovers_durable_entries() {
    let schedule = matrix_schedule();
    let barriers = schedule
        .iter()
        .filter(|op| matches!(op, Op::Barrier))
        .count();
    let mut replayed_total = 0;
    for i in 0..barriers {
        let o = run_trial(&schedule, &matrix_cfg(), Crash::AtBarrier(i));
        let stats = verify(&o, &matrix_cfg());
        replayed_total += stats.journal_records_replayed;
        assert_eq!(stats.clean_recoveries, 0, "cut run must not look clean");

        let o = run_trial(
            &schedule,
            &matrix_cfg(),
            Crash::ArmedAfterBarrier {
                barrier: i,
                delta: 1,
                tear: true,
            },
        );
        verify(&o, &matrix_cfg());
    }
    assert!(replayed_total > 0, "matrix never exercised the journal");
}

/// Overwrites leave stale generations in the journal; recovery must
/// count them as dropped, not serve them.
#[test]
fn stale_generations_are_dropped_and_counted() {
    let schedule = matrix_schedule();
    // Cut at the last barrier: both overwrite waves durable.
    let o = run_trial(&schedule, &matrix_cfg(), Crash::AtBarrier(4));
    let stats = verify(&o, &matrix_cfg());
    assert!(
        stats.stale_generation_dropped >= 1,
        "overwrites + a tombstoned re-put must supersede journal records"
    );
    assert!(stats.journal_records_replayed > stats.extents_recovered);
}

/// Clean shutdown seals the superblock: reopening trusts the journal,
/// skips extent verification entirely (the fast warm start), and still
/// recovers every spilled entry.
#[test]
fn clean_shutdown_reopen_skips_extent_scan() {
    let schedule = matrix_schedule();
    let o = run_trial(&schedule, &matrix_cfg(), Crash::None);
    let stats = verify(&o, &matrix_cfg());
    assert_eq!(stats.clean_recoveries, 1, "seal not honoured");
    assert_eq!(
        stats.recovery_extents_verified, 0,
        "clean start took the slow extent re-scan"
    );
    assert!(stats.extents_recovered > 0);
}

/// An orderly `Drop` (no explicit `shutdown()`) still seals: the writer
/// drains its channel and commits before exiting, so even a dropped
/// store warm-starts on the fast path.
#[test]
fn orderly_drop_also_seals_clean() {
    let schedule = matrix_schedule();
    let o = run_trial(&schedule, &matrix_cfg(), Crash::Drop);
    let stats = verify(&o, &matrix_cfg());
    assert_eq!(stats.clean_recoveries, 1, "drop did not seal");
    assert_eq!(stats.recovery_extents_verified, 0);
    assert!(stats.extents_recovered > 0);
}

/// Everything durable but the seal suppressed (cut at the final
/// barrier): recovery must take the verifying path — and still recover
/// everything.
#[test]
fn unclean_but_complete_media_recover_via_verification() {
    let schedule = matrix_schedule();
    let o = run_trial(&schedule, &matrix_cfg(), Crash::AtBarrier(4));
    let stats = verify(&o, &matrix_cfg());
    assert_eq!(stats.clean_recoveries, 0);
    assert!(
        stats.recovery_extents_verified >= stats.extents_recovered,
        "unclean open must verify what it serves"
    );
    assert!(stats.extents_recovered > 0);
}

/// A recovered store is a working store: it keeps serving, accepts new
/// puts, spills, and survives a *second* crash-recovery cycle.
#[test]
fn recovered_store_survives_a_second_crash() {
    let schedule = matrix_schedule();
    let o = run_trial(&schedule, &matrix_cfg(), Crash::AtBarrier(4));
    let reopened = CompressedStore::open_existing_with_media(
        matrix_cfg(),
        Arc::new(o.data.share()) as Arc<dyn SpillMedium>,
        Arc::new(o.journal.share()) as Arc<dyn SpillMedium>,
    )
    .unwrap();
    // New generation of writes on top of the recovered state.
    for k in 100..108 {
        reopened.put(k, &noise_page(k, 1)).unwrap();
    }
    reopened.flush().unwrap();
    reopened.shutdown();
    drop(reopened);

    let third = CompressedStore::open_existing_with_media(
        matrix_cfg(),
        Arc::new(o.data.share()) as Arc<dyn SpillMedium>,
        Arc::new(o.journal.share()) as Arc<dyn SpillMedium>,
    )
    .unwrap();
    assert_eq!(third.stats().clean_recoveries, 1);
    let mut out = vec![0u8; PAGE];
    let mut served = 0;
    for k in 100..108 {
        if third.get(k, &mut out).unwrap() {
            assert_eq!(out, noise_page(k, 1), "second-generation key {k}");
            served += 1;
        }
    }
    assert!(served > 0, "no second-generation key survived the restart");
    // First-generation durable entries are still there too.
    let model = o.models.last().unwrap();
    for &(k, v) in &model.must_serve {
        if o.versions[&k].len() == 1 {
            assert!(third.get(k, &mut out).unwrap(), "key {k} lost in round 2");
            assert_eq!(out, noise_page(k, v));
        }
    }
}

/// GC compaction under power loss: cuts sprayed across the whole GC
/// region (relocation journaling, copies, truncate) always resolve each
/// extent to exactly one valid copy — durable entries survive, and
/// nothing is ever served wrong.
#[test]
fn mid_gc_crash_resolves_to_exactly_one_valid_copy() {
    let mut schedule = Vec::new();
    for k in 0..16 {
        schedule.push(Op::Put(k));
    }
    schedule.push(Op::Barrier); // 0
    for k in (0..16).step_by(2) {
        schedule.push(Op::Remove(k)); // dead space for the collector
    }
    schedule.push(Op::Barrier); // 1: tombstones durable, GC not yet run
    for k in 16..22 {
        schedule.push(Op::Put(k)); // batches after this trigger GC
    }
    schedule.push(Op::Barrier); // 2

    // Small batches so the dead-byte GC trigger is reachable with this
    // schedule's volume.
    let gc_cfg = cfg(MATRIX_BUDGET_PAGES, 0.2).with_spill_batch_bytes(2048);

    // Probe run: learn the write-stream geometry and prove GC ran.
    let probe = run_trial(&schedule, &gc_cfg, Crash::Drop);
    verify(&probe, &gc_cfg);
    assert!(
        probe.run_stats.gc_runs >= 1,
        "schedule failed to trigger GC"
    );
    let gc_start = probe.models[1].bytes;
    let total = probe.final_bytes;
    assert!(total > gc_start);

    // Spray cuts across the GC + post-GC region. Each armed run records
    // its own barriers, so the checks stay sound even if this run's
    // geometry drifts from the probe's.
    let span = total - gc_start;
    for step in 0..16u64 {
        let at = gc_start + 1 + step * span / 16;
        let o = run_trial(
            &schedule,
            &gc_cfg,
            Crash::ArmedAt {
                at,
                tear: step % 2 == 1,
            },
        );
        verify(&o, &gc_cfg);
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..24).prop_map(Op::Put),
        2 => (0u64..24).prop_map(Op::Remove),
        2 => Just(Op::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery after a crash at *any* byte of the write stream never
    /// serves wrong bytes, never loses a durable entry, and never
    /// resurrects a durably-removed key — over randomized schedules of
    /// puts, overwrites, removes, and barriers.
    #[test]
    fn crash_at_any_byte_never_serves_wrong_bytes(
        ops in proptest::collection::vec(op_strategy(), 12..60),
        cut_seed in any::<u64>(),
        tear in any::<bool>(),
    ) {
        let mut schedule = ops;
        schedule.push(Op::Barrier); // every schedule ends durable
        // Probe the total stream length, then cut somewhere inside it —
        // but never before the initial superblock (first 128 bytes): a
        // machine that dies before the store finishes *creating* the
        // file legitimately has nothing to recover.
        let config = cfg(2, f64::MAX);
        let probe = run_trial(&schedule, &config, Crash::Drop);
        let span = probe.final_bytes.max(129) - 128;
        let at = 128 + cut_seed % span;
        let o = run_trial(&schedule, &config, Crash::ArmedAt { at, tear });
        verify(&o, &config);
    }
}
