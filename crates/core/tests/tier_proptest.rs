//! Property tests of the tiering engine: byte-for-byte integrity while
//! entries migrate hot → warm → cold → hot, under every tier policy.
//!
//! The flat-store proptests (`store_proptest.rs`) already cover the
//! residence machinery under the default policy; these cases add (1) the
//! policy dimension — any registered `TierPolicy` must preserve exact
//! bytes — and (2) explicit `demote_now()` passes under an aggressive
//! recency policy, so single cases drive pages through the complete
//! hot → warm → cold → hot cycle deterministically.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_core::tier::{self, RecencyCompressibility};
use cc_util::SplitMix64;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 1024;

#[derive(Debug, Clone, Copy)]
enum Fill {
    /// Compressible text-like content (admitted → warm on put).
    Text,
    /// Incompressible noise (rejected → hot under the adaptive policies).
    Noise,
    /// A single repeated word (same-filled fast path, tier-independent).
    Same,
}

#[derive(Debug, Clone)]
enum Op {
    Put {
        key: u8,
        seed: u16,
        fill: Fill,
    },
    Get {
        key: u8,
    },
    Remove {
        key: u8,
    },
    /// One explicit demoter pass (the background thread is parked).
    Demote,
    Flush,
}

fn op() -> impl Strategy<Value = Op> {
    let fill = prop_oneof![
        3 => Just(Fill::Text),
        3 => Just(Fill::Noise),
        1 => Just(Fill::Same),
    ];
    prop_oneof![
        4 => (any::<u8>(), any::<u16>(), fill).prop_map(|(key, seed, fill)| Op::Put {
            key,
            seed,
            fill
        }),
        3 => any::<u8>().prop_map(|key| Op::Get { key }),
        1 => any::<u8>().prop_map(|key| Op::Remove { key }),
        1 => Just(Op::Demote),
        1 => Just(Op::Flush),
    ]
}

fn page_for(seed: u16, fill: Fill) -> Vec<u8> {
    match fill {
        Fill::Noise => {
            let mut rng = SplitMix64::new(seed as u64 + 1);
            (0..PAGE).map(|_| rng.next_u64() as u8).collect()
        }
        Fill::Text => {
            let mut p = vec![0u8; PAGE];
            for (i, b) in p.iter_mut().enumerate() {
                *b = ((seed as usize + i / 31) % 251) as u8;
            }
            p
        }
        Fill::Same => {
            let word = (seed as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .to_ne_bytes();
            word.iter().copied().cycle().take(PAGE).collect()
        }
    }
}

fn run_ops(store: &CompressedStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    let mut out = vec![0u8; PAGE];
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { key, seed, fill } => {
                let page = page_for(seed, fill);
                store.put(key as u64, &page).unwrap();
                model.insert(key, page);
            }
            Op::Get { key } => {
                let found = store.get(key as u64, &mut out).unwrap();
                match model.get(&key) {
                    Some(expect) => {
                        prop_assert!(found, "op {i}: key {key} lost");
                        prop_assert_eq!(&out, expect, "op {} key {} corrupted", i, key);
                    }
                    None => prop_assert!(!found, "op {i}: phantom key {key}"),
                }
            }
            Op::Remove { key } => {
                let existed = store.remove(key as u64);
                prop_assert_eq!(existed, model.remove(&key).is_some(), "op {}", i);
            }
            Op::Demote => {
                store.demote_now();
            }
            Op::Flush => store.flush().unwrap(),
        }
    }
    for (key, expect) in &model {
        let found = store.get(*key as u64, &mut out).unwrap();
        prop_assert!(found, "final: key {key} lost");
        prop_assert_eq!(&out, expect, "final key {} corrupted", key);
    }
    prop_assert_eq!(store.len(), model.len());
    // Tier gauges partition the budget gauge exactly (single-threaded,
    // demoter parked): whatever moved between tiers, nothing leaked.
    let s = store.stats();
    prop_assert_eq!(s.hot_bytes + s.warm_bytes, s.resident_bytes, "{:?}", s);
    prop_assert!(s.resident_bytes <= 8 * PAGE as u64, "over budget: {s:?}");
    Ok(())
}

fn spill_path(tag: &str, salt: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ccstore-tierprop-{tag}-{}-{:x}.bin",
        std::process::id(),
        salt ^ (std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos() as u64)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every registered tier policy preserves exact bytes under a tight
    /// budget with a spill file: wherever each policy places, keeps, or
    /// migrates a page, gets return what was put.
    #[test]
    fn any_policy_matches_model(
        ops in proptest::collection::vec(op(), 1..120),
        policy_idx in 0usize..3,
    ) {
        let policy = tier::all().swap_remove(policy_idx);
        let path = spill_path(policy.name(), ops.len() as u64);
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(8 * PAGE, &path)
                    .with_tier_policy(policy)
                    .with_demote_interval(Duration::from_secs(3600)),
            );
            run_ops(&store, &ops)?;
            store.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Aggressive recency policy: idle windows of one op and zero
    /// pressure floors make every explicit demoter pass migrate whatever
    /// aged, so cases constantly push pages hot → warm → cold while
    /// re-accesses promote them back — all byte-exact.
    #[test]
    fn aggressive_demotion_matches_model(ops in proptest::collection::vec(op(), 1..120)) {
        let policy = RecencyCompressibility {
            hot_idle: 1,
            warm_idle: 2,
            promote_window: u64::MAX,
            max_promote_pressure_pct: 100,
            hot_demote_pressure_pct: 0,
            warm_demote_pressure_pct: 0,
        };
        let path = spill_path("aggressive", ops.len() as u64);
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(8 * PAGE, &path)
                    .with_tier_policy(Arc::new(policy))
                    .with_demote_interval(Duration::from_secs(3600)),
            );
            run_ops(&store, &ops)?;
            store.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }
}
