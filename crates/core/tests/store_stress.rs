//! Multi-threaded stress tests for the sharded `CompressedStore`.
//!
//! Eight threads hammer an overlapping key space with puts, gets,
//! removes, and flushes while a sampler thread watches the memory
//! accounting. Two invariants must hold throughout:
//!
//! 1. **Round-trip integrity** — a `get` either misses or returns exactly
//!    the page deterministically derived from its key; torn, stale-beyond
//!    -replacement, or cross-key data is a failure.
//! 2. **Budget** — `stats().resident_bytes` never exceeds the configured
//!    memory budget, at any sampled instant, under full contention.

use cc_core::store::{CompressedStore, StoreConfig, StoreError};
use cc_core::tier::RecencyCompressibility;
use cc_util::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PAGE: usize = 4096;
const THREADS: u64 = 8;
/// Shared key space: every key is touched by several threads.
const KEYS: u64 = 512;

/// The one true page for `key`: mixed compressible/incompressible
/// content so stores exercise both the keep and reject threshold paths.
fn page_for(key: u64) -> Vec<u8> {
    let mut p = vec![0u8; PAGE];
    if key.is_multiple_of(3) {
        let mut rng = SplitMix64::new(key.wrapping_mul(0x9E37_79B9));
        for b in p.iter_mut() {
            *b = rng.next_u64() as u8;
        }
    } else {
        for (i, b) in p.iter_mut().enumerate() {
            *b = (key as u8).wrapping_add((i / 61) as u8);
        }
    }
    p
}

fn hammer(store: Arc<CompressedStore>, ops_per_thread: u64, allow_oom: bool) {
    let stop = Arc::new(AtomicBool::new(false));
    // Budget watcher: samples the gauge as fast as it can while the
    // worker threads churn.
    let budget = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                max_seen = max_seen.max(store.stats().resident_bytes);
            }
            max_seen
        })
    };
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(t + 1);
            let mut out = vec![0u8; PAGE];
            for i in 0..ops_per_thread {
                let key = rng.next_u64() % KEYS;
                match rng.next_u64() % 10 {
                    // 50% puts keep the store full and churning.
                    0..=4 => match store.put(key, &page_for(key)) {
                        Ok(()) => {}
                        Err(StoreError::OutOfMemory) if allow_oom => {}
                        Err(e) => panic!("put({key}) failed: {e}"),
                    },
                    5..=7 => {
                        if store.get(key, &mut out).unwrap() {
                            assert_eq!(out, page_for(key), "key {key} corrupted");
                        }
                    }
                    8 => {
                        store.remove(key);
                    }
                    _ => {
                        if i % 64 == 0 {
                            store.flush().unwrap();
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let max_seen = budget.join().unwrap();
    let limit = store.stats().resident_bytes.max(max_seen);
    assert!(
        limit <= 48 * 1024 * 1024,
        "sanity: observed resident {limit}"
    );
}

#[test]
fn stress_in_memory_unbounded() {
    // Budget far above working set: no eviction, pure lock-striping churn.
    let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(48 << 20)));
    hammer(Arc::clone(&store), 4000, false);
    // Every surviving key must still round-trip.
    let mut out = vec![0u8; PAGE];
    for key in 0..KEYS {
        if store.get(key, &mut out).unwrap() {
            assert_eq!(out, page_for(key), "final key {key}");
        }
    }
    let s = store.stats();
    assert!(s.resident_bytes <= 48 << 20);
    assert_eq!(s.resident_bytes, s.memory_bytes);
}

#[test]
fn stress_spill_under_budget_pressure() {
    let dir = std::env::temp_dir().join(format!("ccstore-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spill.bin");
    const BUDGET: usize = 256 * 1024; // a few dozen compressed pages
    {
        let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(BUDGET, &path)));
        let stop = Arc::new(AtomicBool::new(false));
        let watcher = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut max_seen = 0u64;
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    max_seen = max_seen.max(store.stats().resident_bytes);
                    samples += 1;
                }
                (max_seen, samples)
            })
        };
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xC0FFEE + t);
                let mut out = vec![0u8; PAGE];
                for i in 0..1500u64 {
                    let key = rng.next_u64() % KEYS;
                    match rng.next_u64() % 8 {
                        0..=3 => store.put(key, &page_for(key)).unwrap(),
                        4..=5 => {
                            if store.get(key, &mut out).unwrap() {
                                assert_eq!(out, page_for(key), "key {key} corrupted");
                            }
                        }
                        6 => {
                            store.remove(key);
                        }
                        _ => {
                            if i % 100 == 0 {
                                store.flush().unwrap();
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let (max_seen, samples) = watcher.join().unwrap();
        assert!(samples > 0);
        assert!(
            max_seen <= BUDGET as u64,
            "budget exceeded: saw {max_seen} resident with budget {BUDGET}"
        );
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.resident_bytes <= BUDGET as u64);
        assert!(s.spilled > 0, "pressure test never spilled: {s:?}");
        // Full final verification through every residence class.
        let mut out = vec![0u8; PAGE];
        for key in 0..KEYS {
            if store.get(key, &mut out).unwrap() {
                assert_eq!(out, page_for(key), "final key {key}");
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Budget + integrity under *aggressive compaction*: tiny spill batches
/// and a low dead ratio make the writer run GC constantly while eight
/// threads churn replaces and removes, so extents relocate under live
/// readers. The budget gauge must never exceed the budget — including
/// during compaction passes — and same-filled pages (mixed into the
/// workload) must round-trip through their pattern encoding.
#[test]
fn stress_gc_churn_with_same_filled() {
    let dir = std::env::temp_dir().join(format!("ccstore-gcstress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spill.bin");
    const BUDGET: usize = 128 * 1024;
    {
        let store = Arc::new(CompressedStore::new(
            StoreConfig::with_spill(BUDGET, &path)
                .with_spill_batch_bytes(4 * 1024)
                .with_gc_dead_ratio(0.25),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let watcher = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut max_seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    max_seen = max_seen.max(store.stats().resident_bytes);
                }
                max_seen
            })
        };
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0x6C_5EED + t);
                let mut out = vec![0u8; PAGE];
                for i in 0..1200u64 {
                    let key = rng.next_u64() % KEYS;
                    match rng.next_u64() % 10 {
                        // Heavy replace churn feeds dead bytes to GC.
                        0..=4 => store.put(key, &page_for(key)).unwrap(),
                        // Every 10th op stores a same-filled page under a
                        // dedicated key range so both encodings coexist.
                        5 => {
                            let sf = KEYS + (key % 16);
                            store.put(sf, &vec![(sf % 251) as u8; PAGE]).unwrap();
                        }
                        6..=7 => {
                            if store.get(key, &mut out).unwrap() {
                                assert_eq!(out, page_for(key), "key {key} corrupted");
                            }
                        }
                        8 => {
                            let sf = KEYS + (key % 16);
                            if store.get(sf, &mut out).unwrap() {
                                assert_eq!(
                                    out,
                                    vec![(sf % 251) as u8; PAGE],
                                    "same-filled key {sf} corrupted"
                                );
                            }
                        }
                        _ => {
                            store.remove(key);
                            if i % 200 == 0 {
                                store.flush().unwrap();
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let max_seen = watcher.join().unwrap();
        assert!(
            max_seen <= BUDGET as u64,
            "budget exceeded during GC churn: saw {max_seen} with budget {BUDGET}"
        );
        store.flush().unwrap();
        let s = store.stats();
        assert!(s.spilled > 0, "GC stress never spilled: {s:?}");
        assert!(s.gc_runs > 0, "GC never ran under replace churn: {s:?}");
        assert!(s.same_filled > 0, "same-filled path unexercised: {s:?}");
        // GC detail telemetry: under this much replace churn compaction
        // must physically move live extents, and every pass is timed.
        assert!(
            s.gc_bytes_relocated > 0,
            "GC ran but relocated no bytes: {s:?}"
        );
        assert!(s.gc_pause_max_ns > 0, "GC pauses went unmeasured: {s:?}");
        // One pause sample per completed GC pass. `>=` rather than `==`:
        // the writer may legally finish one more pass between the two
        // reads.
        let gc_pause = store.telemetry_snapshot().op("gc_pause").unwrap();
        assert!(
            gc_pause.count >= s.gc_runs,
            "pause samples ({}) < GC runs ({})",
            gc_pause.count,
            s.gc_runs
        );
        assert!(gc_pause.max >= s.gc_pause_max_ns);
        // The file stays bounded by the live working set: thousands of
        // replace-spills flowed through it (several × KEYS × PAGE bytes),
        // so without reclamation it would dwarf the key space. With GC it
        // cannot exceed one uncompressed copy of every key.
        assert!(
            s.bytes_on_spill < (KEYS + 16) * PAGE as u64,
            "spill file unbounded under churn: {s:?}"
        );
        let mut out = vec![0u8; PAGE];
        for key in 0..KEYS {
            if store.get(key, &mut out).unwrap() {
                assert_eq!(out, page_for(key), "final key {key}");
            }
        }
        for sf in KEYS..KEYS + 16 {
            if store.get(sf, &mut out).unwrap() {
                assert_eq!(out, vec![(sf % 251) as u8; PAGE], "final same-filled {sf}");
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

/// Budget + integrity with the *background demoter* running flat out: a
/// 1 ms pass interval, one-op idle windows, and zero pressure floors
/// make it constantly compress hot pages down and push aged warm pages
/// to the spill file while eight threads put, get, remove, and flush,
/// and aggressive GC settings keep the writer compacting underneath.
/// The budget gauge must never exceed the budget at any sampled instant
/// — the demoter only ever *frees* memory — and every get must return
/// exact bytes whatever tier it caught the page in.
#[test]
fn stress_tiering_with_background_demoter() {
    let dir = std::env::temp_dir().join(format!("ccstore-tierstress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spill.bin");
    const BUDGET: usize = 256 * 1024;
    {
        let policy = RecencyCompressibility {
            hot_idle: 1,
            warm_idle: 2,
            promote_window: u64::MAX,
            max_promote_pressure_pct: 100,
            hot_demote_pressure_pct: 0,
            warm_demote_pressure_pct: 0,
        };
        let store = Arc::new(CompressedStore::new(
            StoreConfig::with_spill(BUDGET, &path)
                .with_tier_policy(Arc::new(policy))
                .with_demote_interval(Duration::from_millis(1))
                .with_spill_batch_bytes(8 * 1024)
                .with_gc_dead_ratio(0.25),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let watcher = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut max_seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    max_seen = max_seen.max(store.stats().resident_bytes);
                }
                max_seen
            })
        };
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0x7E1E_D0AA + t);
                let mut out = vec![0u8; PAGE];
                for i in 0..1500u64 {
                    let key = rng.next_u64() % KEYS;
                    match rng.next_u64() % 10 {
                        0..=4 => store.put(key, &page_for(key)).unwrap(),
                        // Get bursts so re-accessed pages cross the
                        // promotion bar while the demoter pulls the
                        // other way.
                        5..=7 => {
                            for _ in 0..2 {
                                if store.get(key, &mut out).unwrap() {
                                    assert_eq!(out, page_for(key), "key {key} corrupted");
                                }
                            }
                        }
                        8 => {
                            store.remove(key);
                        }
                        _ => {
                            if i % 100 == 0 {
                                store.flush().unwrap();
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let max_seen = watcher.join().unwrap();
        assert!(
            max_seen <= BUDGET as u64,
            "budget exceeded under demoter churn: saw {max_seen} with budget {BUDGET}"
        );
        store.flush().unwrap();
        let s = store.stats();
        // Every tier mechanism must actually have fired under this load.
        assert!(s.puts_hot > 0, "no hot placements: {s:?}");
        assert!(s.promotions > 0, "no promotions: {s:?}");
        assert!(s.demoted_hot > 0, "demoter never demoted hot: {s:?}");
        assert!(s.demoted_warm > 0, "demoter never spilled warm: {s:?}");
        assert!(s.demoter_passes > 0, "demoter never ran: {s:?}");
        assert!(s.spilled > 0, "pressure never spilled: {s:?}");
        let mut out = vec![0u8; PAGE];
        for key in 0..KEYS {
            if store.get(key, &mut out).unwrap() {
                assert_eq!(out, page_for(key), "final key {key}");
            }
        }
        store.shutdown();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
