//! Property tests of the standalone `CompressedStore` against a model.

use cc_core::store::{CompressedStore, StoreConfig};
use cc_util::SplitMix64;
use proptest::prelude::*;
use std::collections::HashMap;

const PAGE: usize = 1024; // smaller pages keep the cases fast

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, seed: u16, noisy: bool },
    Get { key: u8 },
    Remove { key: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>(), any::<bool>()).prop_map(|(key, seed, noisy)| Op::Put {
            key,
            seed,
            noisy
        }),
        any::<u8>().prop_map(|key| Op::Get { key }),
        any::<u8>().prop_map(|key| Op::Remove { key }),
    ]
}

fn page_for(seed: u16, noisy: bool) -> Vec<u8> {
    if noisy {
        let mut rng = SplitMix64::new(seed as u64);
        (0..PAGE).map(|_| rng.next_u64() as u8).collect()
    } else {
        let mut p = vec![0u8; PAGE];
        for (i, b) in p.iter_mut().enumerate() {
            *b = ((seed as usize + i / 31) % 251) as u8;
        }
        p
    }
}

fn run_ops(store: &CompressedStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    let mut out = vec![0u8; PAGE];
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { key, seed, noisy } => {
                let page = page_for(seed, noisy);
                store.put(key as u64, &page).unwrap();
                model.insert(key, page);
            }
            Op::Get { key } => {
                let found = store.get(key as u64, &mut out).unwrap();
                match model.get(&key) {
                    Some(expect) => {
                        prop_assert!(found, "op {i}: key {key} lost");
                        prop_assert_eq!(&out, expect, "op {} key {} corrupted", i, key);
                    }
                    None => prop_assert!(!found, "op {i}: phantom key {key}"),
                }
            }
            Op::Remove { key } => {
                let existed = store.remove(key as u64);
                prop_assert_eq!(existed, model.remove(&key).is_some(), "op {}", i);
            }
        }
    }
    // Final verification of every key.
    for (key, expect) in &model {
        let found = store.get(*key as u64, &mut out).unwrap();
        prop_assert!(found, "final: key {key} lost");
        prop_assert_eq!(&out, expect, "final key {} corrupted", key);
    }
    prop_assert_eq!(store.len(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unbounded in-memory store matches the model exactly.
    #[test]
    fn in_memory_matches_model(ops in proptest::collection::vec(op(), 1..150)) {
        let store = CompressedStore::new(StoreConfig::in_memory(64 << 20));
        run_ops(&store, &ops)?;
    }

    /// A tightly budgeted store with a spill file still matches the model:
    /// every path (memory hit, mid-spill hit, disk hit) returns exact data.
    #[test]
    fn spilling_store_matches_model(ops in proptest::collection::vec(op(), 1..150)) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ccstore-prop-{}-{:x}.bin",
            std::process::id(),
            // Distinct file per case: hash the op count and first op debug.
            ops.len() as u64 ^ (std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64)
        ));
        {
            // Budget of ~4 compressed pages forces constant spilling.
            let store = CompressedStore::new(StoreConfig::with_spill(4 * PAGE, &path));
            run_ops(&store, &ops)?;
        }
        let _ = std::fs::remove_file(&path);
    }
}
