//! Property tests of the standalone `CompressedStore` against a model.

use cc_compress::CodecPolicy;
use cc_core::store::{CompressedStore, StoreConfig};
use cc_util::SplitMix64;
use proptest::prelude::*;
use std::collections::HashMap;

const PAGE: usize = 1024; // smaller pages keep the cases fast

#[derive(Debug, Clone, Copy)]
enum Fill {
    /// Compressible text-like content.
    Text,
    /// Incompressible noise (exercises the stored-raw path).
    Noise,
    /// A single repeated word (exercises the same-filled fast path).
    Same,
    /// 8-byte words clustered near one base (exercises the BDI codec
    /// under the default adaptive policy).
    Words,
}

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, seed: u16, fill: Fill },
    Get { key: u8 },
    Remove { key: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    let fill = prop_oneof![
        3 => Just(Fill::Text),
        2 => Just(Fill::Noise),
        1 => Just(Fill::Same),
        2 => Just(Fill::Words),
    ];
    prop_oneof![
        3 => (any::<u8>(), any::<u16>(), fill).prop_map(|(key, seed, fill)| Op::Put {
            key,
            seed,
            fill
        }),
        1 => any::<u8>().prop_map(|key| Op::Get { key }),
        1 => any::<u8>().prop_map(|key| Op::Remove { key }),
    ]
}

fn page_for(seed: u16, fill: Fill) -> Vec<u8> {
    match fill {
        Fill::Noise => {
            let mut rng = SplitMix64::new(seed as u64);
            (0..PAGE).map(|_| rng.next_u64() as u8).collect()
        }
        Fill::Text => {
            let mut p = vec![0u8; PAGE];
            for (i, b) in p.iter_mut().enumerate() {
                *b = ((seed as usize + i / 31) % 251) as u8;
            }
            p
        }
        Fill::Same => {
            let word = (seed as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .to_ne_bytes();
            word.iter().copied().cycle().take(PAGE).collect()
        }
        Fill::Words => {
            let base = 0x5000_0000_0000u64 ^ ((seed as u64) << 24);
            let mut p = Vec::with_capacity(PAGE);
            for i in 0..(PAGE as u64 / 8) {
                p.extend_from_slice(&(base + (i * 7 + seed as u64) % 200).to_le_bytes());
            }
            p
        }
    }
}

fn run_ops(store: &CompressedStore, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    let mut out = vec![0u8; PAGE];
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { key, seed, fill } => {
                let page = page_for(seed, fill);
                store.put(key as u64, &page).unwrap();
                model.insert(key, page);
            }
            Op::Get { key } => {
                let found = store.get(key as u64, &mut out).unwrap();
                match model.get(&key) {
                    Some(expect) => {
                        prop_assert!(found, "op {i}: key {key} lost");
                        prop_assert_eq!(&out, expect, "op {} key {} corrupted", i, key);
                    }
                    None => prop_assert!(!found, "op {i}: phantom key {key}"),
                }
            }
            Op::Remove { key } => {
                let existed = store.remove(key as u64);
                prop_assert_eq!(existed, model.remove(&key).is_some(), "op {}", i);
            }
        }
    }
    // Final verification of every key.
    for (key, expect) in &model {
        let found = store.get(*key as u64, &mut out).unwrap();
        prop_assert!(found, "final: key {key} lost");
        prop_assert_eq!(&out, expect, "final key {} corrupted", key);
    }
    prop_assert_eq!(store.len(), model.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unbounded in-memory store matches the model exactly.
    #[test]
    fn in_memory_matches_model(ops in proptest::collection::vec(op(), 1..150)) {
        let store = CompressedStore::new(StoreConfig::in_memory(64 << 20));
        run_ops(&store, &ops)?;
    }

    /// A tightly budgeted store with a spill file still matches the model:
    /// every path (memory hit, mid-spill hit, disk hit) returns exact data.
    #[test]
    fn spilling_store_matches_model(ops in proptest::collection::vec(op(), 1..150)) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ccstore-prop-{}-{:x}.bin",
            std::process::id(),
            // Distinct file per case: hash the op count and first op debug.
            ops.len() as u64 ^ (std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64)
        ));
        {
            // Budget of ~4 compressed pages forces constant spilling.
            let store = CompressedStore::new(StoreConfig::with_spill(4 * PAGE, &path));
            run_ops(&store, &ops)?;
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Every codec policy matches the model: whatever lzrw1-only /
    /// bdi-only / adaptive selects per page, gets return exact bytes
    /// across memory and spill tiers.
    #[test]
    fn every_codec_policy_matches_model(
        ops in proptest::collection::vec(op(), 1..100),
        policy_idx in 0usize..3,
    ) {
        let policy = CodecPolicy::all()[policy_idx];
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ccstore-polprop-{}-{:x}.bin",
            std::process::id(),
            ops.len() as u64 ^ (std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64)
        ));
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * PAGE, &path).with_codec_policy(policy),
            );
            run_ops(&store, &ops)?;
        }
        let _ = std::fs::remove_file(&path);
    }

    /// GC compaction round-trip: aggressive dead-ratio + tiny batches make
    /// the writer compact constantly while random put/remove/replace
    /// interleavings churn the file, and the full readback must still
    /// match the model. Same-filled pages ride along so pattern entries
    /// coexist with relocating extents.
    #[test]
    fn gc_churn_matches_model(ops in proptest::collection::vec(op(), 50..250)) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ccstore-gcprop-{}-{:x}.bin",
            std::process::id(),
            ops.len() as u64 ^ (std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos() as u64)
        ));
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * PAGE, &path)
                    .with_spill_batch_bytes(2 * PAGE)
                    .with_gc_dead_ratio(0.2),
            );
            run_ops(&store, &ops)?;
            // The file must not have accreted all dead extents: under a
            // tight budget it is bounded by the live set plus slack for
            // regions whose dead fraction is still below the trigger.
            store.flush().unwrap();
            let s = store.stats();
            let live_upper = (store.len() as u64 + 8) * PAGE as u64;
            prop_assert!(
                s.bytes_on_spill <= live_upper * 6,
                "spill file unbounded: {} bytes for {} live keys ({s:?})",
                s.bytes_on_spill,
                store.len()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Same-filled detection is exact: a page is stored via the pattern
    /// path iff it is one repeated 8-byte word, and either way it
    /// round-trips. Pages are deliberately *not* word-multiples here
    /// (PAGE-3) and near-patterns flip one byte at a random offset.
    #[test]
    fn same_filled_edge_cases(
        word in any::<u64>(),
        flip in proptest::option::of(0..(PAGE - 3)),
    ) {
        const ODD: usize = PAGE - 3;
        let mut page: Vec<u8> = word
            .to_ne_bytes()
            .iter()
            .copied()
            .cycle()
            .take(ODD)
            .collect();
        // One flipped byte always breaks the pattern: the base is exactly
        // repeating, so the flipped word (or tail) no longer matches.
        let mut flipped = false;
        if let Some(i) = flip {
            page[i] ^= 0x40;
            flipped = true;
        }
        let store = CompressedStore::new(StoreConfig::in_memory(64 << 20));
        store.put(1, &page).unwrap();
        let s = store.stats();
        if flipped {
            prop_assert_eq!(s.same_filled, 0, "near-pattern wrongly elided");
            prop_assert_eq!(s.compressed + s.stored_raw, 1);
        } else {
            prop_assert_eq!(s.same_filled, 1, "repeated word not detected");
            prop_assert_eq!(s.compressed + s.stored_raw, 0);
            prop_assert_eq!(s.resident_bytes, 0);
        }
        let mut out = vec![0u8; ODD];
        prop_assert!(store.get(1, &mut out).unwrap());
        prop_assert_eq!(&out, &page);
    }
}
