//! Tier placement policies: hot (uncompressed-resident), warm
//! (compressed-in-memory), cold (spilled to the backing file).
//!
//! The paper trades memory between exactly two pools — uncompressed
//! pages and one compressed cache ahead of disk — using a fixed 4:3
//! benefit threshold and a biased global LRU. This module makes that
//! trade *per entry* and *online*: a [`TierPolicy`] looks at a page's
//! access recency (a generation-counter age, not wall-clock time), its
//! measured compressibility (the sampled BDI probe recorded at put
//! time), and current budget pressure, and decides where the page
//! should live right now. The store consults the policy at four points:
//!
//! - **admission** — after compressing a put, [`TierPolicy::admit`]
//!   picks hot or warm for the fresh bytes;
//! - **re-put** — [`TierPolicy::keep_hot`] lets an overwrite of a
//!   recently touched hot page skip the compressor entirely;
//! - **re-access** — [`TierPolicy::promote`] decides whether a warm or
//!   cold hit is decompressed back into the hot tier;
//! - **aging** — the background demoter uses [`TierPolicy::hot_idle`] /
//!   [`TierPolicy::warm_idle`] plus the pressure knobs to compress aged
//!   hot pages and spill aged warm pages.
//!
//! Ages are measured in store operations (every put and get bumps a
//! global clock), so policies behave identically under test, bench,
//! and replay — no timer flakiness.

use std::fmt::Debug;
use std::sync::Arc;

/// Where a freshly written page should live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierDecision {
    /// Keep the page uncompressed in memory; a get is a memcpy.
    Hot,
    /// Keep the sealed (compressed or stored-raw) bytes in memory.
    Warm,
}

/// Everything a policy may consult for one placement decision. Built by
/// the store from per-entry metadata it already tracks — policies never
/// touch the page bytes themselves.
#[derive(Debug, Clone, Copy)]
pub struct PlacementQuery {
    /// Key of the page being placed.
    pub key: u64,
    /// Uncompressed page size in bytes.
    pub page_len: usize,
    /// Sealed size in bytes (compressed form, or page size + 1 when the
    /// threshold rejected compression and the bytes are stored raw).
    pub sealed_len: usize,
    /// Whether the compression threshold admitted the compressed form.
    /// `false` means the page is effectively incompressible under the
    /// configured threshold — the probe-driven admission hint.
    pub admitted: bool,
    /// Operations since this key was last touched (`u64::MAX` for a key
    /// the store has never seen).
    pub age: u64,
    /// Gets served for this key since its last put, including the one
    /// being decided when called from the get path.
    pub gets: u32,
    /// Whether the key's previous residence was the hot tier.
    pub was_hot: bool,
    /// Current budget pressure: resident bytes as a percentage of the
    /// memory budget, saturated to 100.
    pub pressure_pct: u8,
}

/// A placement policy: the store asks it where pages should live and
/// when the background demoter should move them. Implementations must
/// be cheap — `admit`/`promote` run under the put/get hot path — and
/// stateless per call (all inputs arrive in the [`PlacementQuery`]).
pub trait TierPolicy: Send + Sync + Debug {
    /// Stable identifier used in benches and config (`kebab-case`).
    fn name(&self) -> &'static str;

    /// Tier for a freshly compressed put.
    fn admit(&self, q: &PlacementQuery) -> TierDecision;

    /// Whether an overwrite of an existing hot entry may keep the page
    /// hot *without* recompressing. Only consulted when
    /// [`TierPolicy::may_keep_hot`] is `true`.
    fn keep_hot(&self, _q: &PlacementQuery) -> bool {
        false
    }

    /// Capability flag: when `false` the put path skips the extra shard
    /// probe that `keep_hot` would need, keeping flat policies at
    /// exactly their pre-tiering cost.
    fn may_keep_hot(&self) -> bool {
        false
    }

    /// Whether a warm or cold hit should be decompressed back into the
    /// hot tier. Promotion never evicts: the store only honors it when
    /// the extra bytes fit the budget outright.
    fn promote(&self, _q: &PlacementQuery) -> bool {
        false
    }

    /// Age (in operations) past which the demoter compresses a hot
    /// page down to warm. `u64::MAX` disables hot aging.
    fn hot_idle(&self) -> u64 {
        u64::MAX
    }

    /// Age (in operations) past which the demoter spills a warm page
    /// to the cold tier. `u64::MAX` disables warm aging.
    fn warm_idle(&self) -> u64 {
        u64::MAX
    }

    /// Budget-pressure floor (percent) below which the demoter leaves
    /// hot pages alone: no point compressing when memory is plentiful.
    fn hot_demote_pressure_pct(&self) -> u8 {
        50
    }

    /// Budget-pressure floor (percent) below which the demoter leaves
    /// warm pages alone.
    fn warm_demote_pressure_pct(&self) -> u8 {
        85
    }

    /// Whether this policy needs the background demoter thread at all.
    /// Policies with both idles disabled never age anything, so the
    /// store skips spawning the thread.
    fn wants_demoter(&self) -> bool {
        self.hot_idle() != u64::MAX || self.warm_idle() != u64::MAX
    }
}

/// PR 1–8 behavior, verbatim: every admitted page lives compressed in
/// memory, nothing is ever hot, nothing is promoted, and no demoter
/// thread runs. The baseline arm for tier sweeps and the pinned policy
/// for codec-ratio benchmarks (where promotions would pollute the
/// measurement).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressAll;

impl TierPolicy for CompressAll {
    fn name(&self) -> &'static str {
        "compress-all"
    }

    fn admit(&self, _q: &PlacementQuery) -> TierDecision {
        TierDecision::Warm
    }
}

/// The paper's 4:3 rule made per-entry: a page whose compressed form
/// clears the configured benefit threshold lives compressed (warm); a
/// page that does not is kept uncompressed (hot) instead of paying
/// sealed-raw overhead for nothing. No recency, no promotion, no
/// background aging — placement is decided once, at put time, exactly
/// like the paper's admission test.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperThreshold;

impl TierPolicy for PaperThreshold {
    fn name(&self) -> &'static str {
        "paper-threshold"
    }

    fn admit(&self, q: &PlacementQuery) -> TierDecision {
        if q.admitted {
            TierDecision::Warm
        } else {
            TierDecision::Hot
        }
    }
}

/// The default adaptive policy: compressibility decides admission,
/// recency decides movement.
///
/// - Incompressible pages are admitted hot (as [`PaperThreshold`]);
///   compressible pages start warm.
/// - A warm or cold page re-accessed twice within [`promote_window`]
///   operations is promoted back to hot — unless memory pressure is
///   already past [`max_promote_pressure_pct`].
/// - An overwrite of a hot page touched within [`hot_idle`] stays hot
///   and skips the compressor.
/// - The background demoter compresses hot pages idle for
///   [`hot_idle`] operations once pressure reaches
///   [`hot_demote_pressure_pct`], and spills warm pages idle for
///   [`warm_idle`] once pressure reaches [`warm_demote_pressure_pct`].
///
/// [`promote_window`]: RecencyCompressibility::promote_window
/// [`max_promote_pressure_pct`]: RecencyCompressibility::max_promote_pressure_pct
/// [`hot_idle`]: RecencyCompressibility::hot_idle
/// [`hot_demote_pressure_pct`]: RecencyCompressibility::hot_demote_pressure_pct
/// [`warm_idle`]: RecencyCompressibility::warm_idle
/// [`warm_demote_pressure_pct`]: RecencyCompressibility::warm_demote_pressure_pct
#[derive(Debug, Clone, Copy)]
pub struct RecencyCompressibility {
    /// Hot pages idle this many operations are demoted to warm.
    pub hot_idle: u64,
    /// Warm pages idle this many operations are spilled cold.
    pub warm_idle: u64,
    /// A second access within this many operations promotes to hot.
    pub promote_window: u64,
    /// No promotions once pressure exceeds this percentage.
    pub max_promote_pressure_pct: u8,
    /// Demoter ignores hot pages below this pressure percentage.
    pub hot_demote_pressure_pct: u8,
    /// Demoter ignores warm pages below this pressure percentage.
    pub warm_demote_pressure_pct: u8,
}

impl Default for RecencyCompressibility {
    fn default() -> Self {
        RecencyCompressibility {
            hot_idle: 8192,
            warm_idle: 32768,
            promote_window: 4096,
            max_promote_pressure_pct: 90,
            hot_demote_pressure_pct: 50,
            warm_demote_pressure_pct: 85,
        }
    }
}

impl TierPolicy for RecencyCompressibility {
    fn name(&self) -> &'static str {
        "recency"
    }

    fn admit(&self, q: &PlacementQuery) -> TierDecision {
        if q.admitted {
            TierDecision::Warm
        } else {
            TierDecision::Hot
        }
    }

    fn keep_hot(&self, q: &PlacementQuery) -> bool {
        q.was_hot && q.age < self.hot_idle
    }

    fn may_keep_hot(&self) -> bool {
        true
    }

    fn promote(&self, q: &PlacementQuery) -> bool {
        q.gets >= 2 && q.age < self.promote_window && q.pressure_pct < self.max_promote_pressure_pct
    }

    fn hot_idle(&self) -> u64 {
        self.hot_idle
    }

    fn warm_idle(&self) -> u64 {
        self.warm_idle
    }

    fn hot_demote_pressure_pct(&self) -> u8 {
        self.hot_demote_pressure_pct
    }

    fn warm_demote_pressure_pct(&self) -> u8 {
        self.warm_demote_pressure_pct
    }
}

/// The default policy a store gets when none is configured.
pub fn default_policy() -> Arc<dyn TierPolicy> {
    Arc::new(RecencyCompressibility::default())
}

/// Look up a policy by its [`TierPolicy::name`]; `None` for unknown
/// names.
pub fn by_name(name: &str) -> Option<Arc<dyn TierPolicy>> {
    match name {
        "compress-all" => Some(Arc::new(CompressAll)),
        "paper-threshold" => Some(Arc::new(PaperThreshold)),
        "recency" => Some(Arc::new(RecencyCompressibility::default())),
        _ => None,
    }
}

/// All sweepable policies at their default parameters, for benches.
pub fn all() -> Vec<Arc<dyn TierPolicy>> {
    vec![
        Arc::new(CompressAll),
        Arc::new(PaperThreshold),
        Arc::new(RecencyCompressibility::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> PlacementQuery {
        PlacementQuery {
            key: 7,
            page_len: 4096,
            sealed_len: 1024,
            admitted: true,
            age: 10,
            gets: 0,
            was_hot: false,
            pressure_pct: 0,
        }
    }

    #[test]
    fn compress_all_reproduces_flat_store() {
        let p = CompressAll;
        let mut q = query();
        q.admitted = false;
        assert_eq!(p.admit(&q), TierDecision::Warm);
        q.gets = 100;
        assert!(!p.promote(&q));
        assert!(!p.keep_hot(&q) && !p.may_keep_hot());
        assert!(!p.wants_demoter());
    }

    #[test]
    fn paper_threshold_splits_on_admission_only() {
        let p = PaperThreshold;
        let mut q = query();
        assert_eq!(p.admit(&q), TierDecision::Warm);
        q.admitted = false;
        assert_eq!(p.admit(&q), TierDecision::Hot);
        q.gets = 100;
        assert!(!p.promote(&q));
        assert!(!p.wants_demoter());
    }

    #[test]
    fn recency_promotes_only_recent_reaccess_under_pressure_cap() {
        let p = RecencyCompressibility::default();
        let mut q = query();
        q.gets = 2;
        assert!(p.promote(&q));
        q.gets = 1;
        assert!(!p.promote(&q), "first get since put must not promote");
        q.gets = 2;
        q.age = p.promote_window;
        assert!(!p.promote(&q), "stale re-access must not promote");
        q.age = 10;
        q.pressure_pct = p.max_promote_pressure_pct;
        assert!(!p.promote(&q), "promotion must yield under pressure");
    }

    #[test]
    fn recency_keep_hot_respects_idle_window() {
        let p = RecencyCompressibility::default();
        let mut q = query();
        q.was_hot = true;
        q.age = p.hot_idle - 1;
        assert!(p.may_keep_hot() && p.keep_hot(&q));
        q.age = p.hot_idle;
        assert!(!p.keep_hot(&q));
        q.age = 1;
        q.was_hot = false;
        assert!(!p.keep_hot(&q), "only an existing hot entry stays hot");
        assert!(p.wants_demoter());
    }

    #[test]
    fn registry_names_round_trip() {
        for p in all() {
            let looked_up = by_name(p.name()).expect("every swept policy is registered");
            assert_eq!(looked_up.name(), p.name());
        }
        assert!(by_name("no-such-policy").is_none());
        assert_eq!(default_policy().name(), "recency");
    }
}
