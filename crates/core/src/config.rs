//! Configuration of the compression cache mechanism.

use cc_compress::ThresholdPolicy;

/// Tunables of the cache mechanism, with the paper's values as defaults.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// VM page size in bytes (4 KB on the DECstation).
    pub page_bytes: usize,
    /// Fragment size compressed pages are padded to on backing store
    /// (§4.3: "pads each compressed page to a uniform fragment size
    /// (currently 1 Kbyte)").
    pub fragment_bytes: usize,
    /// Bytes of compressed pages written to backing store in one batch
    /// (§4.3: "Currently 32 Kbytes of compressed pages are written at
    /// once"). Also the swap cluster size.
    pub cluster_bytes: usize,
    /// File-system block size on the backing store (4 KB).
    pub block_bytes: usize,
    /// Whether compressed pages may span file-block boundaries (§4.3:
    /// "The system is parameterized to determine whether pages are
    /// allowed to span file block boundaries"). Spanning reduces
    /// fragmentation but can turn a 4 KB page-in read into an 8 KB one.
    pub allow_span: bool,
    /// Keep-compressed threshold (§5.2's 4:3).
    pub threshold: ThresholdPolicy,
    /// Maximum number of frames the cache may ever map (the size of its
    /// kernel VA range, fixed at boot in Sprite). Usually the machine's
    /// whole user frame count.
    pub max_slots: usize,
    /// Per-compressed-page header, bytes (§4.4: 36).
    pub entry_header_bytes: usize,
    /// Per-mapped-frame kernel header, bytes (§4.4: 24).
    pub frame_header_bytes: usize,
    /// On a swap read, also install every other live compressed page found
    /// in the file blocks that had to be read anyway (§4.3's locality
    /// argument for spanning reads). Costs no extra I/O.
    pub swap_readahead: bool,
}

impl CacheConfig {
    /// The paper's configuration for a cache over `max_slots` frames.
    pub fn paper(max_slots: usize) -> Self {
        CacheConfig {
            page_bytes: 4096,
            fragment_bytes: 1024,
            cluster_bytes: 32 * 1024,
            block_bytes: 4096,
            allow_span: true,
            threshold: ThresholdPolicy::default(),
            max_slots,
            entry_header_bytes: 36,
            frame_header_bytes: 24,
            swap_readahead: true,
        }
    }

    /// Fragments per cluster.
    pub fn frags_per_cluster(&self) -> usize {
        self.cluster_bytes / self.fragment_bytes
    }

    /// Fragments per file block.
    pub fn frags_per_block(&self) -> usize {
        self.block_bytes / self.fragment_bytes
    }

    /// File blocks per cluster.
    pub fn blocks_per_cluster(&self) -> usize {
        self.cluster_bytes / self.block_bytes
    }

    /// Number of fragments needed for `data_len` bytes.
    pub fn frags_for(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.fragment_bytes).max(1)
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if sizes do not divide evenly or are zero.
    pub fn validate(&self) {
        assert!(self.page_bytes > 0 && self.fragment_bytes > 0);
        assert!(
            self.block_bytes.is_multiple_of(self.fragment_bytes),
            "fragments must divide blocks"
        );
        assert!(
            self.cluster_bytes.is_multiple_of(self.block_bytes),
            "blocks must divide clusters"
        );
        assert!(self.max_slots > 0, "cache needs at least one slot");
        assert!(
            self.fragment_bytes <= self.page_bytes,
            "fragment larger than a page defeats packing"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CacheConfig::paper(1024);
        c.validate();
        assert_eq!(c.frags_per_cluster(), 32);
        assert_eq!(c.frags_per_block(), 4);
        assert_eq!(c.blocks_per_cluster(), 8);
    }

    #[test]
    fn frags_for_rounds_up() {
        let c = CacheConfig::paper(1);
        assert_eq!(c.frags_for(1), 1);
        assert_eq!(c.frags_for(1024), 1);
        assert_eq!(c.frags_for(1025), 2);
        assert_eq!(c.frags_for(4096), 4);
        assert_eq!(c.frags_for(0), 1, "even an empty page occupies a fragment");
    }

    #[test]
    #[should_panic(expected = "fragments must divide blocks")]
    fn bad_fragment_size_panics() {
        let mut c = CacheConfig::paper(1);
        c.fragment_bytes = 1000;
        c.validate();
    }
}
