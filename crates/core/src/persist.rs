//! On-disk persistence for the spill tier: superblock, location-map
//! journal, and crash recovery.
//!
//! The spill *data* file holds self-verifying extents (see
//! [`crate::store`]); without a persisted location map it is write-only
//! memory across a restart. This module adds the two structures that make
//! the spill tier warm-restartable:
//!
//! - A **superblock** at the head of the data file: two 128-byte slots,
//!   each CRC-checksummed and carrying a monotonically increasing
//!   sequence number. Writers alternate slots by sequence parity, so a
//!   torn superblock write can only destroy the slot being written — the
//!   other slot still decodes and recovery proceeds from it. The
//!   superblock records the format version, page size, a fingerprint of
//!   the codec set, the clean-shutdown bit, and the journal's epoch /
//!   start / tail.
//! - A **location-map journal** in a sibling file: an append-only stream
//!   of fixed-size records (`key → offset, len, generation, codec`),
//!   group-committed after each durable spill batch, plus tombstones for
//!   removed keys and relocation records for GC moves. Every record is
//!   individually CRC'd and epoch-stamped, so replay stops exactly at a
//!   torn tail or a stale epoch left behind by journal compaction.
//!
//! Recovery ([`recover`]) replays the journal into a per-key latest-wins
//! fold ordered by LSN (the store's spill generation counter, so the
//! on-disk order and the in-memory causal order agree), then — unless the
//! clean bit was set — re-reads and re-verifies every referenced extent's
//! header CRC, falling back to an extent's pre-GC location when the
//! relocated copy is torn. The result is exactly the set of
//! durably-committed entries: torn tails and stale generations are
//! discarded and counted, never served.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

use crate::medium::SpillMedium;
use crate::store::{verify_extent, EXTENT_HEADER};
use cc_util::{crc32, Crc32};

/// Bytes reserved at the head of the spill data file for the superblock
/// region (two slots plus headroom). Extent space starts here; a
/// non-persistent store keeps its historical base of 0.
pub const SUPERBLOCK_RESERVED: u64 = 256;

/// One superblock slot. Two of them fit the reserved region with room to
/// spare for future format growth.
const SB_SLOT: usize = 128;

/// Superblock magic; the low byte is the superblock format version.
const SB_MAGIC: u32 = 0xCC5B_0001;

/// On-disk format version sealed into the superblock (covers the extent
/// header layout and the journal record layout together).
const SB_VERSION: u32 = 1;

/// CRC'd prefix of a slot; the CRC itself sits at `SB_SLOT - 4`.
const SB_CRC_OFFSET: usize = SB_SLOT - 4;

/// Size of one journal record on the file.
pub const JOURNAL_RECORD: usize = 48;

/// CRC'd prefix of a record; the CRC occupies the last 4 bytes.
const JREC_CRC_OFFSET: usize = JOURNAL_RECORD - 4;

/// Journal record kinds. Zero is deliberately invalid so a zero-filled
/// (never-written) region reads as a torn tail, not as a record.
pub(crate) mod jkind {
    /// `key` now lives at `offset` (`len`, `gen`, `codec`, `orig_len`).
    pub const PUT: u8 = 1;
    /// `key` was removed (or its journaled version superseded in
    /// memory); `lsn` orders it against PUTs of the same key.
    pub const TOMB: u8 = 2;
    /// GC moved `key`'s extent (same generation) to a new `offset`.
    pub const RELOC: u8 = 3;
}

/// Fingerprint of the codec set and on-disk format constants. A spill
/// file written under a different codec numbering or extent layout must
/// not be decoded — the fingerprint mismatch rejects it at open.
pub fn codec_fingerprint() -> u32 {
    let mut buf = Vec::with_capacity(64);
    for id in 0u8..=5 {
        let codec = cc_compress::CodecId::from_u8(id).expect("stable codec id list");
        buf.push(id);
        buf.extend_from_slice(codec.name().as_bytes());
    }
    buf.extend_from_slice(&(EXTENT_HEADER as u32).to_le_bytes());
    buf.extend_from_slice(&(JOURNAL_RECORD as u32).to_le_bytes());
    buf.extend_from_slice(&SB_VERSION.to_le_bytes());
    crc32(&buf)
}

/// The decoded superblock: everything recovery needs to find the journal
/// and trust (or scan) the data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Monotonic write sequence; the slot written is `seq % 2`, and the
    /// reader believes the valid slot with the highest sequence.
    pub seq: u64,
    /// The store's fixed page size (0 while nothing has been stored).
    pub page_size: u32,
    /// [`codec_fingerprint`] at write time.
    pub codec_fpr: u32,
    /// Set by an orderly seal after the final batch and its journal
    /// records are durable; recovery on a clean file trusts the journal
    /// outright and skips the extent re-scan.
    pub clean: bool,
    /// Journal epoch; records stamped with any other epoch are dead
    /// (left behind by journal compaction).
    pub epoch: u32,
    /// Byte offset in the journal file where the current epoch's records
    /// begin.
    pub journal_start: u64,
    /// Extent allocation cursor at seal time (authoritative only when
    /// `clean`).
    pub data_cursor: u64,
    /// Journal append position at seal time (authoritative only when
    /// `clean`).
    pub journal_tail: u64,
}

fn encode_superblock(sb: &Superblock) -> [u8; SB_SLOT] {
    let mut buf = [0u8; SB_SLOT];
    buf[0..4].copy_from_slice(&SB_MAGIC.to_le_bytes());
    buf[4..8].copy_from_slice(&SB_VERSION.to_le_bytes());
    buf[8..16].copy_from_slice(&sb.seq.to_le_bytes());
    buf[16..20].copy_from_slice(&sb.page_size.to_le_bytes());
    buf[20..24].copy_from_slice(&sb.codec_fpr.to_le_bytes());
    buf[24..28].copy_from_slice(&(sb.clean as u32).to_le_bytes());
    buf[28..32].copy_from_slice(&sb.epoch.to_le_bytes());
    buf[32..40].copy_from_slice(&sb.journal_start.to_le_bytes());
    buf[40..48].copy_from_slice(&sb.data_cursor.to_le_bytes());
    buf[48..56].copy_from_slice(&sb.journal_tail.to_le_bytes());
    let crc = crc32(&buf[..SB_CRC_OFFSET]);
    buf[SB_CRC_OFFSET..].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_superblock(buf: &[u8]) -> Option<Superblock> {
    if buf.len() < SB_SLOT {
        return None;
    }
    let word = |r: std::ops::Range<usize>| u32::from_le_bytes(buf[r].try_into().expect("4 bytes"));
    let wide = |r: std::ops::Range<usize>| u64::from_le_bytes(buf[r].try_into().expect("8 bytes"));
    if word(0..4) != SB_MAGIC || word(4..8) != SB_VERSION {
        return None;
    }
    if word(SB_CRC_OFFSET..SB_SLOT) != crc32(&buf[..SB_CRC_OFFSET]) {
        return None;
    }
    Some(Superblock {
        seq: wide(8..16),
        page_size: word(16..20),
        codec_fpr: word(20..24),
        clean: word(24..28) & 1 != 0,
        epoch: word(28..32),
        journal_start: wide(32..40),
        data_cursor: wide(40..48),
        journal_tail: wide(48..56),
    })
}

/// Write `sb` to the slot its sequence selects, then flush. Alternating
/// slots by parity means the previous superblock survives a torn write
/// of this one.
pub fn write_superblock(data: &dyn SpillMedium, sb: &Superblock) -> io::Result<()> {
    let slot = (sb.seq % 2) * SB_SLOT as u64;
    data.write_at(&encode_superblock(sb), slot)?;
    data.flush()
}

/// Read both slots and return the valid one with the highest sequence.
pub fn read_superblock(data: &dyn SpillMedium) -> Option<Superblock> {
    let mut buf = [0u8; SB_SLOT * 2];
    // A file shorter than both slots can still hold slot 0.
    if data.read_at(&mut buf, 0).is_err() {
        let mut one = [0u8; SB_SLOT];
        data.read_at(&mut one, 0).ok()?;
        return decode_superblock(&one);
    }
    let a = decode_superblock(&buf[..SB_SLOT]);
    let b = decode_superblock(&buf[SB_SLOT..]);
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.seq >= b.seq { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// One location-map journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JournalRecord {
    pub kind: u8,
    pub lsn: u64,
    pub key: u64,
    pub offset: u64,
    pub len: u32,
    pub orig_len: u32,
    pub codec: u8,
}

impl JournalRecord {
    pub fn tombstone(key: u64, lsn: u64) -> JournalRecord {
        JournalRecord {
            kind: jkind::TOMB,
            lsn,
            key,
            offset: 0,
            len: 0,
            orig_len: 0,
            codec: 0,
        }
    }
}

fn encode_record(rec: &JournalRecord, epoch: u32, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(rec.kind);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&rec.lsn.to_le_bytes());
    out.extend_from_slice(&rec.key.to_le_bytes());
    out.extend_from_slice(&rec.offset.to_le_bytes());
    out.extend_from_slice(&rec.len.to_le_bytes());
    out.extend_from_slice(&rec.orig_len.to_le_bytes());
    out.push(rec.codec);
    out.extend_from_slice(&[0u8; 3]);
    let mut h = Crc32::new();
    h.update(&out[start..start + JREC_CRC_OFFSET]);
    out.extend_from_slice(&h.finish().to_le_bytes());
    debug_assert_eq!(out.len() - start, JOURNAL_RECORD);
}

/// `None` means the bytes are not a record (torn tail, zero fill, or a
/// flipped bit); the returned epoch lets replay detect a stale region.
fn decode_record(buf: &[u8]) -> Option<(JournalRecord, u32)> {
    if buf.len() < JOURNAL_RECORD {
        return None;
    }
    let kind = buf[0];
    if !(jkind::PUT..=jkind::RELOC).contains(&kind) {
        return None;
    }
    let crc = u32::from_le_bytes(buf[JREC_CRC_OFFSET..JOURNAL_RECORD].try_into().expect("4"));
    if crc != crc32(&buf[..JREC_CRC_OFFSET]) {
        return None;
    }
    let epoch = u32::from_le_bytes(buf[4..8].try_into().expect("4"));
    Some((
        JournalRecord {
            kind,
            lsn: u64::from_le_bytes(buf[8..16].try_into().expect("8")),
            key: u64::from_le_bytes(buf[16..24].try_into().expect("8")),
            offset: u64::from_le_bytes(buf[24..32].try_into().expect("8")),
            len: u32::from_le_bytes(buf[32..36].try_into().expect("4")),
            orig_len: u32::from_le_bytes(buf[36..40].try_into().expect("4")),
            codec: buf[40],
        },
        epoch,
    ))
}

/// Mutable journal position shared by every appender, behind
/// [`Persist::state`]. A leaf lock: callers may hold a shard lock, and
/// nothing is acquired while this is held.
pub(crate) struct PersistState {
    /// Next append offset in the journal file.
    pub tail: u64,
    /// Epoch stamped into appended records.
    pub epoch: u32,
    /// Where the current epoch's records begin.
    pub start: u64,
    /// Last superblock sequence written.
    pub sb_seq: u64,
    /// Tombstones waiting for the next group commit (or an explicit
    /// flush barrier).
    pub pending: Vec<JournalRecord>,
}

/// The store's handle on its persistence state: the journal medium plus
/// the append position. Superblock writes go through the *data* medium,
/// which callers pass in (the writer thread owns it).
pub(crate) struct Persist {
    pub journal: Arc<dyn SpillMedium>,
    pub state: Mutex<PersistState>,
}

impl Persist {
    pub fn new(journal: Arc<dyn SpillMedium>, state: PersistState) -> Persist {
        Persist {
            journal,
            state: Mutex::new(state),
        }
    }

    /// Queue a tombstone for the next group commit. Called under the
    /// owning shard's lock so the LSN ordering against the key's spill
    /// generations is exact.
    pub fn enqueue_tombstone(&self, key: u64, lsn: u64) {
        self.state
            .lock()
            .expect("persist state poisoned")
            .pending
            .push(JournalRecord::tombstone(key, lsn));
    }

    /// Group-commit `puts` (a durable batch's location records) together
    /// with every pending tombstone, sorted by LSN, and flush. Returns
    /// the number of records appended. On error the pending tombstones
    /// are retained for the next attempt.
    pub fn append_commit(&self, puts: &[JournalRecord]) -> io::Result<u64> {
        let mut st = self.state.lock().expect("persist state poisoned");
        if puts.is_empty() && st.pending.is_empty() {
            return Ok(0);
        }
        let mut records: Vec<JournalRecord> = Vec::with_capacity(puts.len() + st.pending.len());
        records.extend_from_slice(puts);
        records.extend_from_slice(&st.pending);
        records.sort_by_key(|r| r.lsn);
        let mut buf = Vec::with_capacity(records.len() * JOURNAL_RECORD);
        for rec in &records {
            encode_record(rec, st.epoch, &mut buf);
        }
        self.journal.write_at(&buf, st.tail)?;
        self.journal.flush()?;
        st.tail += buf.len() as u64;
        st.pending.clear();
        Ok(records.len() as u64)
    }

    /// Commit pending tombstones alone — the `flush()` durability
    /// barrier for removes.
    pub fn commit_pending(&self) -> io::Result<u64> {
        self.append_commit(&[])
    }

    /// Seal a clean shutdown: superblock gains the clean bit, the final
    /// cursor, and the journal tail, so the next open can trust the
    /// journal without re-verifying extents. The caller must have
    /// committed every pending record first.
    pub fn seal_clean(
        &self,
        data: &dyn SpillMedium,
        data_cursor: u64,
        page_size: u32,
    ) -> io::Result<()> {
        let mut st = self.state.lock().expect("persist state poisoned");
        debug_assert!(st.pending.is_empty(), "seal with uncommitted tombstones");
        st.sb_seq += 1;
        let sb = Superblock {
            seq: st.sb_seq,
            page_size,
            codec_fpr: codec_fingerprint(),
            clean: true,
            epoch: st.epoch,
            journal_start: st.start,
            data_cursor,
            journal_tail: st.tail,
        };
        write_superblock(data, &sb)
    }

    /// Compact the journal when the current epoch's record span has
    /// grown well past the live set: write `live` (plus pending
    /// tombstones) as a fresh snapshot under `epoch + 1`, then flip the
    /// superblock to it. When the snapshot fits below `start` it is
    /// written at the head of the file (which is then truncated);
    /// otherwise it is appended. Either way a crash at any byte leaves
    /// exactly one decodable epoch: the flip is a single superblock
    /// write, and replay of the *old* epoch stops at the first
    /// new-epoch record.
    ///
    /// Returns whether a compaction ran.
    pub fn maybe_compact(
        &self,
        data: &dyn SpillMedium,
        data_cursor: u64,
        page_size: u32,
        live: &[JournalRecord],
    ) -> io::Result<bool> {
        let mut st = self.state.lock().expect("persist state poisoned");
        let span = st.tail.saturating_sub(st.start);
        let live_bytes = ((live.len() + st.pending.len()) * JOURNAL_RECORD) as u64;
        if span < 64 * 1024 || span < live_bytes.saturating_mul(4) {
            return Ok(false);
        }
        let epoch = st.epoch.wrapping_add(1);
        let mut buf = Vec::with_capacity((live.len() + st.pending.len()) * JOURNAL_RECORD);
        for rec in live {
            encode_record(rec, epoch, &mut buf);
        }
        for rec in &st.pending {
            encode_record(rec, epoch, &mut buf);
        }
        let snap_bytes = buf.len() as u64;
        let head_rewrite = st.start >= snap_bytes;
        let snap_at = if head_rewrite { 0 } else { st.tail };
        if !buf.is_empty() {
            self.journal.write_at(&buf, snap_at)?;
        }
        self.journal.flush()?;
        // The flip: one superblock write moves replay to the new epoch.
        st.sb_seq += 1;
        let sb = Superblock {
            seq: st.sb_seq,
            page_size,
            codec_fpr: codec_fingerprint(),
            clean: false,
            epoch,
            journal_start: snap_at,
            data_cursor,
            journal_tail: snap_at + snap_bytes,
        };
        write_superblock(data, &sb)?;
        st.epoch = epoch;
        st.start = snap_at;
        st.tail = snap_at + snap_bytes;
        st.pending.clear();
        if head_rewrite {
            // Old-epoch records beyond the snapshot are dead; reclaim
            // the file space (best-effort — replay stops on the epoch
            // stamp even if this fails).
            let _ = self.journal.set_len(snap_bytes);
        }
        Ok(true)
    }
}

/// A live entry reconstructed from the journal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecoveredEntry {
    pub key: u64,
    pub offset: u64,
    pub len: u32,
    pub gen: u64,
    pub codec: u8,
    pub orig_len: u32,
}

/// Recovery tallies, mirrored into the store's telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryCounts {
    /// Journal records decoded and folded.
    pub journal_records_replayed: u64,
    /// Torn journal tails plus extents that failed re-verification and
    /// were discarded.
    pub torn_tail_discarded: u64,
    /// Records dropped by LSN arbitration: a PUT superseded by a newer
    /// PUT or tombstone, or a relocation for a generation that no
    /// longer matches.
    pub stale_generation_dropped: u64,
    /// Extents re-read and CRC-verified (0 on a clean fast start — the
    /// gate for "clean open skipped the scan").
    pub extents_verified: u64,
    /// Entries recovered and served (clean or verified).
    pub extents_recovered: u64,
}

/// The outcome of [`recover`]: the live entry set plus the state the
/// store needs to resume appending.
pub(crate) struct Recovery {
    pub entries: Vec<RecoveredEntry>,
    pub data_cursor: u64,
    pub page_size: u32,
    /// Highest LSN seen; the store resumes its generation counter above
    /// it.
    pub max_lsn: u64,
    /// Whether the clean fast path was taken.
    pub clean: bool,
    pub epoch: u32,
    pub journal_start: u64,
    /// Where appends resume (a torn tail is logically truncated here).
    pub journal_tail: u64,
    pub sb_seq: u64,
    pub counts: RecoveryCounts,
}

/// Why an open-existing failed before the store could even be built.
#[derive(Debug)]
pub enum RecoverError {
    /// Neither superblock slot decoded — not a spill file this format
    /// understands (or its head was destroyed).
    NoSuperblock,
    /// The file was written under a different codec set or on-disk
    /// format; decoding it would be guesswork.
    FingerprintMismatch {
        /// Fingerprint recorded in the superblock.
        on_disk: u32,
        /// This build's fingerprint.
        ours: u32,
    },
    /// I/O failure while reading the superblock region.
    Io(io::Error),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::NoSuperblock => write!(f, "no valid superblock slot"),
            RecoverError::FingerprintMismatch { on_disk, ours } => write!(
                f,
                "codec/format fingerprint mismatch: file {on_disk:#010x}, build {ours:#010x}"
            ),
            RecoverError::Io(e) => write!(f, "recovery I/O error: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Per-key fold state during replay. Tombstones are kept (not dropped)
/// so a PUT that appears *later in the journal* with an *older* LSN —
/// possible when a remove overtakes a queued batch — still loses.
enum KeyState {
    Live {
        entry: RecoveredEntry,
        lsn: u64,
        /// The extent's pre-relocation offset, kept as a fallback: if a
        /// mid-GC crash tore the relocated copy, the original is still
        /// intact (GC never truncates before journaling its moves).
        prev_offset: Option<u64>,
    },
    Dead(u64),
}

/// Replay the journal against the data file and rebuild the live entry
/// set. Never serves unverified bytes: on an unclean open every
/// referenced extent is re-read and its header CRC re-checked (with the
/// pre-GC fallback), and anything torn or stale is discarded and
/// counted.
pub(crate) fn recover(
    data: &dyn SpillMedium,
    journal: &dyn SpillMedium,
) -> Result<Recovery, RecoverError> {
    let sb = read_superblock(data).ok_or(RecoverError::NoSuperblock)?;
    let ours = codec_fingerprint();
    if sb.codec_fpr != ours {
        return Err(RecoverError::FingerprintMismatch {
            on_disk: sb.codec_fpr,
            ours,
        });
    }
    let mut counts = RecoveryCounts::default();
    let mut clean = sb.clean;
    let mut map: HashMap<u64, KeyState> = HashMap::new();
    let mut max_lsn = 0u64;
    let mut page_size = sb.page_size;
    let mut pos = sb.journal_start;
    let mut rec_buf = [0u8; JOURNAL_RECORD];
    loop {
        if sb.clean && pos >= sb.journal_tail {
            break;
        }
        if journal.read_at(&mut rec_buf, pos).is_err() {
            // End of file. Leftover bytes short of a whole record mean a
            // write was cut mid-record.
            let mut probe = [0u8; 1];
            if journal.read_at(&mut probe, pos).is_ok() {
                counts.torn_tail_discarded += 1;
                clean = false;
            } else if sb.clean {
                // The sealed tail claims more records than the file
                // holds: distrust the seal.
                clean = false;
            }
            break;
        }
        let Some((rec, epoch)) = decode_record(&rec_buf) else {
            counts.torn_tail_discarded += 1;
            clean = false;
            break;
        };
        if epoch != sb.epoch {
            // A stale region left behind by compaction: the current
            // epoch's stream ends here.
            break;
        }
        counts.journal_records_replayed += 1;
        max_lsn = max_lsn.max(rec.lsn);
        if rec.orig_len != 0 {
            page_size = rec.orig_len;
        }
        match rec.kind {
            jkind::PUT => {
                let supersedes = match map.get(&rec.key) {
                    None => true,
                    Some(KeyState::Live { lsn, .. }) | Some(KeyState::Dead(lsn)) => rec.lsn >= *lsn,
                };
                if supersedes {
                    // Either way one generation of this key loses: the
                    // arriving record when it is stale, the superseded
                    // live one when it is not.
                    if matches!(map.get(&rec.key), Some(KeyState::Live { .. })) {
                        counts.stale_generation_dropped += 1;
                    }
                    map.insert(
                        rec.key,
                        KeyState::Live {
                            entry: RecoveredEntry {
                                key: rec.key,
                                offset: rec.offset,
                                len: rec.len,
                                gen: rec.lsn,
                                codec: rec.codec,
                                orig_len: rec.orig_len,
                            },
                            lsn: rec.lsn,
                            prev_offset: None,
                        },
                    );
                } else {
                    counts.stale_generation_dropped += 1;
                }
            }
            jkind::TOMB => {
                let supersedes = match map.get(&rec.key) {
                    None => true,
                    Some(KeyState::Live { lsn, .. }) | Some(KeyState::Dead(lsn)) => rec.lsn >= *lsn,
                };
                if supersedes {
                    if matches!(map.get(&rec.key), Some(KeyState::Live { .. })) {
                        counts.stale_generation_dropped += 1;
                    }
                    map.insert(rec.key, KeyState::Dead(rec.lsn));
                } else {
                    counts.stale_generation_dropped += 1;
                }
            }
            jkind::RELOC => match map.get_mut(&rec.key) {
                Some(KeyState::Live {
                    entry, prev_offset, ..
                }) if entry.gen == rec.lsn => {
                    *prev_offset = Some(entry.offset);
                    entry.offset = rec.offset;
                }
                _ => counts.stale_generation_dropped += 1,
            },
            _ => unreachable!("decode_record rejects unknown kinds"),
        }
        pos += JOURNAL_RECORD as u64;
    }
    let journal_tail = pos;
    let mut entries = Vec::new();
    let mut ext_buf = Vec::new();
    for state in map.into_values() {
        let KeyState::Live {
            mut entry,
            prev_offset,
            ..
        } = state
        else {
            continue;
        };
        if !clean {
            counts.extents_verified += 1;
            ext_buf.clear();
            ext_buf.resize(entry.len as usize, 0);
            let ok = data.read_at(&mut ext_buf, entry.offset).is_ok()
                && verify_extent(&ext_buf, entry.gen, entry.codec);
            if !ok {
                // Fall back to the pre-relocation copy: same generation,
                // same bytes, still in place if the move was torn.
                let fallback = prev_offset.is_some_and(|off| {
                    ext_buf.clear();
                    ext_buf.resize(entry.len as usize, 0);
                    data.read_at(&mut ext_buf, off).is_ok()
                        && verify_extent(&ext_buf, entry.gen, entry.codec)
                });
                match (fallback, prev_offset) {
                    (true, Some(off)) => entry.offset = off,
                    _ => {
                        counts.torn_tail_discarded += 1;
                        continue;
                    }
                }
            }
        }
        counts.extents_recovered += 1;
        entries.push(entry);
    }
    let data_cursor = if clean {
        sb.data_cursor.max(SUPERBLOCK_RESERVED)
    } else {
        entries
            .iter()
            .map(|e| e.offset + e.len as u64)
            .max()
            .unwrap_or(0)
            .max(SUPERBLOCK_RESERVED)
    };
    Ok(Recovery {
        entries,
        data_cursor,
        page_size,
        max_lsn,
        clean,
        epoch: sb.epoch,
        journal_start: sb.journal_start,
        journal_tail,
        sb_seq: sb.seq,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MemMedium;

    fn sb(seq: u64, clean: bool) -> Superblock {
        Superblock {
            seq,
            page_size: 4096,
            codec_fpr: codec_fingerprint(),
            clean,
            epoch: 3,
            journal_start: 96,
            data_cursor: 1024,
            journal_tail: 480,
        }
    }

    #[test]
    fn superblock_roundtrips_and_rejects_tampering() {
        let b = encode_superblock(&sb(7, true));
        assert_eq!(decode_superblock(&b), Some(sb(7, true)));
        for i in [0, 9, 25, 50, SB_CRC_OFFSET + 1] {
            let mut t = b;
            t[i] ^= 0x10;
            assert_eq!(decode_superblock(&t), None, "byte {i} flip accepted");
        }
    }

    #[test]
    fn superblock_slots_arbitrate_by_sequence_and_survive_a_torn_slot() {
        let m = MemMedium::new();
        write_superblock(&m, &sb(4, false)).unwrap(); // slot 0
        write_superblock(&m, &sb(5, true)).unwrap(); // slot 1
        assert_eq!(read_superblock(&m), Some(sb(5, true)));
        // Tear the newer slot: the reader falls back to the older one.
        m.write_at(&[0xFFu8; 16], SB_SLOT as u64 + 8).unwrap();
        assert_eq!(read_superblock(&m), Some(sb(4, false)));
    }

    #[test]
    fn records_roundtrip_and_any_bit_flip_rejects() {
        let rec = JournalRecord {
            kind: jkind::PUT,
            lsn: 9000,
            key: 0xDEAD_BEEF,
            offset: 4096,
            len: 812,
            orig_len: 4096,
            codec: 1,
        };
        let mut buf = Vec::new();
        encode_record(&rec, 42, &mut buf);
        assert_eq!(buf.len(), JOURNAL_RECORD);
        assert_eq!(decode_record(&buf), Some((rec, 42)));
        for byte in 0..JOURNAL_RECORD {
            for bit in 0..8 {
                let mut t = buf.clone();
                t[byte] ^= 1 << bit;
                // Pad bytes are CRC-covered too, so every flip rejects.
                assert_eq!(decode_record(&t), None, "byte {byte} bit {bit} accepted");
            }
        }
        // A zero-filled region is not a record.
        assert_eq!(decode_record(&[0u8; JOURNAL_RECORD]), None);
    }

    fn put_rec(key: u64, lsn: u64, offset: u64) -> JournalRecord {
        JournalRecord {
            kind: jkind::PUT,
            lsn,
            key,
            offset,
            len: (EXTENT_HEADER + 8) as u32,
            orig_len: 64,
            codec: 0,
        }
    }

    /// Write a valid extent for `rec` at its offset so verification
    /// passes on unclean recovery.
    fn back_extent(data: &MemMedium, rec: &JournalRecord) {
        let mut buf = Vec::new();
        crate::store::encode_extent(&mut buf, rec.lsn, rec.codec, &[0xABu8; 8]);
        assert_eq!(buf.len(), rec.len as usize);
        data.write_at(&buf, rec.offset).unwrap();
    }

    fn fresh_media() -> (MemMedium, MemMedium, Persist) {
        let data = MemMedium::new();
        let journal = MemMedium::new();
        write_superblock(
            &data,
            &Superblock {
                seq: 1,
                page_size: 0,
                codec_fpr: codec_fingerprint(),
                clean: false,
                epoch: 0,
                journal_start: 0,
                data_cursor: SUPERBLOCK_RESERVED,
                journal_tail: 0,
            },
        )
        .unwrap();
        let persist = Persist::new(
            Arc::new(journal.share()),
            PersistState {
                tail: 0,
                epoch: 0,
                start: 0,
                sb_seq: 1,
                pending: Vec::new(),
            },
        );
        (data, journal, persist)
    }

    #[test]
    fn replay_folds_latest_wins_and_respects_tombstone_order() {
        let (data, journal, persist) = fresh_media();
        let a1 = put_rec(1, 10, SUPERBLOCK_RESERVED);
        let a2 = put_rec(1, 30, SUPERBLOCK_RESERVED + 100);
        let b = put_rec(2, 20, SUPERBLOCK_RESERVED + 200);
        back_extent(&data, &a1);
        back_extent(&data, &a2);
        back_extent(&data, &b);
        persist.append_commit(&[a1, b]).unwrap();
        // Key 2 removed (lsn 40), then its *old* PUT re-appears later in
        // the journal (a remove that overtook a queued batch): the
        // tombstone must still win.
        persist.enqueue_tombstone(2, 40);
        persist.append_commit(&[a2]).unwrap();
        persist
            .append_commit(&[put_rec(2, 20, SUPERBLOCK_RESERVED + 200)])
            .unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].key, 1);
        assert_eq!(rec.entries[0].gen, 30);
        assert_eq!(rec.max_lsn, 40);
        assert!(!rec.clean);
        assert_eq!(rec.counts.journal_records_replayed, 5);
        // The stale PUT of key 1 (lsn 10 superseded by 30 in fold order
        // after sort) and the resurrected PUT of key 2 both dropped.
        assert!(rec.counts.stale_generation_dropped >= 1);
        assert_eq!(rec.page_size, 64);
    }

    #[test]
    fn torn_journal_tail_is_discarded_and_counted() {
        let (data, journal, persist) = fresh_media();
        let a = put_rec(1, 1, SUPERBLOCK_RESERVED);
        back_extent(&data, &a);
        persist.append_commit(&[a]).unwrap();
        // A partial record at the tail: 20 of 48 bytes landed.
        let mut buf = Vec::new();
        encode_record(&put_rec(2, 2, SUPERBLOCK_RESERVED + 100), 0, &mut buf);
        journal.write_at(&buf[..20], JOURNAL_RECORD as u64).unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.counts.torn_tail_discarded, 1);
        assert_eq!(rec.journal_tail, JOURNAL_RECORD as u64);
    }

    #[test]
    fn unclean_recovery_verifies_extents_and_drops_torn_ones() {
        let (data, journal, persist) = fresh_media();
        let good = put_rec(1, 1, SUPERBLOCK_RESERVED);
        let torn = put_rec(2, 2, SUPERBLOCK_RESERVED + 100);
        back_extent(&data, &good);
        // Key 2's extent write was cut: only garbage at its offset.
        data.write_at(&[0x11u8; 8], torn.offset).unwrap();
        persist.append_commit(&[good, torn]).unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].key, 1);
        assert_eq!(rec.counts.extents_verified, 2);
        assert_eq!(rec.counts.extents_recovered, 1);
        assert_eq!(rec.counts.torn_tail_discarded, 1);
    }

    #[test]
    fn clean_seal_skips_verification_entirely() {
        let (data, journal, persist) = fresh_media();
        let a = put_rec(1, 1, SUPERBLOCK_RESERVED);
        // Deliberately do NOT back the extent: a clean open must not
        // read it at all.
        persist.append_commit(&[a]).unwrap();
        persist
            .seal_clean(&data, SUPERBLOCK_RESERVED + 100, 64)
            .unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert!(rec.clean);
        assert_eq!(rec.counts.extents_verified, 0);
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.data_cursor, SUPERBLOCK_RESERVED + 100);
    }

    #[test]
    fn reloc_updates_offset_and_falls_back_to_previous_copy_when_torn() {
        let (data, journal, persist) = fresh_media();
        let a = put_rec(1, 5, SUPERBLOCK_RESERVED + 500);
        back_extent(&data, &a);
        persist.append_commit(&[a]).unwrap();
        // GC claims to have moved it to the head, but the new copy is
        // garbage (the move write was cut): recovery must fall back to
        // the intact original.
        let reloc = JournalRecord {
            kind: jkind::RELOC,
            lsn: 5,
            key: 1,
            offset: SUPERBLOCK_RESERVED,
            len: a.len,
            orig_len: 0,
            codec: 0,
        };
        persist.append_commit(&[reloc]).unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].offset, SUPERBLOCK_RESERVED + 500);
        // Now land the copy for real: recovery should prefer the new home.
        let mut moved = a;
        moved.offset = SUPERBLOCK_RESERVED;
        back_extent(&data, &moved);
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries[0].offset, SUPERBLOCK_RESERVED);
    }

    #[test]
    fn compaction_flips_epoch_and_old_records_go_stale() {
        let (data, journal, persist) = fresh_media();
        // Grow the journal past the compaction threshold with churn on
        // one key.
        let mut recs = Vec::new();
        for i in 0..2000u64 {
            let r = put_rec(1, i, SUPERBLOCK_RESERVED);
            recs.push(r);
        }
        back_extent(&data, &put_rec(1, 1999, SUPERBLOCK_RESERVED));
        persist.append_commit(&recs).unwrap();
        let live = [put_rec(1, 1999, SUPERBLOCK_RESERVED)];
        assert!(persist
            .maybe_compact(&data, SUPERBLOCK_RESERVED + 100, 64, &live)
            .unwrap());
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.counts.journal_records_replayed, 1, "snapshot only");
        // Appends continue in the new epoch and replay after it.
        persist.enqueue_tombstone(1, 3000);
        persist.commit_pending().unwrap();
        let rec = recover(&data, &journal).unwrap();
        assert_eq!(rec.entries.len(), 0);
    }

    #[test]
    fn fingerprint_mismatch_refuses_to_open() {
        let data = MemMedium::new();
        let mut s = sb(1, true);
        s.codec_fpr ^= 1;
        write_superblock(&data, &s).unwrap();
        assert!(matches!(
            recover(&data, &MemMedium::new()),
            Err(RecoverError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn missing_superblock_refuses_to_open() {
        assert!(matches!(
            recover(&MemMedium::new(), &MemMedium::new()),
            Err(RecoverError::NoSuperblock)
        ));
    }
}
