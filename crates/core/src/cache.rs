//! The compression cache proper: compression, placement, cleaning,
//! fault service, and backing-store traffic.
//!
//! The flow follows §4.1 of the paper:
//!
//! - *"LRU pages are compressed to make room for new pages. The compressed
//!   pages are retained in memory for a period of time, in the expectation
//!   that they will be accessed again soon."* — [`CompressionCache::insert_evicted`].
//! - *"If not all pages fit in memory, even with some compressed, the LRU
//!   compressed pages are written to backing store."* — [`CompressionCache::clean_batch`]
//!   (the cleaner) plus clean-entry dropping in the space machinery.
//! - *"To service a page fault ... the VM system checks to see whether the
//!   page is compressed in memory or on the backing store. If it is on
//!   backing store, it is first brought into memory and stored in the
//!   compression cache, then it is decompressed..."* — [`CompressionCache::fault`].
//!
//! All CPU work (compression, decompression, copies) advances the caller's
//! clock through [`CpuCosts`]; all I/O goes through the
//! `BackingStore` trait (see [`crate::backing`]), whose completions
//! either block (reads) or run ahead asynchronously (writes). Reclaiming
//! memory whose write-back has not finished yet stalls the clock — the
//! cost the paper's clean-page pool exists to hide.

use std::collections::{HashMap, VecDeque};

use cc_compress::{CompressDecision, Compressor};
use cc_mem::{FrameId, FrameOwner, FramePool};
use cc_util::{Histogram, Ns};

use crate::backing::BackingStore;
use crate::circ::{AppendProbe, CircBuf};
use crate::config::CacheConfig;
use crate::swap::{SwapNeedsGc, SwapSpace};
use crate::PageKey;

/// CPU-side bandwidths used to convert work into virtual time.
///
/// The paper's machine (DECstation 5000/200) runs LZRW1 at roughly
/// 1.5–2 MB/s compressing and about twice that decompressing (Figure 1's
/// caption fixes the 2:1 asymmetry); memcpy on that machine is roughly an
/// order of magnitude faster.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// LZRW1-normalized compression bandwidth, bytes/sec of *input*.
    pub compress_bps: u64,
    /// LZRW1-normalized decompression bandwidth, bytes/sec of *output*.
    pub decompress_bps: u64,
    /// Plain copy bandwidth, bytes/sec.
    pub memcpy_bps: u64,
}

impl CpuCosts {
    /// The DECstation 5000/200 profile used throughout the reproduction.
    pub fn decstation_5000_200() -> Self {
        CpuCosts {
            compress_bps: 1_800_000,
            decompress_bps: 3_600_000,
            memcpy_bps: 12_000_000,
        }
    }

    /// Time to compress `bytes` with a codec of the given profile.
    pub fn compress_time(&self, bytes: usize, scale: f64) -> Ns {
        Ns::for_transfer(bytes as u64, ((self.compress_bps as f64) * scale) as u64)
    }

    /// Time to decompress to `bytes` of output.
    pub fn decompress_time(&self, bytes: usize, scale: f64) -> Ns {
        Ns::for_transfer(bytes as u64, ((self.decompress_bps as f64) * scale) as u64)
    }

    /// Time to copy `bytes`.
    pub fn memcpy_time(&self, bytes: usize) -> Ns {
        Ns::for_transfer(bytes as u64, self.memcpy_bps)
    }
}

/// Result of handing an evicted page to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The page was clean and its compressed copy is still in the cache:
    /// nothing moved, the frame is simply released. Free.
    KeptClean,
    /// The page was clean and a valid copy exists on the backing store:
    /// nothing to do. Free.
    CleanOnSwap,
    /// Compressed and retained in memory (the paper's main path).
    Stored {
        /// Compressed size in bytes.
        compressed_len: u32,
    },
    /// Compressed acceptably, but no memory could be granted; the
    /// compressed bytes were written to the backing store instead (the
    /// degenerate "compression as an I/O buffer" mode of §4.2).
    StoredToSwap {
        /// Compressed size in bytes.
        compressed_len: u32,
    },
    /// Compression failed the 4:3 threshold; the raw page was written to
    /// the backing store. The compression time was wasted (§5.2).
    Rejected {
        /// The unhelpful compressed size, for ratio accounting.
        compressed_len: u32,
    },
}

/// Result of a clean eviction query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanEvictOutcome {
    /// A live compressed copy exists; the page's home is now the cache.
    ToCompressed,
    /// A valid swap copy exists; the page's home is now the backing store.
    ToSwap,
    /// No other copy exists; the caller must do a full insert.
    NeedStore,
}

/// Result of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Served by decompressing from the in-memory cache. No I/O.
    FromCache {
        /// Compressed size decompressed.
        compressed_len: u32,
    },
    /// Read from backing store (compressed), installed in the cache, and
    /// decompressed.
    FromSwapCompressed {
        /// Bytes of file blocks actually read.
        bytes_read: u64,
        /// Whether the compressed copy could be retained in the cache.
        cached: bool,
    },
    /// Read from backing store where it was stored uncompressed (a page
    /// that failed the threshold).
    FromSwapRaw {
        /// Bytes of file blocks actually read.
        bytes_read: u64,
    },
    /// The cache has never seen this page (caller zero-fills).
    Miss,
}

/// Counters for everything the cache did.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Pages offered for compression.
    pub compress_attempts: u64,
    /// Pages kept compressed (passed threshold).
    pub compress_kept: u64,
    /// Pages rejected by the threshold (wasted effort, §5.2).
    pub compress_rejected: u64,
    /// Original bytes of kept pages.
    pub kept_bytes_in: u64,
    /// Compressed bytes of kept pages.
    pub kept_bytes_out: u64,
    /// Per-page compressed size in permille of original (kept and
    /// rejected both recorded).
    pub ratio_permille: Histogram,
    /// Clean evictions resolved without any work.
    pub clean_evictions_kept: u64,
    /// Clean evictions resolved to an existing swap copy.
    pub clean_evictions_swap: u64,
    /// Faults served from the in-memory cache.
    pub faults_from_cache: u64,
    /// Faults served from swap (compressed).
    pub faults_from_swap: u64,
    /// Faults served from swap (raw).
    pub faults_from_swap_raw: u64,
    /// Extra compressed pages installed during block-rounded swap reads.
    pub readahead_installs: u64,
    /// Shadow entries dropped (resident copy existed).
    pub dropped_shadow: u64,
    /// Clean entries dropped (moved the page's home to swap).
    pub dropped_clean: u64,
    /// Cleaner batches written.
    pub cleaner_batches: u64,
    /// Pages written by the cleaner.
    pub cleaner_pages: u64,
    /// Compressed bytes written by the cleaner (before padding).
    pub cleaner_bytes: u64,
    /// Pages written straight to swap (rejected or buffer mode).
    pub direct_swapouts: u64,
    /// Swap-space GC passes.
    pub gc_runs: u64,
    /// Live pages relocated by GC.
    pub gc_pages_moved: u64,
    /// Time stalled waiting for in-flight cleaner writes before reuse.
    pub write_stall: Ns,
    /// Peak number of frames mapped into the cache.
    pub peak_mapped_frames: usize,
}

impl CoreStats {
    /// Mean kept compression fraction (compressed/original); 1.0 if none.
    pub fn mean_kept_fraction(&self) -> f64 {
        if self.kept_bytes_in == 0 {
            1.0
        } else {
            self.kept_bytes_out as f64 / self.kept_bytes_in as f64
        }
    }

    /// Fraction of compression attempts that failed the threshold.
    pub fn rejected_fraction(&self) -> f64 {
        if self.compress_attempts == 0 {
            0.0
        } else {
            self.compress_rejected as f64 / self.compress_attempts as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    key: PageKey,
    /// Absolute buffer offset of the entry header.
    start: u64,
    /// Header + data footprint in the buffer.
    len: u32,
    /// Compressed data length.
    data_len: u32,
    /// Original page length.
    orig_len: u32,
    /// Contains data not yet on the backing store.
    dirty: bool,
    /// An uncompressed resident copy of this page also exists.
    shadow: bool,
    /// Entry is dead (dropped or superseded); space not yet reclaimed.
    dead: bool,
    /// When the cleaner's write of this entry completes (reuse must wait).
    clean_done_at: Ns,
    /// Insertion time (the cache's age input to the memory arbiter).
    stamp: Ns,
}

/// The compression cache.
pub struct CompressionCache {
    cfg: CacheConfig,
    codec: Box<dyn Compressor>,
    costs: CpuCosts,
    circ: CircBuf,
    swap: SwapSpace,
    /// Live and recently-dead entries by id. Ids are never reused, so a
    /// stale id in `order` can only name a dead (removed) entry.
    entries: HashMap<u64, Entry>,
    next_entry_id: u64,
    /// Entry ids in append order (front = oldest).
    order: VecDeque<u64>,
    by_page: HashMap<PageKey, u64>,
    /// Pages whose home moved from cache to swap (PTE updates for the VM).
    moved_to_swap: Vec<PageKey>,
    stats: CoreStats,
    comp_buf: Vec<u8>,
    page_buf: Vec<u8>,
}

impl std::fmt::Debug for CompressionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressionCache")
            .field("mapped_frames", &self.circ.mapped_frames())
            .field("entries", &self.entries.len())
            .field("codec", &self.codec.name())
            .finish()
    }
}

impl CompressionCache {
    /// Create a cache with the given codec over a swap area of
    /// `swap_bytes` on the backing store.
    pub fn new(
        cfg: CacheConfig,
        codec: Box<dyn Compressor>,
        costs: CpuCosts,
        swap_bytes: u64,
    ) -> Self {
        cfg.validate();
        let circ = CircBuf::new(cfg.max_slots, cfg.page_bytes);
        let swap = SwapSpace::new(swap_bytes, &cfg);
        CompressionCache {
            circ,
            swap,
            codec,
            costs,
            entries: HashMap::new(),
            next_entry_id: 0,
            order: VecDeque::new(),
            by_page: HashMap::new(),
            moved_to_swap: Vec::new(),
            stats: CoreStats::default(),
            comp_buf: Vec::new(),
            page_buf: Vec::new(),
            cfg,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Swap-space layer (fragmentation reports, invariants).
    pub fn swap(&self) -> &SwapSpace {
        &self.swap
    }

    /// Number of frames currently mapped into the cache.
    pub fn mapped_frames(&self) -> usize {
        self.circ.mapped_frames()
    }

    /// Number of live compressed entries.
    pub fn live_entries(&self) -> usize {
        self.by_page.len()
    }

    /// Compressed bytes currently live in memory (headers included).
    pub fn live_bytes(&self) -> u64 {
        self.circ.total_live_bytes()
    }

    /// Insertion time of the oldest live entry — the cache's bid in the
    /// three-way LRU age comparison (§4.2).
    pub fn oldest_stamp(&self) -> Option<Ns> {
        self.order
            .iter()
            .find_map(|&id| self.entries.get(&id).filter(|e| !e.dead).map(|e| e.stamp))
    }

    /// Drain the list of pages whose home moved from the cache to the
    /// backing store; the VM must flip their PTEs Compressed -> Swapped.
    pub fn take_moved_to_swap(&mut self) -> Vec<PageKey> {
        std::mem::take(&mut self.moved_to_swap)
    }

    /// Whether the cache (memory or swap) knows this page.
    pub fn knows(&self, key: PageKey) -> bool {
        self.by_page.contains_key(&key) || self.swap.lookup(key).is_some()
    }

    /// Whether a live in-memory entry exists for `key` (used by the
    /// compressed-file-cache extension to skip recompressing a clean block
    /// whose discardable copy is still present).
    pub fn contains_entry(&self, key: PageKey) -> bool {
        self.by_page.contains_key(&key)
    }

    /// Frames that could be reclaimed without any I/O right now.
    pub fn reclaimable_now(&self) -> usize {
        // A conservative estimate: slots with zero live bytes.
        (0..self.circ.max_slots())
            .filter(|&s| {
                matches!(
                    self.circ.slot(s),
                    crate::circ::SlotState::Mapped { live_bytes: 0, .. }
                )
            })
            .count()
    }

    /// Bytes of live entries droppable without I/O (shadowed, or clean
    /// with a completed write) — the supply the cleaner maintains.
    pub fn droppable_bytes(&self, now: Ns) -> u64 {
        self.order
            .iter()
            .filter_map(|&id| self.entries.get(&id))
            .filter(|e| !e.dead && (e.shadow || (!e.dirty && e.clean_done_at <= now)))
            .map(|e| e.len as u64)
            .sum()
    }

    /// Bytes of dirty (unwritten) live entries — the cleaner's backlog.
    pub fn dirty_bytes(&self) -> u64 {
        self.order
            .iter()
            .filter_map(|&id| self.entries.get(&id))
            .filter(|e| !e.dead && e.dirty && !e.shadow)
            .map(|e| e.data_len as u64)
            .sum()
    }

    // ----------------------------------------------------------------
    // Eviction side
    // ----------------------------------------------------------------

    /// Ask what to do with a *clean* page being evicted. Resolves the two
    /// free cases; on `NeedStore` the caller proceeds to
    /// [`CompressionCache::insert_evicted`] with `dirty = true` semantics
    /// (the data exists nowhere else).
    pub fn evict_clean(&mut self, key: PageKey) -> CleanEvictOutcome {
        if let Some(&id) = self.by_page.get(&key) {
            let e = self.entries.get_mut(&id).expect("entry");
            debug_assert!(!e.dead);
            e.shadow = false;
            self.stats.clean_evictions_kept += 1;
            return CleanEvictOutcome::ToCompressed;
        }
        if self.swap.lookup(key).is_some() {
            self.stats.clean_evictions_swap += 1;
            return CleanEvictOutcome::ToSwap;
        }
        CleanEvictOutcome::NeedStore
    }

    /// Insert a purely discardable compressed copy of `key` — used by the
    /// compressed-file-cache extension (§6: "the system could keep part or
    /// all of the file buffer cache in compressed format in order to
    /// improve the cache hit rate"). The data's durable home is elsewhere
    /// (its file), so the entry is never written to the swap area and may
    /// be dropped at any time without notifying anyone. Returns whether it
    /// was cached (and charges compression either way — the effort is
    /// spent before the threshold verdict is known).
    pub fn insert_discardable(
        &mut self,
        pool: &mut FramePool,
        clock: &mut Ns,
        key: PageKey,
        data: &[u8],
        may_grow: bool,
    ) -> bool {
        assert_eq!(data.len(), self.cfg.page_bytes, "partial block insert");
        self.kill_entry_of(key);
        self.stats.compress_attempts += 1;
        let profile = self.codec.cost_profile();
        *clock += self.costs.compress_time(data.len(), profile.compress_scale);
        let mut comp = std::mem::take(&mut self.comp_buf);
        let clen = self.codec.compress(data, &mut comp);
        self.stats
            .ratio_permille
            .record((clen as u64 * 1000) / data.len() as u64);
        if self.cfg.threshold.evaluate(data.len(), clen) == CompressDecision::Reject {
            self.stats.compress_rejected += 1;
            self.comp_buf = comp;
            return false;
        }
        self.stats.compress_kept += 1;
        self.stats.kept_bytes_in += data.len() as u64;
        self.stats.kept_bytes_out += clen as u64;
        let need = self.cfg.entry_header_bytes + clen;
        if !self.ensure_space_no_io(pool, clock, need, may_grow) {
            self.comp_buf = comp;
            return false;
        }
        let start = self.circ.append(need);
        *clock += self.costs.memcpy_time(need);
        self.circ.write_bytes(
            pool,
            start + self.cfg.entry_header_bytes as u64,
            &comp[..clen],
        );
        self.circ.add_live(start, need);
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        self.entries.insert(
            id,
            Entry {
                key,
                start,
                len: need as u32,
                data_len: clen as u32,
                orig_len: data.len() as u32,
                dirty: false,
                // Shadow semantics: droppable at any time, skipped by the
                // cleaner, no home-moved notification on drop.
                shadow: true,
                dead: false,
                clean_done_at: Ns::ZERO,
                stamp: *clock,
            },
        );
        self.order.push_back(id);
        self.by_page.insert(key, id);
        self.stats.peak_mapped_frames =
            self.stats.peak_mapped_frames.max(self.circ.mapped_frames());
        self.comp_buf = comp;
        true
    }

    /// Fetch a discardable entry's contents without changing its state.
    /// Returns whether the key was present (and decompressed into `out`).
    pub fn fetch_discardable(
        &mut self,
        pool: &FramePool,
        clock: &mut Ns,
        key: PageKey,
        out: &mut [u8],
    ) -> bool {
        let Some(&id) = self.by_page.get(&key) else {
            return false;
        };
        let (start, data_len, orig_len) = {
            let e = &self.entries[&id];
            debug_assert!(!e.dead);
            (e.start, e.data_len, e.orig_len)
        };
        assert_eq!(out.len(), orig_len as usize);
        self.decompress_entry(pool, clock, start, data_len, orig_len, out);
        self.stats.faults_from_cache += 1;
        true
    }

    /// Hand the cache a page being evicted whose data must be preserved
    /// (dirty, or clean-with-no-other-copy). Compresses, applies the
    /// threshold, and places the result in memory if `may_grow` or
    /// internal reclamation yields space — otherwise sends it to the
    /// backing store.
    ///
    /// The caller's `clock` is advanced by all CPU work and any stall.
    pub fn insert_evicted(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        key: PageKey,
        page: &[u8],
        may_grow: bool,
    ) -> InsertOutcome {
        assert_eq!(page.len(), self.cfg.page_bytes, "partial page insert");
        // Any existing entry or swap copy is stale now.
        self.kill_entry_of(key);
        self.swap.free_page(key);

        // Compress and apply the 4:3 threshold.
        self.stats.compress_attempts += 1;
        let profile = self.codec.cost_profile();
        *clock += self.costs.compress_time(page.len(), profile.compress_scale);
        let mut comp = std::mem::take(&mut self.comp_buf);
        let clen = self.codec.compress(page, &mut comp);
        self.stats
            .ratio_permille
            .record((clen as u64 * 1000) / page.len() as u64);
        let decision = self.cfg.threshold.evaluate(page.len(), clen);
        if decision == CompressDecision::Reject {
            self.stats.compress_rejected += 1;
            self.comp_buf = comp;
            // Store the page raw on the backing store.
            self.swap_out_raw(backing, clock, key, page);
            return InsertOutcome::Rejected {
                compressed_len: clen as u32,
            };
        }
        self.stats.compress_kept += 1;
        self.stats.kept_bytes_in += page.len() as u64;
        self.stats.kept_bytes_out += clen as u64;

        let need = self.cfg.entry_header_bytes + clen;
        if !self.ensure_space(pool, backing, clock, need, may_grow) {
            // Degenerate buffer mode: write the compressed bytes out now.
            self.write_compressed_to_swap(backing, clock, key, &comp[..clen]);
            self.comp_buf = comp;
            return InsertOutcome::StoredToSwap {
                compressed_len: clen as u32,
            };
        }

        let start = self.circ.append(need);
        // Scatter header + data into the mapped frames. The header bytes
        // are modeled as opaque (their fields live in `Entry`); data bytes
        // are the real compressed stream.
        *clock += self.costs.memcpy_time(need);
        self.circ.write_bytes(
            pool,
            start + self.cfg.entry_header_bytes as u64,
            &comp[..clen],
        );
        self.circ.add_live(start, need);
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        self.entries.insert(
            id,
            Entry {
                key,
                start,
                len: need as u32,
                data_len: clen as u32,
                orig_len: page.len() as u32,
                dirty: true,
                shadow: false,
                dead: false,
                clean_done_at: Ns::ZERO,
                stamp: *clock,
            },
        );
        self.order.push_back(id);
        self.by_page.insert(key, id);
        self.stats.peak_mapped_frames =
            self.stats.peak_mapped_frames.max(self.circ.mapped_frames());
        self.comp_buf = comp;
        InsertOutcome::Stored {
            compressed_len: clen as u32,
        }
    }

    // ----------------------------------------------------------------
    // Fault side
    // ----------------------------------------------------------------

    /// Service a fault for `key`, writing the page into `out`.
    pub fn fault(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        key: PageKey,
        out: &mut [u8],
        may_grow: bool,
    ) -> FaultOutcome {
        assert_eq!(out.len(), self.cfg.page_bytes);
        if let Some(&id) = self.by_page.get(&key) {
            let (start, len, data_len, orig_len) = {
                let e = &self.entries[&id];
                debug_assert!(!e.dead);
                assert!(!e.shadow, "fault on a page that is already resident");
                (e.start, e.len, e.data_len, e.orig_len)
            };
            debug_assert_eq!(
                len as usize,
                self.cfg.entry_header_bytes + data_len as usize
            );
            self.decompress_entry(pool, clock, start, data_len, orig_len, out);
            self.entries.get_mut(&id).expect("entry").shadow = true;
            self.stats.faults_from_cache += 1;
            return FaultOutcome::FromCache {
                compressed_len: data_len,
            };
        }

        let Some(info) = self.swap.lookup(key) else {
            return FaultOutcome::Miss;
        };

        // Block-rounded read of the fragments (§4.3: no way to read less
        // than a whole file-system block).
        let fpb = self.cfg.frags_per_block() as u16;
        let first_block = info.loc.frag / fpb;
        let last_block = (info.loc.frag + info.loc.nfrags - 1) / fpb;
        let nblocks = (last_block - first_block + 1) as usize;
        let read_off = self.swap.byte_offset(crate::swap::SwapLoc {
            cluster: info.loc.cluster,
            frag: first_block * fpb,
            nfrags: 0,
        });
        let mut buf = vec![0u8; nblocks * self.cfg.block_bytes];
        let done = backing.read(*clock, read_off, &mut buf);
        *clock = (*clock).max(done);
        let bytes_read = buf.len() as u64;

        let data_off = (info.loc.frag - first_block * fpb) as usize * self.cfg.fragment_bytes;
        let data = &buf[data_off..data_off + info.data_len as usize];

        let raw = info.data_len as usize == self.cfg.page_bytes;
        if raw {
            out.copy_from_slice(data);
            *clock += self.costs.memcpy_time(out.len());
            self.stats.faults_from_swap_raw += 1;
            return FaultOutcome::FromSwapRaw { bytes_read };
        }

        // Install the compressed copy in the cache (clean: the swap copy
        // remains valid), then decompress — §4.1's fault path.
        let data_vec = data.to_vec();
        let cached = self.install_clean_from_swap(pool, clock, key, &data_vec, may_grow);
        let profile = self.codec.cost_profile();
        *clock += self
            .costs
            .decompress_time(self.cfg.page_bytes, profile.decompress_scale);
        let mut page = std::mem::take(&mut self.page_buf);
        page.clear();
        self.codec
            .decompress(&data_vec, &mut page, self.cfg.page_bytes)
            .expect("corrupt compressed page on swap");
        out.copy_from_slice(&page);
        self.page_buf = page;
        if cached {
            if let Some(&id) = self.by_page.get(&key) {
                self.entries.get_mut(&id).expect("entry").shadow = true;
            }
        }
        self.stats.faults_from_swap += 1;

        // Readahead: other live compressed pages in the same blocks came
        // along for free; install them (best effort, no I/O, no eviction).
        if self.cfg.swap_readahead {
            let others = self
                .swap
                .live_pages_in_blocks(info.loc.cluster, first_block..last_block + 1);
            for p in others {
                if p.key == key || self.by_page.contains_key(&p.key) {
                    continue;
                }
                // Only pages whose fragments lie entirely inside the read.
                if p.loc.frag < first_block * fpb
                    || p.loc.frag + p.loc.nfrags > (last_block + 1) * fpb
                {
                    continue;
                }
                if p.data_len as usize == self.cfg.page_bytes {
                    continue; // raw pages are not cached
                }
                let off = (p.loc.frag - first_block * fpb) as usize * self.cfg.fragment_bytes;
                let pdata = buf[off..off + p.data_len as usize].to_vec();
                if self.install_clean_from_swap(pool, clock, p.key, &pdata, false) {
                    self.stats.readahead_installs += 1;
                    self.moved_to_cache_note(p.key);
                }
            }
        }

        FaultOutcome::FromSwapCompressed { bytes_read, cached }
    }

    /// Pages installed by readahead move from Swapped to Compressed; the
    /// VM needs to know. Reuses the `moved_to_swap` channel in reverse is
    /// not possible, so readahead installs are reported separately.
    fn moved_to_cache_note(&mut self, _key: PageKey) {
        // The entry keeps its swap copy (clean), so the page is findable
        // via either path; the VM may keep its PTE as Swapped and still be
        // correct because `fault` checks the in-memory table first.
    }

    // ----------------------------------------------------------------
    // Cleaner and reclamation
    // ----------------------------------------------------------------

    /// Write one batch (up to `cluster_bytes`) of the oldest dirty entries
    /// to the backing store, marking them clean. Returns the number of
    /// pages written (0 = nothing dirty).
    ///
    /// Writes are asynchronous: the clock advances only by the CPU copy
    /// cost. The entries' `clean_done_at` records the write completion;
    /// reclaiming them earlier stalls.
    pub fn clean_batch(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
    ) -> usize {
        // Collect the oldest dirty, non-shadow, live entries.
        let mut victims: Vec<u64> = Vec::new();
        let mut batch_data = 0usize;
        for &id in self.order.iter() {
            let Some(e) = self.entries.get(&id) else {
                continue;
            };
            if e.dead || !e.dirty || e.shadow {
                continue;
            }
            if batch_data + e.data_len as usize > self.cfg.cluster_bytes {
                break;
            }
            batch_data += e.data_len as usize;
            victims.push(id);
        }
        if victims.is_empty() {
            return 0;
        }

        // Allocate fragments; group into contiguous runs per cluster.
        let mut runs: Vec<(u64, Vec<u8>)> = Vec::new(); // (byte offset, data)
        let mut locs: Vec<(u64, crate::swap::SwapLoc)> = Vec::new();
        for &id in &victims {
            let (key, data_len) = {
                let e = &self.entries[&id];
                (e.key, e.data_len)
            };
            let loc = loop {
                match self.swap.alloc(key, data_len) {
                    Ok(l) => break l,
                    Err(SwapNeedsGc) => self.run_gc(pool, backing, clock),
                }
            };
            locs.push((id, loc));
        }
        // Build write runs: coalesce fragments that are adjacent on disk.
        let frag_bytes = self.cfg.fragment_bytes;
        for &(id, loc) in &locs {
            let e = &self.entries[&id];
            let mut data = vec![0u8; loc.nfrags as usize * frag_bytes];
            self.circ.read_bytes(
                pool,
                e.start + self.cfg.entry_header_bytes as u64,
                &mut data[..e.data_len as usize],
            );
            let off = self.swap.byte_offset(loc);
            match runs.last_mut() {
                Some((run_off, run_data)) if *run_off + run_data.len() as u64 == off => {
                    run_data.extend_from_slice(&data);
                }
                _ => runs.push((off, data)),
            }
        }
        // Charge the copy cost once (we copied every data byte).
        *clock += self.costs.memcpy_time(batch_data);
        // Align the open cluster so the next batch starts block-aligned,
        // then pad each run to whole blocks to avoid read-modify-write.
        self.swap.align_to_block();
        let bb = self.cfg.block_bytes;
        let mut last_done = Ns::ZERO;
        for (off, mut data) in runs {
            debug_assert_eq!(off % bb as u64, 0, "runs must start block-aligned");
            let padded = data.len().div_ceil(bb) * bb;
            data.resize(padded, 0);
            let c = backing.write(*clock, off, &data);
            last_done = last_done.max(c.done);
        }
        for (id, _) in &locs {
            let e = self.entries.get_mut(id).expect("entry");
            e.dirty = false;
            e.clean_done_at = last_done;
        }
        self.stats.cleaner_batches += 1;
        self.stats.cleaner_pages += victims.len() as u64;
        self.stats.cleaner_bytes += batch_data as u64;
        victims.len()
    }

    /// Release one frame from the cache back to the pool (the memory
    /// arbiter decided the cache should shrink). Returns the freed frame,
    /// or `None` if the cache holds nothing reclaimable even after
    /// cleaning (i.e. it is effectively empty).
    pub fn release_frame(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
    ) -> Option<FrameId> {
        loop {
            if let Some(slot) = self.circ.reclaimable_slot() {
                let frame = self.circ.unmap_slot(slot);
                pool.free(frame);
                return Some(frame);
            }
            // When the cache is completely empty, the only mapped frame
            // left is the cursor's slot; release that too.
            if self.by_page.is_empty()
                && self.circ.total_live_bytes() == 0
                && self.circ.mapped_frames() > 0
            {
                let frame = self.circ.unmap_cursor_slot_when_empty();
                pool.free(frame);
                return Some(frame);
            }
            if !self.make_progress(pool, backing, clock) {
                return None;
            }
        }
    }

    /// Invalidate every copy of a page (segment teardown).
    pub fn drop_page(&mut self, key: PageKey) {
        self.kill_entry_of(key);
        self.swap.free_page(key);
    }

    // ----------------------------------------------------------------
    // Internals
    // ----------------------------------------------------------------

    fn decompress_entry(
        &mut self,
        pool: &FramePool,
        clock: &mut Ns,
        start: u64,
        data_len: u32,
        orig_len: u32,
        out: &mut [u8],
    ) {
        let mut comp = std::mem::take(&mut self.comp_buf);
        comp.resize(data_len as usize, 0);
        self.circ
            .read_bytes(pool, start + self.cfg.entry_header_bytes as u64, &mut comp);
        let profile = self.codec.cost_profile();
        *clock += self
            .costs
            .decompress_time(orig_len as usize, profile.decompress_scale);
        let mut page = std::mem::take(&mut self.page_buf);
        page.clear();
        self.codec
            .decompress(&comp, &mut page, orig_len as usize)
            .expect("corrupt compressed page in cache");
        out.copy_from_slice(&page);
        self.comp_buf = comp;
        self.page_buf = page;
    }

    /// Install a clean compressed copy (arriving from a swap read) into
    /// the buffer. Best effort: no cleaning I/O, no stalls, no growth
    /// unless `may_grow`; returns whether it was cached.
    fn install_clean_from_swap(
        &mut self,
        pool: &mut FramePool,
        clock: &mut Ns,
        key: PageKey,
        data: &[u8],
        may_grow: bool,
    ) -> bool {
        debug_assert!(!self.by_page.contains_key(&key));
        let need = self.cfg.entry_header_bytes + data.len();
        if !self.ensure_space_no_io(pool, clock, need, may_grow) {
            return false;
        }
        let start = self.circ.append(need);
        *clock += self.costs.memcpy_time(need);
        self.circ
            .write_bytes(pool, start + self.cfg.entry_header_bytes as u64, data);
        self.circ.add_live(start, need);
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        self.entries.insert(
            id,
            Entry {
                key,
                start,
                len: need as u32,
                data_len: data.len() as u32,
                orig_len: self.cfg.page_bytes as u32,
                dirty: false,
                shadow: false,
                dead: false,
                clean_done_at: Ns::ZERO,
                stamp: *clock,
            },
        );
        self.order.push_back(id);
        self.by_page.insert(key, id);
        self.stats.peak_mapped_frames =
            self.stats.peak_mapped_frames.max(self.circ.mapped_frames());
        true
    }

    /// Make `need` bytes appendable, with full machinery (dropping,
    /// cleaning with I/O, stalls, growth).
    fn ensure_space(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        need: usize,
        may_grow: bool,
    ) -> bool {
        loop {
            match self.circ.probe(need) {
                AppendProbe::Ready => return true,
                AppendProbe::NeedFrame { slot } => {
                    if let Some(donor) = self.circ.reclaimable_slot() {
                        let frame = self.circ.unmap_slot(donor);
                        self.circ.map_slot(slot, frame);
                        continue;
                    }
                    if may_grow {
                        if let Some(frame) =
                            pool.alloc(FrameOwner::CompressionCache { tag: slot as u64 })
                        {
                            self.circ.map_slot(slot, frame);
                            continue;
                        }
                    }
                    if !self.make_progress(pool, backing, clock) {
                        return false;
                    }
                }
                AppendProbe::Blocked { .. } => {
                    if !self.make_progress(pool, backing, clock) {
                        return false;
                    }
                }
            }
        }
    }

    /// Space machinery without I/O or stalls (fault-path installs): only
    /// donor slots, droppable entries that are already reusable, and
    /// (optionally) pool growth.
    fn ensure_space_no_io(
        &mut self,
        pool: &mut FramePool,
        clock: &mut Ns,
        need: usize,
        may_grow: bool,
    ) -> bool {
        loop {
            match self.circ.probe(need) {
                AppendProbe::Ready => return true,
                AppendProbe::NeedFrame { slot } => {
                    if let Some(donor) = self.circ.reclaimable_slot() {
                        let frame = self.circ.unmap_slot(donor);
                        self.circ.map_slot(slot, frame);
                        continue;
                    }
                    if may_grow {
                        if let Some(frame) =
                            pool.alloc(FrameOwner::CompressionCache { tag: slot as u64 })
                        {
                            self.circ.map_slot(slot, frame);
                            continue;
                        }
                    }
                    if !self.drop_one(clock, false) {
                        return false;
                    }
                }
                AppendProbe::Blocked { .. } => {
                    if !self.drop_one(clock, false) {
                        return false;
                    }
                }
            }
        }
    }

    /// Free some space: drop the oldest droppable entry, cleaning first if
    /// everything old is dirty. Returns false when nothing can be done.
    fn make_progress(
        &mut self,
        pool: &mut FramePool,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
    ) -> bool {
        if self.drop_one(clock, true) {
            return true;
        }
        // Everything at the old end is dirty: clean a batch, then retry.
        if self.clean_batch(pool, backing, clock) > 0 {
            return self.drop_one(clock, true);
        }
        false
    }

    /// Drop the oldest droppable entry. Shadowed entries are preferred
    /// over clean ones regardless of position: a shadowed entry's data is
    /// duplicated by the resident copy, so dropping it is free, while
    /// dropping a clean entry moves the page's home to the backing store
    /// and turns its next fault into a disk read. With `allow_stall`, a
    /// clean entry whose write is still in flight stalls the clock until
    /// it completes; without, such entries are skipped.
    fn drop_one(&mut self, clock: &mut Ns, allow_stall: bool) -> bool {
        // Pop dead entries off the front opportunistically.
        while let Some(&front) = self.order.front() {
            match self.entries.get(&front) {
                Some(e) if e.dead => {
                    self.entries.remove(&front);
                    self.order.pop_front();
                }
                None => {
                    self.order.pop_front();
                }
                Some(_) => break,
            }
        }
        let mut chosen: Option<u64> = None;
        // Pass 1: the oldest shadowed entry.
        for &id in self.order.iter() {
            if let Some(e) = self.entries.get(&id) {
                if !e.dead && e.shadow {
                    chosen = Some(id);
                    break;
                }
            }
        }
        // Pass 2: the oldest clean entry.
        if chosen.is_none() {
            for &id in self.order.iter() {
                let Some(e) = self.entries.get(&id) else {
                    continue;
                };
                if e.dead || e.dirty {
                    continue;
                }
                if e.clean_done_at > *clock && !allow_stall {
                    continue;
                }
                chosen = Some(id);
                break;
            }
        }
        let Some(id) = chosen else {
            return false;
        };
        let (key, start, len, shadow, clean_done_at) = {
            let e = &self.entries[&id];
            (e.key, e.start, e.len, e.shadow, e.clean_done_at)
        };
        if !shadow && clean_done_at > *clock {
            let stall = clean_done_at - *clock;
            self.stats.write_stall += stall;
            *clock = clean_done_at;
        }
        self.circ.sub_live(start, len as usize);
        self.by_page.remove(&key);
        let e = self.entries.get_mut(&id).expect("entry");
        e.dead = true;
        if shadow {
            self.stats.dropped_shadow += 1;
        } else {
            self.stats.dropped_clean += 1;
            // The page's only copy is now its swap copy.
            self.moved_to_swap.push(key);
        }
        true
    }

    /// Mark any live entry of `key` dead and release its space accounting.
    fn kill_entry_of(&mut self, key: PageKey) {
        if let Some(id) = self.by_page.remove(&key) {
            let e = self.entries.get_mut(&id).expect("entry");
            debug_assert!(!e.dead);
            e.dead = true;
            let (start, len) = (e.start, e.len);
            self.circ.sub_live(start, len as usize);
        }
    }

    /// Write an uncompressed page straight to the backing store without
    /// attempting compression (the adaptive-disable mode of §5.2 / §6:
    /// "It should be possible to disable compression completely when poor
    /// compression is obtained").
    pub fn store_raw(
        &mut self,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        key: PageKey,
        page: &[u8],
    ) {
        assert_eq!(page.len(), self.cfg.page_bytes, "partial page store");
        self.kill_entry_of(key);
        self.swap.free_page(key);
        *clock += self.costs.memcpy_time(page.len());
        self.swap_out_raw(backing, clock, key, page);
    }

    /// Write an uncompressed (threshold-rejected) page to the backing
    /// store, block-aligned so no read-modify-write is triggered.
    fn swap_out_raw(
        &mut self,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        key: PageKey,
        page: &[u8],
    ) {
        self.swap.align_to_block();
        let loc = loop {
            match self.swap.alloc(key, page.len() as u32) {
                Ok(l) => break l,
                Err(SwapNeedsGc) => {
                    // GC needs a pool for potential in-memory relocation
                    // reads; raw swap-out happens outside that path, so run
                    // the storage-only GC.
                    self.run_gc_storage_only(backing, clock);
                }
            }
        };
        let off = self.swap.byte_offset(loc);
        backing.write(*clock, off, page);
        // The write covered whole blocks; retire any fragments in the
        // final partial block so the next allocation starts block-aligned.
        self.swap.align_to_block();
        self.stats.direct_swapouts += 1;
    }

    /// Write already-compressed bytes to the backing store without caching
    /// (buffer mode / no-memory fallback). Pads to whole fragments and
    /// aligns to a block to avoid read-modify-write.
    fn write_compressed_to_swap(
        &mut self,
        backing: &mut dyn BackingStore,
        clock: &mut Ns,
        key: PageKey,
        data: &[u8],
    ) {
        self.swap.align_to_block();
        let loc = loop {
            match self.swap.alloc(key, data.len() as u32) {
                Ok(l) => break l,
                Err(SwapNeedsGc) => self.run_gc_storage_only(backing, clock),
            }
        };
        let off = self.swap.byte_offset(loc);
        let padded = (data.len().div_ceil(self.cfg.block_bytes)) * self.cfg.block_bytes;
        let mut buf = vec![0u8; padded];
        buf[..data.len()].copy_from_slice(data);
        *clock += self.costs.memcpy_time(data.len());
        backing.write(*clock, off, &buf);
        // The padded write covered whole blocks; keep the allocator
        // cursor block-aligned so later batches never start mid-block.
        self.swap.align_to_block();
        self.stats.direct_swapouts += 1;
    }

    /// Relocate the live pages of the emptiest closed cluster so it can be
    /// recycled (log-structured cleaning of the swap area, §4.3's
    /// "garbage-collection on the backing store").
    fn run_gc(&mut self, pool: &mut FramePool, backing: &mut dyn BackingStore, clock: &mut Ns) {
        let _ = pool; // In-memory copies are read via circ in clean_batch only.
        self.run_gc_storage_only(backing, clock)
    }

    fn run_gc_storage_only(&mut self, backing: &mut dyn BackingStore, clock: &mut Ns) {
        let (victim, live) = self
            .swap
            .gc_victim()
            .expect("swap space full of live data: size the swap area larger");
        self.stats.gc_runs += 1;
        // Read the whole victim cluster in one request.
        let mut buf = vec![0u8; self.cfg.cluster_bytes];
        let off = victim as u64 * self.cfg.cluster_bytes as u64;
        let done = backing.read(*clock, off, &mut buf);
        *clock = (*clock).max(done);

        // Capture the data, free the victim (making it available), then
        // re-append each live page. Writes are coalesced into contiguous
        // block-padded runs exactly like the cleaner's, so relocation
        // never triggers read-modify-write.
        let mut moves: Vec<(PageKey, Vec<u8>)> = Vec::with_capacity(live.len());
        for p in &live {
            let start = p.loc.frag as usize * self.cfg.fragment_bytes;
            moves.push((p.key, buf[start..start + p.data_len as usize].to_vec()));
        }
        for p in &live {
            self.swap.free_page(p.key);
        }
        self.swap.align_to_block();
        let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
        for (key, data) in moves {
            let loc = self
                .swap
                .alloc(key, data.len() as u32)
                .expect("GC freed a cluster; allocation must succeed");
            let off = self.swap.byte_offset(loc);
            let padded = data.len().div_ceil(self.cfg.fragment_bytes) * self.cfg.fragment_bytes;
            let mut frag_data = vec![0u8; padded];
            frag_data[..data.len()].copy_from_slice(&data);
            match runs.last_mut() {
                Some((run_off, run_data)) if *run_off + run_data.len() as u64 == off => {
                    run_data.extend_from_slice(&frag_data);
                }
                _ => runs.push((off, frag_data)),
            }
            self.stats.gc_pages_moved += 1;
        }
        let bb = self.cfg.block_bytes;
        for (off, mut data) in runs {
            let padded = data.len().div_ceil(bb) * bb;
            data.resize(padded, 0);
            backing.write(*clock, off, &data);
        }
        self.swap.align_to_block();
    }

    /// Full-structure consistency check for tests.
    pub fn check_invariants(&self) {
        self.swap.check_invariants();
        let mut live_bytes = 0u64;
        for (id, e) in self.entries.iter() {
            if e.dead {
                continue;
            }
            assert_eq!(
                self.by_page.get(&e.key),
                Some(id),
                "live entry {id} not indexed"
            );
            live_bytes += e.len as u64;
        }
        assert_eq!(
            live_bytes,
            self.circ.total_live_bytes(),
            "entry footprints disagree with slot accounting"
        );
        assert_eq!(self.by_page.len(), {
            let mut n = 0;
            for (_, e) in self.entries.iter() {
                if !e.dead {
                    n += 1;
                }
            }
            n
        });
    }
}
