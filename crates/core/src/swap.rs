//! Fragmented swap-space management with garbage collection.
//!
//! §4.3: merging compressed pages into a smaller number of file blocks
//! *"loses the one-to-one mapping between offsets in a swap file and pages
//! within a segment. Instead, it is necessary to store the location of
//! each page explicitly. Second, when a page is written out to backing
//! store, faulted back into memory, modified, and written out again
//! sometime later, it may not be written to the same location... Thus it
//! becomes necessary to perform garbage-collection on the backing store."*
//!
//! [`SwapSpace`] is that bookkeeping. The swap area is divided into
//! **clusters** of one write-batch each (32 KB); compressed pages are
//! padded to 1 KB **fragments** and appended to the open cluster.
//! Rewrites supersede the old fragments, which become garbage; a cluster
//! whose fragments are all dead returns to the free pool, and when no free
//! cluster remains the caller runs a log-style cleaning pass over the
//! emptiest cluster ([`SwapSpace::gc_victim`]).
//!
//! With `allow_span = false` a page's fragments never cross a file-block
//! boundary (the §4.3 parameter): page-in reads stay within one 4 KB
//! block at the price of more padding.

use std::collections::{BTreeMap, HashMap};

use crate::config::CacheConfig;
use crate::PageKey;

/// Location of a page's fragments on the backing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapLoc {
    /// Cluster index within the swap area.
    pub cluster: u32,
    /// First fragment within the cluster.
    pub frag: u16,
    /// Number of fragments.
    pub nfrags: u16,
}

/// A page's swap residency: where it is and how many of the padded bytes
/// are real compressed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapInfo {
    /// Fragment location.
    pub loc: SwapLoc,
    /// Exact compressed length in bytes (`<= nfrags * fragment_bytes`).
    pub data_len: u32,
}

/// A live page inside a cluster (GC and readahead both consume these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivePage {
    /// The page.
    pub key: PageKey,
    /// Its location.
    pub loc: SwapLoc,
    /// Exact data length.
    pub data_len: u32,
}

/// Error: every cluster holds live data and the open cluster is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapNeedsGc;

#[derive(Debug, Default, Clone)]
struct Cluster {
    /// Live records keyed by starting fragment.
    live: BTreeMap<u16, (PageKey, u16, u32)>,
    live_frags: u16,
}

/// Counters for the swap layer.
#[derive(Debug, Clone, Default)]
pub struct SwapStats {
    /// Pages currently mapped.
    pub live_pages: u64,
    /// Fragments allocated over all time.
    pub frags_allocated: u64,
    /// Fragments freed (superseded or explicitly freed).
    pub frags_freed: u64,
    /// Fragments wasted as padding (block alignment, batch alignment).
    pub frags_padding: u64,
    /// Clusters recycled through the free list.
    pub clusters_recycled: u64,
}

/// The swap-space allocator and page-location map.
#[derive(Debug, Clone)]
pub struct SwapSpace {
    frags_per_cluster: u16,
    frags_per_block: u16,
    fragment_bytes: u32,
    cluster_bytes: u64,
    allow_span: bool,
    clusters: Vec<Cluster>,
    /// Fully-empty clusters available for opening.
    free: Vec<u32>,
    /// Cluster currently accepting appends.
    open: u32,
    /// Next unallocated fragment in the open cluster.
    open_next: u16,
    map: HashMap<PageKey, SwapInfo>,
    stats: SwapStats,
}

impl SwapSpace {
    /// Create a swap space of `total_bytes`, laid out per `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` holds fewer than two clusters (GC needs one
    /// open cluster plus at least one other).
    pub fn new(total_bytes: u64, cfg: &CacheConfig) -> Self {
        let nclusters = (total_bytes / cfg.cluster_bytes as u64) as u32;
        assert!(nclusters >= 2, "swap space must hold at least two clusters");
        let mut free: Vec<u32> = (1..nclusters).rev().collect();
        let open = 0;
        let _ = &mut free;
        SwapSpace {
            frags_per_cluster: cfg.frags_per_cluster() as u16,
            frags_per_block: cfg.frags_per_block() as u16,
            fragment_bytes: cfg.fragment_bytes as u32,
            cluster_bytes: cfg.cluster_bytes as u64,
            allow_span: cfg.allow_span,
            clusters: vec![Cluster::default(); nclusters as usize],
            free,
            open,
            open_next: 0,
            map: HashMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &SwapStats {
        &self.stats
    }

    /// Number of clusters in the space.
    pub fn clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Clusters on the free list.
    pub fn free_clusters(&self) -> usize {
        self.free.len()
    }

    /// Whether `key` has a valid swap copy.
    pub fn lookup(&self, key: PageKey) -> Option<SwapInfo> {
        self.map.get(&key).copied()
    }

    /// Absolute byte offset of a location within the swap area.
    pub fn byte_offset(&self, loc: SwapLoc) -> u64 {
        loc.cluster as u64 * self.cluster_bytes + loc.frag as u64 * self.fragment_bytes as u64
    }

    /// Fragments needed for `data_len` bytes.
    pub fn frags_for(&self, data_len: u32) -> u16 {
        (data_len.div_ceil(self.fragment_bytes)).max(1) as u16
    }

    /// Drop the swap copy of `key` (page superseded, segment destroyed, or
    /// compressed copy invalidated). No-op if absent.
    pub fn free_page(&mut self, key: PageKey) {
        let Some(info) = self.map.remove(&key) else {
            return;
        };
        let c = &mut self.clusters[info.loc.cluster as usize];
        let removed = c.live.remove(&info.loc.frag);
        debug_assert!(removed.is_some(), "map/cluster inconsistency at {key:?}");
        c.live_frags -= info.loc.nfrags;
        self.stats.frags_freed += info.loc.nfrags as u64;
        self.stats.live_pages -= 1;
        if c.live_frags == 0 && info.loc.cluster != self.open {
            self.free.push(info.loc.cluster);
            self.stats.clusters_recycled += 1;
        }
    }

    /// Allocate fragments for `key` (superseding any previous copy) and
    /// record the mapping. Returns where the caller must write the data.
    ///
    /// Fails with [`SwapNeedsGc`] when the open cluster cannot take the
    /// page and no free cluster exists — the caller must relocate a
    /// victim's live pages (see [`SwapSpace::gc_victim`]) and retry.
    pub fn alloc(&mut self, key: PageKey, data_len: u32) -> Result<SwapLoc, SwapNeedsGc> {
        self.free_page(key);
        let nfrags = self.frags_for(data_len);
        assert!(
            nfrags <= self.frags_per_cluster,
            "page larger than a cluster"
        );
        let mut start = self.place_in_open(nfrags);
        if start.is_none() {
            // Open cluster exhausted: roll to a free cluster.
            self.roll_open()?;
            start = self.place_in_open(nfrags);
        }
        let frag = start.expect("fresh cluster must fit any page");
        let loc = SwapLoc {
            cluster: self.open,
            frag,
            nfrags,
        };
        let c = &mut self.clusters[self.open as usize];
        c.live.insert(frag, (key, nfrags, data_len));
        c.live_frags += nfrags;
        self.map.insert(key, SwapInfo { loc, data_len });
        self.stats.frags_allocated += nfrags as u64;
        self.stats.live_pages += 1;
        Ok(loc)
    }

    /// Find a start fragment for `nfrags` in the open cluster, honoring
    /// the no-span rule; records padding. `None` if it does not fit.
    fn place_in_open(&mut self, nfrags: u16) -> Option<u16> {
        let mut start = self.open_next;
        if !self.allow_span && nfrags <= self.frags_per_block {
            let within = start % self.frags_per_block;
            if within + nfrags > self.frags_per_block {
                // Pad to the next block boundary.
                let pad = self.frags_per_block - within;
                if start + pad + nfrags > self.frags_per_cluster {
                    return None;
                }
                self.stats.frags_padding += pad as u64;
                start += pad;
            }
        }
        if start + nfrags > self.frags_per_cluster {
            return None;
        }
        self.open_next = start + nfrags;
        Some(start)
    }

    /// Retire the open cluster and open a free one.
    fn roll_open(&mut self) -> Result<(), SwapNeedsGc> {
        let retiring = self.open;
        let unused = self.frags_per_cluster - self.open_next;
        self.stats.frags_padding += unused as u64;
        let next = self.free.pop().ok_or(SwapNeedsGc)?;
        // The retiring cluster may have become all-dead while open.
        if self.clusters[retiring as usize].live_frags == 0 {
            self.free.push(retiring);
            self.stats.clusters_recycled += 1;
        }
        self.open = next;
        self.open_next = 0;
        debug_assert!(self.clusters[next as usize].live.is_empty());
        Ok(())
    }

    /// Align the open cluster's next allocation to a file-block boundary.
    ///
    /// The cleaner calls this after each batch write so the next batch
    /// starts on a block edge and never triggers a read-modify-write.
    pub fn align_to_block(&mut self) {
        let within = self.open_next % self.frags_per_block;
        if within != 0 {
            let pad = self.frags_per_block - within;
            if self.open_next + pad <= self.frags_per_cluster {
                self.stats.frags_padding += pad as u64;
                self.open_next += pad;
            } else {
                self.open_next = self.frags_per_cluster;
            }
        }
    }

    /// The closed cluster with the fewest live fragments (the best GC
    /// victim), with its live pages. `None` if no closed cluster has data
    /// (then the space is simply full of live data).
    pub fn gc_victim(&self) -> Option<(u32, Vec<LivePage>)> {
        let victim = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(i, c)| *i as u32 != self.open && c.live_frags > 0)
            .min_by_key(|(_, c)| c.live_frags)
            .map(|(i, _)| i as u32)?;
        let pages = self.live_pages_in(victim);
        Some((victim, pages))
    }

    /// Live pages within a cluster, in fragment order.
    pub fn live_pages_in(&self, cluster: u32) -> Vec<LivePage> {
        self.clusters[cluster as usize]
            .live
            .iter()
            .map(|(&frag, &(key, nfrags, data_len))| LivePage {
                key,
                loc: SwapLoc {
                    cluster,
                    frag,
                    nfrags,
                },
                data_len,
            })
            .collect()
    }

    /// Live pages whose fragments intersect the given file blocks of a
    /// cluster (readahead: these came along for free in a block-rounded
    /// read). `block_range` is in cluster-local block indices.
    pub fn live_pages_in_blocks(
        &self,
        cluster: u32,
        block_range: std::ops::Range<u16>,
    ) -> Vec<LivePage> {
        let lo_frag = block_range.start * self.frags_per_block;
        let hi_frag = block_range.end * self.frags_per_block;
        self.live_pages_in(cluster)
            .into_iter()
            .filter(|p| p.loc.frag < hi_frag && p.loc.frag + p.loc.nfrags > lo_frag)
            .collect()
    }

    /// Fraction of in-use (non-free, non-open) fragments that are dead —
    /// a fragmentation measure for reports.
    pub fn dead_fraction(&self) -> f64 {
        let mut used = 0u64;
        let mut live = 0u64;
        for (i, c) in self.clusters.iter().enumerate() {
            let i = i as u32;
            if i == self.open {
                used += self.open_next as u64;
                live += c.live_frags as u64;
            } else if c.live_frags > 0 || !self.free.contains(&i) {
                // A closed, non-free cluster is fully "used".
                if c.live_frags > 0 {
                    used += self.frags_per_cluster as u64;
                    live += c.live_frags as u64;
                }
            }
        }
        if used == 0 {
            0.0
        } else {
            1.0 - live as f64 / used as f64
        }
    }

    /// Consistency check for tests: the map and cluster records agree.
    pub fn check_invariants(&self) {
        let mut from_clusters = 0usize;
        for (i, c) in self.clusters.iter().enumerate() {
            let sum: u16 = c.live.values().map(|&(_, n, _)| n).sum();
            assert_eq!(sum, c.live_frags, "cluster {i} frag count mismatch");
            for (&frag, &(key, nfrags, data_len)) in &c.live {
                let info = self
                    .map
                    .get(&key)
                    .unwrap_or_else(|| panic!("cluster {i} holds unmapped page {key:?}"));
                assert_eq!(
                    info.loc,
                    SwapLoc {
                        cluster: i as u32,
                        frag,
                        nfrags
                    }
                );
                assert_eq!(info.data_len, data_len);
                from_clusters += 1;
            }
            // No overlapping records.
            let mut prev_end = 0u16;
            for (&frag, &(_, nfrags, _)) in &c.live {
                assert!(frag >= prev_end, "cluster {i} overlapping fragments");
                prev_end = frag + nfrags;
            }
        }
        assert_eq!(from_clusters, self.map.len(), "map/cluster count mismatch");
        assert_eq!(self.stats.live_pages as usize, self.map.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::paper(64)
    }

    fn key(n: u32) -> PageKey {
        PageKey { seg: 0, page: n }
    }

    fn space(clusters: u64) -> SwapSpace {
        SwapSpace::new(clusters * 32 * 1024, &cfg())
    }

    #[test]
    fn alloc_packs_sequentially() {
        let mut s = space(4);
        let a = s.alloc(key(1), 1000).unwrap(); // 1 frag
        let b = s.alloc(key(2), 2500).unwrap(); // 3 frags
        let c = s.alloc(key(3), 1024).unwrap(); // 1 frag
        assert_eq!((a.frag, a.nfrags), (0, 1));
        assert_eq!((b.frag, b.nfrags), (1, 3));
        assert_eq!((c.frag, c.nfrags), (4, 1));
        assert_eq!(a.cluster, b.cluster);
        s.check_invariants();
        // Byte offsets follow the layout.
        assert_eq!(s.byte_offset(b), a.cluster as u64 * 32768 + 1024);
    }

    #[test]
    fn supersede_frees_old_fragments() {
        let mut s = space(4);
        let a = s.alloc(key(1), 3000).unwrap();
        let b = s.alloc(key(1), 1500).unwrap();
        assert_ne!(a.frag, b.frag, "rewrite must go to a new location (§4.3)");
        assert_eq!(s.lookup(key(1)).unwrap().loc, b);
        assert_eq!(s.stats().frags_freed, 3);
        s.check_invariants();
    }

    #[test]
    fn cluster_roll_and_recycle() {
        let mut s = space(2);
        // Fill cluster 0 with 8 pages of 4 frags each (32 frags).
        for i in 0..8 {
            s.alloc(key(i), 4096).unwrap();
        }
        // Next alloc rolls to cluster 1.
        let l = s.alloc(key(100), 4096).unwrap();
        assert_ne!(l.cluster, 0);
        // Free everything in cluster 0: it returns to the free list.
        for i in 0..8 {
            s.free_page(key(i));
        }
        assert_eq!(s.free_clusters(), 1);
        assert_eq!(s.stats().clusters_recycled, 1);
        s.check_invariants();
    }

    #[test]
    fn full_space_asks_for_gc() {
        let mut s = space(2);
        for i in 0..16 {
            s.alloc(key(i), 4096).unwrap();
        }
        // Both clusters full of live data.
        assert_eq!(s.alloc(key(99), 4096), Err(SwapNeedsGc));
        // Freeing enough of a closed cluster lets GC pick it.
        s.free_page(key(0));
        let (victim, live) = s.gc_victim().expect("victim must exist");
        assert_eq!(live.len(), 7);
        assert!(victim != s.open);
    }

    #[test]
    fn no_span_pads_to_block_boundaries() {
        let mut c = cfg();
        c.allow_span = false;
        let mut s = SwapSpace::new(4 * 32 * 1024, &c);
        // 3 frags, then 3 frags: the second cannot fit in the block's
        // remaining 1 frag, so it starts at frag 4.
        let a = s.alloc(key(1), 3000).unwrap();
        let b = s.alloc(key(2), 3000).unwrap();
        assert_eq!(a.frag, 0);
        assert_eq!(b.frag, 4);
        assert_eq!(s.stats().frags_padding, 1);
        s.check_invariants();
    }

    #[test]
    fn spanning_allowed_by_default() {
        let mut s = space(4);
        s.alloc(key(1), 3000).unwrap(); // frags 0..3
        let b = s.alloc(key(2), 3000).unwrap(); // frags 3..6 spans block 0/1
        assert_eq!(b.frag, 3);
        assert_eq!(s.stats().frags_padding, 0);
    }

    #[test]
    fn align_to_block_pads_open_cluster() {
        let mut s = space(4);
        s.alloc(key(1), 1000).unwrap(); // 1 frag
        s.align_to_block();
        let b = s.alloc(key(2), 1000).unwrap();
        assert_eq!(b.frag, 4, "next batch starts at a block edge");
        assert_eq!(s.stats().frags_padding, 3);
    }

    #[test]
    fn readahead_block_query() {
        let mut s = space(4);
        s.alloc(key(1), 4096).unwrap(); // block 0 (frags 0..4)
        s.alloc(key(2), 1024).unwrap(); // frag 4 (block 1)
        s.alloc(key(3), 1024).unwrap(); // frag 5 (block 1)
        s.alloc(key(4), 4096).unwrap(); // frags 6..10 (blocks 1..3)
        let in_block1 = s.live_pages_in_blocks(0, 1..2);
        let keys: Vec<u32> = in_block1.iter().map(|p| p.key.page).collect();
        assert_eq!(keys, vec![2, 3, 4], "block 1 intersects pages 2,3,4");
    }

    #[test]
    fn dead_fraction_rises_with_supersedes() {
        let mut s = space(8);
        for i in 0..8 {
            s.alloc(key(i), 4096).unwrap();
        }
        assert_eq!(s.dead_fraction(), 0.0);
        for i in 0..4 {
            s.alloc(key(i), 4096).unwrap(); // supersede: old frags dead
        }
        assert!(s.dead_fraction() > 0.2);
        s.check_invariants();
    }

    #[test]
    fn free_page_is_idempotent() {
        let mut s = space(2);
        s.alloc(key(1), 100).unwrap();
        s.free_page(key(1));
        s.free_page(key(1));
        assert_eq!(s.lookup(key(1)), None);
        s.check_invariants();
    }
}
