//! The cache's view of the backing store.
//!
//! The cache reads and writes byte ranges of one flat swap area; the
//! simulator implements this trait over `cc_blockfs::FileSystem` (which
//! enforces whole-block transfers and charges disk time), while unit tests
//! use [`MemBacking`], an in-memory implementation with a trivial cost
//! model, so the cache mechanism can be tested in isolation.

use cc_disk::Completion;
use cc_util::Ns;

/// Byte-addressed backing storage with virtual-time costs.
pub trait BackingStore {
    /// Write `data` at `offset`. Returns when the device accepted and when
    /// it will finish; the caller does not wait, but must not reuse the
    /// memory backing an entry until `done`.
    fn write(&mut self, now: Ns, offset: u64, data: &[u8]) -> Completion;

    /// Read into `out` from `offset`, blocking until the data is
    /// available; returns the completion instant.
    fn read(&mut self, now: Ns, offset: u64, out: &mut [u8]) -> Ns;

    /// Total capacity in bytes.
    fn capacity(&self) -> u64;
}

/// In-memory backing store for tests: fixed per-request latency plus a
/// bandwidth term, FIFO-serialized like a real device.
#[derive(Debug, Clone)]
pub struct MemBacking {
    data: Vec<u8>,
    /// Fixed cost per request.
    pub latency: Ns,
    /// Transfer bandwidth in bytes/sec.
    pub bandwidth: u64,
    busy_until: Ns,
    /// Number of writes accepted.
    pub writes: u64,
    /// Number of reads served.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

impl MemBacking {
    /// A store of `capacity` bytes with the given costs.
    pub fn new(capacity: usize, latency: Ns, bandwidth: u64) -> Self {
        MemBacking {
            data: vec![0; capacity],
            latency,
            bandwidth,
            busy_until: Ns::ZERO,
            writes: 0,
            reads: 0,
            bytes_written: 0,
            bytes_read: 0,
        }
    }

    /// A fast store for mechanism-only tests (1 µs latency, 100 MB/s).
    pub fn fast(capacity: usize) -> Self {
        Self::new(capacity, Ns::from_us(1), 100_000_000)
    }
}

impl BackingStore for MemBacking {
    fn write(&mut self, now: Ns, offset: u64, data: &[u8]) -> Completion {
        let start = now.max(self.busy_until);
        let done = start + self.latency + Ns::for_transfer(data.len() as u64, self.bandwidth);
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        self.busy_until = done;
        self.writes += 1;
        self.bytes_written += data.len() as u64;
        Completion { start, done }
    }

    fn read(&mut self, now: Ns, offset: u64, out: &mut [u8]) -> Ns {
        let start = now.max(self.busy_until);
        let done = start + self.latency + Ns::for_transfer(out.len() as u64, self.bandwidth);
        out.copy_from_slice(&self.data[offset as usize..offset as usize + out.len()]);
        self.busy_until = done;
        self.reads += 1;
        self.bytes_read += out.len() as u64;
        done
    }

    fn capacity(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut b = MemBacking::fast(1024);
        let w = b.write(Ns::ZERO, 100, &[1, 2, 3]);
        let mut out = [0u8; 3];
        let done = b.read(w.done, 100, &mut out);
        assert_eq!(out, [1, 2, 3]);
        assert!(done > w.done);
    }

    #[test]
    fn requests_serialize() {
        let mut b = MemBacking::new(4096, Ns::from_ms(1), 1_000_000);
        let w1 = b.write(Ns::ZERO, 0, &[0u8; 1000]);
        let w2 = b.write(Ns::ZERO, 1000, &[0u8; 1000]);
        assert_eq!(w2.start, w1.done);
        let mut buf = [0u8; 8];
        let r = b.read(Ns::ZERO, 0, &mut buf);
        assert!(r > w2.done);
        assert_eq!(b.writes, 2);
        assert_eq!(b.reads, 1);
    }
}
