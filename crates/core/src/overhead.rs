//! Memory-overhead accounting, reproducing the arithmetic of §4.4.
//!
//! The paper itemizes what the compression cache costs in memory beyond
//! the frames it maps:
//!
//! - the LZRW1 hash table (16 KB in the measured system);
//! - 22 KB of additional kernel code;
//! - an 8-byte page-table extension for *every* virtual page, resident or
//!   not (an unmodified system stores 4 bytes per non-resident page; the
//!   modified one stores 12);
//! - 8 bytes per VA slot the cache might ever occupy (sized at boot);
//! - a 24-byte header per physical frame actually mapped (0.6%);
//! - a 36-byte header per compressed page in the cache.
//!
//! §4.4's worked example: "if the collective virtual memory of all running
//! processes is 60 Mbytes, with 4-Kbyte pages, the per-page overhead for
//! the compression cache would total 120 Kbytes."

use crate::config::CacheConfig;

/// Static and dynamic memory overhead of a compression cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// LZRW1 hash table bytes.
    pub hash_table: u64,
    /// Extra kernel code bytes (22 KB measured in the paper).
    pub kernel_code: u64,
    /// Page-table extension: 8 bytes per virtual page in the system.
    pub page_table_extension: u64,
    /// Slot descriptors: 8 bytes per possible cache slot (boot-time).
    pub slot_descriptors: u64,
    /// Frame headers: 24 bytes per currently mapped frame.
    pub frame_headers: u64,
    /// Entry headers: 36 bytes per live compressed page.
    pub entry_headers: u64,
}

/// Extra kernel code size measured in the paper (§4.4).
pub const KERNEL_CODE_BYTES: u64 = 22 * 1024;
/// Page-table extension per virtual page (§4.4).
pub const PT_EXTENSION_PER_PAGE: u64 = 8;
/// Per-slot descriptor (§4.4: "8 bytes per page in the range of addresses
/// the compression cache might occupy").
pub const SLOT_DESCRIPTOR_BYTES: u64 = 8;

impl OverheadReport {
    /// Compute the report for a system with `total_virtual_pages` of
    /// virtual memory, a cache configured by `cfg` with `mapped_frames`
    /// frames currently mapped and `live_entries` compressed pages, and a
    /// hash table of `hash_table_bytes`.
    pub fn compute(
        cfg: &CacheConfig,
        total_virtual_pages: u64,
        mapped_frames: u64,
        live_entries: u64,
        hash_table_bytes: u64,
    ) -> Self {
        OverheadReport {
            hash_table: hash_table_bytes,
            kernel_code: KERNEL_CODE_BYTES,
            page_table_extension: total_virtual_pages * PT_EXTENSION_PER_PAGE,
            slot_descriptors: cfg.max_slots as u64 * SLOT_DESCRIPTOR_BYTES,
            frame_headers: mapped_frames * cfg.frame_header_bytes as u64,
            entry_headers: live_entries * cfg.entry_header_bytes as u64,
        }
    }

    /// Fixed overhead that exists even when the cache is empty.
    pub fn static_bytes(&self) -> u64 {
        self.hash_table + self.kernel_code + self.page_table_extension + self.slot_descriptors
    }

    /// Overhead proportional to current cache contents.
    pub fn dynamic_bytes(&self) -> u64 {
        self.frame_headers + self.entry_headers
    }

    /// Everything.
    pub fn total_bytes(&self) -> u64 {
        self.static_bytes() + self.dynamic_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // 60 MB of virtual memory in 4 KB pages = 15360 pages; the paper
        // says the per-page overhead "would total 120 Kbytes".
        let cfg = CacheConfig::paper(1024);
        let report = OverheadReport::compute(&cfg, 60 * 1024 * 1024 / 4096, 0, 0, 16 * 1024);
        assert_eq!(report.page_table_extension, 120 * 1024);
    }

    #[test]
    fn frame_header_fraction_matches_paper() {
        // 24 bytes per 4096-byte frame is the paper's "0.6% overhead".
        let cfg = CacheConfig::paper(1024);
        let report = OverheadReport::compute(&cfg, 0, 100, 0, 0);
        let frac = report.frame_headers as f64 / (100.0 * 4096.0);
        assert!((frac - 0.006).abs() < 0.0005, "got {frac}");
    }

    #[test]
    fn totals_add_up() {
        let cfg = CacheConfig::paper(2048);
        let r = OverheadReport::compute(&cfg, 10_000, 500, 1200, 16 * 1024);
        assert_eq!(r.static_bytes() + r.dynamic_bytes(), r.total_bytes());
        assert_eq!(r.slot_descriptors, 2048 * 8);
        assert_eq!(r.frame_headers, 500 * 24);
        assert_eq!(r.entry_headers, 1200 * 36);
        assert_eq!(r.kernel_code, 22 * 1024);
    }
}
