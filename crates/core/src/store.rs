//! A standalone, thread-safe compressed page store — the paper's idea as
//! a modern library API.
//!
//! The simulator in this workspace reproduces the 1993 system; this
//! module is the same mechanism packaged the way its descendants (zram,
//! zswap, the macOS/Windows compressed memory managers) expose it: a
//! bounded in-memory store that keeps pages compressed, with spill of the
//! coldest entries to a backing file handled by a background writer
//! thread — the §4.2 cleaner, for real this time.
//!
//! # Concurrency
//!
//! The store is **lock-striped**: keys hash onto a power-of-two number of
//! shards (default: one per hardware thread), each with its own entry
//! map, LRU spill ordering, and buffer pool behind its own mutex. The
//! global memory budget is enforced through a single atomic byte counter
//! using compare-and-swap reservation, so `stats().resident_bytes` never
//! exceeds the configured budget, while puts and gets on different shards
//! proceed fully in parallel. Compression and decompression always run
//! outside any shard lock, on thread-local reusable buffers, so the
//! steady-state hot path performs no heap allocation.
//!
//! # Spill pipeline
//!
//! Evicted entries travel through a batched write pipeline that mirrors
//! the paper's §4.3 backing-store interface: the writer thread coalesces
//! queued entries into [`StoreConfig::spill_batch_bytes`]-sized batches
//! (32 KB by default, the paper's batch size) and issues one seek + one
//! write per batch, publishing each entry's `{offset, len}` only after
//! the batch is durable. Removed or replaced spilled entries leave dead
//! bytes behind; when the dead fraction of the file crosses
//! [`StoreConfig::gc_dead_ratio`] the writer compacts live extents toward
//! the file head and truncates — the paper's fragment garbage collection.
//! Pages that are a single repeated machine word (zswap's "same-filled"
//! pages) bypass the compressor entirely and are stored as an 8-byte
//! pattern with zero residency cost.
//!
//! # Tiering
//!
//! Placement across the three tiers — **hot** (uncompressed-resident,
//! a get is a memcpy), **warm** (compressed-in-memory), **cold**
//! (spilled) — is decided per entry by a pluggable
//! [`crate::tier::TierPolicy`]. Every put and get bumps a global
//! operation clock and stamps the entry, giving each page a cheap
//! generation-counter age; the put path's sampled compressibility probe
//! is recorded per entry so later demotion reuses it instead of
//! re-probing. The default policy
//! ([`crate::tier::RecencyCompressibility`]) admits incompressible
//! pages hot, promotes warm/cold pages back to hot on rapid re-access
//! (never evicting to do so — promotion only proceeds when the extra
//! bytes fit the budget outright), and relies on a background demoter
//! thread that, under budget pressure, compresses aged hot pages down
//! to warm and spills aged warm pages cold.
//! [`crate::tier::CompressAll`] reproduces the flat pre-tiering store
//! exactly (no hot tier, no demoter thread), and
//! [`crate::tier::PaperThreshold`] reproduces the paper's 4:3 rule as
//! a pure admission-time split.
//!
//! # Fault model
//!
//! The spill path assumes the medium *lies* (see [`crate::medium`]):
//! every extent on the file carries a self-verifying header (magic,
//! payload length, generation, codec id, and a CRC-32 covering both the
//! header fields and the compressed payload) written at batch-commit
//! time, so a corrupted or misdirected read is detected and surfaced as
//! [`StoreError::Corrupt`] — never decompressed into a user page, and
//! never decoded with a codec other than the one that sealed it.
//!
//! # Codec selection
//!
//! Each put selects a codec under [`StoreConfig::codec_policy`]
//! (default adaptive): a cheap sampled probe classifies the page and
//! routes word-regular pages to the single-pass BDI codec, everything
//! else to LZRW1, with automatic fallback when the probe mispredicts.
//! The chosen [`cc_compress::CodecId`] is recorded in the entry and
//! sealed into any spill extent; per-codec put counts, achieved bytes,
//! and compress/decompress latency histograms flow through telemetry. Transient read/write failures get bounded retry with
//! exponential backoff ([`StoreConfig::with_spill_retry`]); after
//! [`StoreConfig::degrade_after`] consecutive hard batch failures the
//! store enters **degraded mode**: spill is disabled, eviction becomes
//! clean-page *shedding* (dropping the coldest entries — cache-miss
//! semantics — to stay under budget), and a probation loop re-probes the
//! medium every [`StoreConfig::probe_interval`], re-enabling spill once
//! a canary write/read round-trips. The transitions are counted and
//! ring-logged, and [`CompressedStore::is_degraded`] exposes the gauge.
//!
//! # Telemetry
//!
//! Every store carries a [`cc_telemetry::Telemetry`] instance:
//! [`StoreStats`] is assembled from its shard-striped counter bank (so a
//! stats read takes no shard lock and no field can tear), put/get/spill
//! I/O and GC pauses feed lock-free latency histograms, and structural
//! events (batch commits, GC passes, evictions, threshold rejects,
//! same-filled elisions) flow through a bounded lossy event ring. Get a
//! [`cc_telemetry::Snapshot`] via [`CompressedStore::telemetry_snapshot`];
//! disable the sampling (never the counters) with
//! [`StoreConfig::with_telemetry`].
//!
//! ```
//! use cc_core::store::{CompressedStore, StoreConfig};
//!
//! let store = CompressedStore::new(StoreConfig::in_memory(16 * 1024 * 1024));
//! let page = vec![7u8; 4096];
//! store.put(42, &page).unwrap();
//! let mut out = vec![0u8; 4096];
//! assert!(store.get(42, &mut out).unwrap());
//! assert_eq!(out, page);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::medium::{FileMedium, SpillMedium};
use crate::persist::{
    self, jkind, JournalRecord, Persist, PersistState, RecoverError, Superblock,
    SUPERBLOCK_RESERVED,
};
use crate::tier::{PlacementQuery, TierDecision, TierPolicy};
use cc_compress::{
    expand_same_filled, probe_bdi, same_filled_pattern, CodecId, CodecPolicy, CodecSet,
    ThresholdPolicy,
};
use cc_telemetry::trace::{sop, tier as strier, AnomalyKind, Span, TraceCtx, Tracer};
use cc_telemetry::{Telemetry, TelemetrySpec};
use cc_util::{Crc32, LruList};

/// Counter indices into the store's [`TelemetrySpec`] (one striped,
/// cache-padded atomic per shard per counter — the statistics of record,
/// live even when latency sampling is disabled).
mod tstat {
    pub const COMPRESSED: usize = 0;
    pub const STORED_RAW: usize = 1;
    pub const SAME_FILLED: usize = 2;
    pub const HITS_MEMORY: usize = 3;
    pub const HITS_SPILL: usize = 4;
    pub const MISSES: usize = 5;
    pub const SPILLED: usize = 6;
    pub const SPILL_BATCHES: usize = 7;
    pub const GC_RUNS: usize = 8;
    pub const GC_BYTES_RELOCATED: usize = 9;
    pub const SPILL_FALLBACK_RESIDENT: usize = 10;
    pub const SHED_PAGES: usize = 11;
    pub const CORRUPT_DETECTED: usize = 12;
    pub const IO_RETRIES: usize = 13;
    pub const DEGRADED_ENTERED: usize = 14;
    pub const DEGRADED_RECOVERED: usize = 15;
    pub const MEDIUM_PROBES: usize = 16;
    pub const PUTS_LZRW1: usize = 17;
    pub const PUTS_BDI: usize = 18;
    pub const CODEC_FALLBACKS: usize = 19;
    pub const LZRW1_IN_BYTES: usize = 20;
    pub const LZRW1_OUT_BYTES: usize = 21;
    pub const BDI_IN_BYTES: usize = 22;
    pub const BDI_OUT_BYTES: usize = 23;
    pub const HITS_HOT: usize = 24;
    pub const PUTS_HOT: usize = 25;
    pub const PROMOTIONS: usize = 26;
    pub const PROMOTIONS_REJECTED: usize = 27;
    pub const DEMOTED_HOT: usize = 28;
    pub const DEMOTED_WARM: usize = 29;
    pub const DEMOTER_PASSES: usize = 30;
    pub const EXTENTS_RECOVERED: usize = 31;
    pub const JOURNAL_RECORDS_REPLAYED: usize = 32;
    pub const TORN_TAIL_DISCARDED: usize = 33;
    pub const STALE_GENERATION_DROPPED: usize = 34;
    pub const RECOVERY_EXTENTS_VERIFIED: usize = 35;
    pub const JOURNAL_RECORDS_WRITTEN: usize = 36;
    pub const JOURNAL_COMPACTIONS: usize = 37;
    pub const CLEAN_RECOVERIES: usize = 38;
    pub const NAMES: &[&str] = &[
        "compressed",
        "stored_raw",
        "same_filled",
        "hits_memory",
        "hits_spill",
        "misses",
        "spilled",
        "spill_batches",
        "gc_runs",
        "gc_bytes_relocated",
        "spill_fallback_resident",
        "shed_pages",
        "corrupt_detected",
        "io_retries",
        "degraded_entered",
        "degraded_recovered",
        "medium_probes",
        "puts_lzrw1",
        "puts_bdi",
        "codec_fallbacks",
        "lzrw1_in_bytes",
        "lzrw1_out_bytes",
        "bdi_in_bytes",
        "bdi_out_bytes",
        "hits_hot",
        "puts_hot",
        "promotions",
        "promotions_rejected",
        "demoted_hot",
        "demoted_warm",
        "demoter_passes",
        "extents_recovered",
        "journal_records_replayed",
        "torn_tail_discarded",
        "stale_generation_dropped",
        "recovery_extents_verified",
        "journal_records_written",
        "journal_compactions",
        "clean_recoveries",
    ];
}

/// Timed-operation indices (one lock-free latency histogram each).
mod top {
    pub const PUT: usize = 0;
    pub const GET_MEMORY: usize = 1;
    pub const GET_SAME_FILLED: usize = 2;
    pub const GET_SPILL: usize = 3;
    pub const SPILL_WRITE: usize = 4;
    pub const SPILL_READ: usize = 5;
    pub const GC_PAUSE: usize = 6;
    pub const COMPRESS_LZRW1: usize = 7;
    pub const COMPRESS_BDI: usize = 8;
    pub const DECOMPRESS_LZRW1: usize = 9;
    pub const DECOMPRESS_BDI: usize = 10;
    pub const GET_HOT: usize = 11;
    pub const PROMOTE: usize = 12;
    pub const DEMOTE_PAUSE: usize = 13;
    pub const RECOVERY: usize = 14;
    pub const NAMES: &[&str] = &[
        "put",
        "get_memory",
        "get_same_filled",
        "get_spill",
        "spill_write",
        "spill_read",
        "gc_pause",
        "compress_lzrw1",
        "compress_bdi",
        "decompress_lzrw1",
        "decompress_bdi",
        "get_hot",
        "promote",
        "demote_pause",
        "recovery_duration",
    ];
}

/// Structured event kinds pushed into the telemetry ring.
mod tevent {
    /// `a` = entries in the batch, `b` = batch bytes.
    pub const BATCH_COMMIT: usize = 0;
    /// `a` = bytes relocated, `b` = pause nanoseconds.
    pub const GC_RUN: usize = 1;
    /// `a` = victim key, `b` = compressed bytes spilled.
    pub const EVICT: usize = 2;
    /// `a` = key, `b` = bytes stored raw after the threshold rejected
    /// the compressed form.
    pub const THRESHOLD_REJECT: usize = 3;
    /// `a` = key, `b` = the repeated 8-byte pattern.
    pub const SAME_FILLED: usize = 4;
    /// `a` = consecutive hard batch failures at the transition, `b` = 0.
    pub const DEGRADE: usize = 5;
    /// `a` = probes issued while degraded, `b` = 0.
    pub const RECOVER: usize = 6;
    /// `a` = key shed, `b` = compressed bytes dropped.
    pub const SHED: usize = 7;
    /// `a` = key, `b` = file offset of the extent that failed
    /// verification.
    pub const CORRUPT: usize = 8;
    /// `a` = key promoted to hot, `b` = source tier
    /// ([`cc_telemetry::trace::tier`] code).
    pub const PROMOTE: usize = 9;
    /// `a` = pages demoted by one demoter pass, `b` = pass nanoseconds.
    pub const DEMOTE: usize = 10;
    /// Warm restart: `a` = extents recovered from the spill file,
    /// `b` = recovery duration in nanoseconds.
    pub const RECOVERY: usize = 11;
    pub const NAMES: &[&str] = &[
        "batch_commit",
        "gc_run",
        "evict",
        "threshold_reject",
        "same_filled",
        "degrade",
        "recover",
        "shed",
        "corrupt",
        "promote",
        "demote",
        "recovery",
    ];
}

/// The store's telemetry layout: shard-striped counters, per-operation
/// latency histograms, and the structured event kinds above.
const STORE_TELEMETRY: TelemetrySpec = TelemetrySpec {
    counters: tstat::NAMES,
    ops: top::NAMES,
    events: tevent::NAMES,
};

/// Configuration of a [`CompressedStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum bytes of compressed data held in memory. Beyond this, the
    /// coldest entries are spilled (if a spill file is configured) or
    /// puts fail with [`StoreError::OutOfMemory`].
    pub memory_budget: usize,
    /// Optional spill file path; created/truncated on open.
    pub spill_path: Option<PathBuf>,
    /// Keep-compressed threshold; pages failing it are stored raw (they
    /// still count against the budget — exactly the paper's accounting).
    pub threshold: ThresholdPolicy,
    /// Which codec(s) the put path may use. The default,
    /// [`CodecPolicy::Adaptive`], probes each page and runs the BDI
    /// word-pattern codec when it predicts a win, LZRW1 otherwise;
    /// `Lzrw1Only` reproduces the paper's single-codec behavior and
    /// `BdiOnly` is the ablation arm. The chosen codec's id is recorded
    /// in the entry and sealed into any spill extent, so a policy change
    /// between runs never misdecodes existing data.
    pub codec_policy: CodecPolicy,
    /// Number of lock-striped shards, rounded up to a power of two.
    /// `0` (the default) sizes the striping to the hardware parallelism.
    pub shards: usize,
    /// Target bytes per coalesced spill batch. The writer thread packs
    /// queued entries until a batch reaches this size (or the queue goes
    /// briefly idle) and writes it with a single seek + write. Default is
    /// the paper's §4.3 batch size, 32 KB.
    pub spill_batch_bytes: usize,
    /// Dead-space fraction of the spill file (`spill_dead_bytes /
    /// bytes_on_spill`) beyond which the writer compacts live extents
    /// toward the file head and truncates. Default `0.5`.
    pub gc_dead_ratio: f64,
    /// Whether latency sampling and hot-path event capture are enabled
    /// (default `true`). Counters stay live either way — [`StoreStats`]
    /// is always exact — and the writer thread's batch/GC timings are
    /// always recorded since they are off the data path.
    pub telemetry: bool,
    /// Total attempts (first try + retries) for a spill read or batch
    /// write before the failure is treated as hard. Default 3; clamped
    /// to at least 1.
    pub spill_retry_attempts: u32,
    /// Backoff before retry `n` is `spill_retry_base << (n - 1)`
    /// (exponential). Default 500 µs.
    pub spill_retry_base: Duration,
    /// Consecutive *hard* batch-write failures (each already having
    /// exhausted its retries) after which the store enters degraded
    /// mode. Default 3.
    pub degrade_after: u32,
    /// While degraded, the writer probes the medium with a canary
    /// write/read round-trip at this interval, re-enabling spill on
    /// success. Default 50 ms.
    pub probe_interval: Duration,
    /// Optional request tracer / flight recorder. When set, sampled
    /// requests record causal spans (put/get, compress, spill queue +
    /// write, spill read, GC) and store anomalies (corruption,
    /// degraded-mode entry, long GC pauses) trigger automatic dumps.
    /// Share the same instance with the server (the service picks it up
    /// from the store) so one trace covers wire and store.
    pub tracer: Option<Arc<Tracer>>,
    /// Hot/warm/cold placement policy (see [`crate::tier`]). The
    /// default, [`crate::tier::RecencyCompressibility`], keeps
    /// incompressible and rapidly re-accessed pages uncompressed in the
    /// hot tier and ages them back down under pressure;
    /// [`crate::tier::CompressAll`] reproduces the flat pre-tiering
    /// store exactly.
    pub tier_policy: Arc<dyn TierPolicy>,
    /// How often the background demoter wakes to sweep for aged hot and
    /// warm pages (only spawned when the policy wants aging at all;
    /// budget-pressure evictions also nudge it awake early). Default
    /// 5 ms.
    pub demote_interval: Duration,
    /// Make the spill tier crash-safe and warm-restartable: a
    /// checksummed superblock heads the spill file and every durable
    /// spill batch group-commits its locations to a sibling
    /// `<spill_path>.map` journal, so [`CompressedStore::open_existing`]
    /// can rebuild the cold tier after a crash or restart. Default
    /// `false` (the spill file is scratch space that dies with the
    /// process).
    pub persistent: bool,
}

/// The paper's §4.3 write-back batch size.
const DEFAULT_SPILL_BATCH: usize = 32 * 1024;

/// Default total attempts for a spill read or batch write.
const DEFAULT_RETRY_ATTEMPTS: u32 = 3;

/// Default base backoff between spill I/O retries.
const DEFAULT_RETRY_BASE: Duration = Duration::from_micros(500);

/// Default consecutive hard batch failures before degrading.
const DEFAULT_DEGRADE_AFTER: u32 = 3;

/// Default medium re-probe interval while degraded.
const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(50);

/// Default background demoter wake interval.
const DEFAULT_DEMOTE_INTERVAL: Duration = Duration::from_millis(5);

impl StoreConfig {
    /// Memory-only store with the paper's 4:3 threshold.
    pub fn in_memory(memory_budget: usize) -> Self {
        StoreConfig {
            memory_budget,
            spill_path: None,
            threshold: ThresholdPolicy::default(),
            codec_policy: CodecPolicy::default(),
            shards: 0,
            spill_batch_bytes: DEFAULT_SPILL_BATCH,
            gc_dead_ratio: 0.5,
            telemetry: true,
            spill_retry_attempts: DEFAULT_RETRY_ATTEMPTS,
            spill_retry_base: DEFAULT_RETRY_BASE,
            degrade_after: DEFAULT_DEGRADE_AFTER,
            probe_interval: DEFAULT_PROBE_INTERVAL,
            tracer: None,
            tier_policy: crate::tier::default_policy(),
            demote_interval: DEFAULT_DEMOTE_INTERVAL,
            persistent: false,
        }
    }

    /// Store with a spill file for overflow.
    pub fn with_spill(memory_budget: usize, path: impl Into<PathBuf>) -> Self {
        StoreConfig {
            spill_path: Some(path.into()),
            ..StoreConfig::in_memory(memory_budget)
        }
    }

    /// Make the spill tier crash-safe (see [`StoreConfig::persistent`]).
    /// Open a fresh store with [`CompressedStore::new`] and a restart
    /// survivor with [`CompressedStore::open_existing`].
    pub fn with_persistent(mut self, on: bool) -> Self {
        self.persistent = on;
        self
    }

    /// Override the codec-selection policy (see
    /// [`StoreConfig::codec_policy`]). The bench harness sweeps
    /// `lzrw1-only` / `adaptive` / `bdi-only` through this.
    pub fn with_codec_policy(mut self, policy: CodecPolicy) -> Self {
        self.codec_policy = policy;
        self
    }

    /// Override the shard count (rounded up to a power of two; `1` gives
    /// the pre-striping behavior of one global lock, useful as a
    /// scaling baseline).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Override the spill batch target (clamped to at least one byte, so
    /// `1` degenerates to one-entry-per-write, useful as a baseline).
    pub fn with_spill_batch_bytes(mut self, bytes: usize) -> Self {
        self.spill_batch_bytes = bytes.max(1);
        self
    }

    /// Override the dead-space ratio that triggers spill-file compaction.
    /// Values ≥ 1.0 effectively disable GC.
    pub fn with_gc_dead_ratio(mut self, ratio: f64) -> Self {
        self.gc_dead_ratio = ratio.max(0.0);
        self
    }

    /// Enable or disable latency sampling and hot-path event capture
    /// (counters are unaffected). `false` is the baseline the bench
    /// harness compares against to measure telemetry overhead.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Override the spill I/O retry policy: `attempts` total tries
    /// (clamped to at least 1) with exponential backoff starting at
    /// `base`.
    pub fn with_spill_retry(mut self, attempts: u32, base: Duration) -> Self {
        self.spill_retry_attempts = attempts.max(1);
        self.spill_retry_base = base;
        self
    }

    /// Override how many consecutive hard batch failures trigger
    /// degraded mode (clamped to at least 1).
    pub fn with_degrade_after(mut self, n: u32) -> Self {
        self.degrade_after = n.max(1);
        self
    }

    /// Override the degraded-mode medium re-probe interval.
    pub fn with_probe_interval(mut self, t: Duration) -> Self {
        self.probe_interval = t;
        self
    }

    /// Attach a request tracer / flight recorder (see
    /// [`StoreConfig::tracer`]).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Override the tier placement policy (see
    /// [`StoreConfig::tier_policy`]). The bench harness sweeps
    /// `compress-all` / `paper-threshold` / `recency` through this.
    pub fn with_tier_policy(mut self, policy: Arc<dyn TierPolicy>) -> Self {
        self.tier_policy = policy;
        self
    }

    /// Override the background demoter wake interval (see
    /// [`StoreConfig::demote_interval`]).
    pub fn with_demote_interval(mut self, t: Duration) -> Self {
        self.demote_interval = t;
        self
    }

    /// The shard count this config will actually build: the requested
    /// count (or available parallelism when unset), rounded up to a
    /// power of two and clamped to `1..=256`.
    pub fn resolved_shards(&self) -> usize {
        let n = if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8)
        } else {
            self.shards
        };
        n.next_power_of_two().clamp(1, 256)
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The memory budget is exhausted and no spill file is configured.
    OutOfMemory,
    /// Page size differs from the store's page size (fixed at first put).
    BadPageSize {
        /// Size the store was created with.
        expected: usize,
        /// Size offered.
        got: usize,
    },
    /// The store has been shut down ([`CompressedStore::shutdown`]) — or
    /// its spill writer died — and this operation needed it. Reads and
    /// puts that fit in memory still succeed.
    ShuttingDown,
    /// A spilled extent failed self-verification (bad magic, length or
    /// generation mismatch, or CRC-32 failure) on every retry. The
    /// entry has been dropped — a subsequent get misses instead of
    /// returning garbage.
    Corrupt,
    /// Spill-file I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfMemory => write!(f, "compressed store memory budget exhausted"),
            StoreError::BadPageSize { expected, got } => {
                write!(f, "page size mismatch: store uses {expected}, got {got}")
            }
            StoreError::ShuttingDown => {
                write!(f, "store is shutting down; spill writer stopped")
            }
            StoreError::Corrupt => {
                write!(f, "spilled extent failed verification; entry dropped")
            }
            StoreError::Io(e) => write!(f, "spill I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Which tier served a successful [`CompressedStore::get_tier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// Served by memcpy from the uncompressed-resident hot tier; no
    /// decompression at all.
    Hot,
    /// Served from compressed bytes resident in memory (including entries
    /// still queued for the writer thread).
    Memory,
    /// Reconstructed from an 8-byte same-filled pattern; no decompression.
    SameFilled,
    /// Read back from the spill file.
    Spill,
}

/// Counters (all monotonic except the byte gauges).
///
/// Assembled from the store's telemetry counter bank: every field is an
/// independent per-shard-striped atomic summed at read time, so a
/// snapshot is per-field exact — no shard locks are taken and no field
/// can tear, even while every shard is being hammered.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Pages stored compressed.
    pub compressed: u64,
    /// Pages stored raw (failed the threshold).
    pub stored_raw: u64,
    /// Admitted pages whose stored form was sealed by LZRW1.
    pub puts_lzrw1: u64,
    /// Admitted pages whose stored form was sealed by the BDI codec.
    pub puts_bdi: u64,
    /// Adaptive-policy probe mispredictions: the probe chose BDI but its
    /// real output missed the admit bound, so LZRW1 ran as well.
    pub codec_fallbacks: u64,
    /// Original bytes of pages admitted under LZRW1 (with
    /// [`StoreStats::lzrw1_out_bytes`], the codec's achieved ratio).
    pub lzrw1_in_bytes: u64,
    /// Sealed bytes produced by LZRW1 for admitted pages.
    pub lzrw1_out_bytes: u64,
    /// Original bytes of pages admitted under BDI.
    pub bdi_in_bytes: u64,
    /// Sealed bytes produced by BDI for admitted pages.
    pub bdi_out_bytes: u64,
    /// Pages detected as a single repeated word and stored as an 8-byte
    /// pattern, bypassing the compressor and the memory budget.
    pub same_filled: u64,
    /// Puts placed (or kept) uncompressed in the hot tier by the tier
    /// policy — re-puts of fresh hot pages skip the compressor entirely.
    pub puts_hot: u64,
    /// Gets served by memcpy from the hot tier.
    pub hits_hot: u64,
    /// Warm or cold pages decompressed back into the hot tier on
    /// re-access.
    pub promotions: u64,
    /// Promotions the policy asked for that the store declined — the
    /// uncompressed bytes did not fit the budget without eviction, or
    /// the entry changed while the budget was being reserved.
    pub promotions_rejected: u64,
    /// Hot pages the demoter (or budget-pressure eviction) compressed
    /// down to warm or shipped cold.
    pub demoted_hot: u64,
    /// Warm pages the background demoter spilled cold by age (pressure
    /// evictions on the put path are counted in
    /// [`StoreStats::spilled`], not here).
    pub demoted_warm: u64,
    /// Background demoter sweeps that ran (pressure gates open).
    pub demoter_passes: u64,
    /// Gets served from memory.
    pub hits_memory: u64,
    /// Gets served from the spill file.
    pub hits_spill: u64,
    /// Gets for unknown keys.
    pub misses: u64,
    /// Entries spilled to disk.
    pub spilled: u64,
    /// Coalesced batches the spill writer has committed
    /// (`spilled / spill_batches` is the achieved batching factor).
    pub spill_batches: u64,
    /// Spill-file compaction passes completed.
    pub gc_runs: u64,
    /// Bytes of live extents physically copied by compaction passes
    /// (extents already at their compacted position are not counted).
    pub gc_bytes_relocated: u64,
    /// Longest single compaction pass observed, in nanoseconds.
    pub gc_pause_max_ns: u64,
    /// Entries reverted to memory residence because their batch write
    /// hard-failed (the [`SPILL_FAILED`] fallback path).
    pub spill_fallback_resident: u64,
    /// Entries dropped outright (cache-miss semantics) to restore the
    /// budget — degraded-mode eviction and post-fallback shedding.
    pub shed_pages: u64,
    /// Spilled-extent verification failures detected (each one is a
    /// read that would have returned garbage without the header).
    pub corrupt_detected: u64,
    /// Spill I/O retries issued after transient read/write failures.
    pub io_retries: u64,
    /// Transitions into degraded mode.
    pub degraded_entered: u64,
    /// Recoveries out of degraded mode (successful probation probes).
    pub degraded_recovered: u64,
    /// Canary probes issued against the medium while degraded.
    pub medium_probes: u64,
    /// Whether the store is currently degraded (spill disabled,
    /// memory-only with shedding).
    pub degraded: bool,
    /// Current spill-file size in bytes (gauge).
    pub bytes_on_spill: u64,
    /// Bytes in the spill file belonging to removed or replaced entries,
    /// reclaimable by the next compaction (gauge).
    pub spill_dead_bytes: u64,
    /// Current compressed bytes resident in memory (same as
    /// [`StoreStats::resident_bytes`]; kept for source compatibility).
    pub memory_bytes: u64,
    /// Current bytes resident in memory across the hot and warm tiers,
    /// never above the configured budget.
    pub resident_bytes: u64,
    /// Uncompressed bytes currently resident in the hot tier (gauge;
    /// included in [`StoreStats::resident_bytes`]).
    pub hot_bytes: u64,
    /// Sealed bytes currently resident in the warm tier (gauge;
    /// included in [`StoreStats::resident_bytes`]).
    pub warm_bytes: u64,
    /// Cold extents recovered from the spill file at open
    /// ([`CompressedStore::open_existing`]) and served without re-PUT.
    pub extents_recovered: u64,
    /// Location-map journal records replayed during recovery.
    pub journal_records_replayed: u64,
    /// Torn journal tails and unverifiable extents discarded by
    /// recovery (each one would have been garbage if served).
    pub torn_tail_discarded: u64,
    /// Journal records dropped by generation arbitration during replay
    /// (superseded puts, out-of-date relocations).
    pub stale_generation_dropped: u64,
    /// Extents re-read and CRC-verified during recovery. Zero after a
    /// clean shutdown — the fast warm start skipped the scan.
    pub recovery_extents_verified: u64,
    /// Location records group-committed to the journal since open.
    pub journal_records_written: u64,
    /// Journal compaction passes (epoch flips) since open.
    pub journal_compactions: u64,
    /// Opens that took the clean-shutdown fast path (0 or 1 for this
    /// store; summable across restarts by an aggregator).
    pub clean_recoveries: u64,
    /// Wall-clock nanoseconds the recovery replay + verification took
    /// at open (0 when this store was not opened from existing media).
    pub recovery_ns: u64,
}

enum Residence {
    /// The hot tier: the page's raw uncompressed bytes (not a sealed
    /// block — no method byte), tracked on the shard's hot LRU and
    /// counted against the budget at full page size. A get is a memcpy.
    Hot {
        data: Vec<u8>,
        handle: cc_util::LruHandle,
    },
    /// Compressed (or raw) bytes in memory, LRU-tracked, counted against
    /// the budget.
    Memory {
        data: Vec<u8>,
        handle: cc_util::LruHandle,
    },
    /// The whole page is one repeated 8-byte word; nothing is stored but
    /// the pattern. Never LRU-tracked or spilled: reconstructing it is
    /// cheaper than any I/O, and it occupies no budget.
    SameFilled { pattern: u64 },
    /// Handed to the writer; data still readable until the write lands.
    /// The generation ties the eventual completion to *this* hand-off: a
    /// key can be replaced and re-spilled while an older job is still
    /// queued, and the stale completion must not be believed.
    Spilling { data: Arc<Vec<u8>>, gen: u64 },
    /// On the spill file. `len` is the full extent length — the
    /// [`EXTENT_HEADER`]-byte self-verifying header plus the compressed
    /// payload. The generation survives from the spill job so a reader
    /// can detect (and retry across) a concurrent replacement even if GC
    /// relocates extents while its read is in flight, and is also sealed
    /// into the header so a misdirected read is caught by verification.
    Spilled { offset: u64, len: u32, gen: u64 },
}

struct Entry {
    residence: Residence,
    orig_len: u32,
    /// [`CodecId`] (as its wire byte) that sealed this entry's bytes.
    /// Decode always dispatches on this — never on guessing — and it is
    /// also sealed into the spill extent header so the two can be
    /// cross-checked after a read. Hot entries record [`CodecId::Raw`]
    /// (nothing is sealed while hot).
    codec: u8,
    /// The put path's sampled BDI-probe verdict for these exact page
    /// bytes: 0 = not probed (non-adaptive policy), 1 = predicted BDI,
    /// 2 = predicted not-BDI. Demotion hands this back to the codec
    /// layer so aging a hot page never re-probes it.
    probe: u8,
    /// Gets served since the last put of this key (saturating). The
    /// promotion signal: re-access frequency within the recency window.
    gets: u16,
    /// Low 32 bits of the store's operation clock when this entry was
    /// last put or got. Ages are wrapping differences on this — at one
    /// op per clock tick a 32-bit window is ~4 billion operations deep,
    /// far past any policy's idle threshold.
    last_touch: u32,
    /// Whether this key has a location record in the persistence
    /// journal (set when a spill job is queued, kept across promotion).
    /// Removing or replacing a journaled key must enqueue a tombstone,
    /// or recovery would resurrect it. Always `false` on
    /// non-persistent stores.
    journaled: bool,
}

/// Entry probe-byte encoding of the put path's `Option<bool>` verdict.
fn probe_code(hint: Option<bool>) -> u8 {
    match hint {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    }
}

/// Decode [`probe_code`] back into the codec layer's hint form.
fn probe_hint(code: u8) -> Option<bool> {
    match code {
        1 => Some(true),
        2 => Some(false),
        _ => None,
    }
}

/// Multiplicative hasher for the per-shard entry maps: the keys are
/// already well-mixed page numbers, so SipHash's DoS resistance only
/// costs cycles here.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, k: u64) {
        // splitmix64 finalizer — full avalanche in three multiplies.
        let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type EntryMap = HashMap<u64, Entry, BuildHasherDefault<KeyHasher>>;

/// Max pooled buffers per shard; beyond this, freed buffers are dropped.
const POOL_CAP: usize = 64;

struct Shard {
    entries: EntryMap,
    /// Coldest-first spill ordering over the keys with `Memory` residence.
    lru: LruList<u64>,
    /// Coldest-first demotion ordering over the keys with `Hot`
    /// residence. Kept separate from `lru` so pressure eviction can
    /// prefer warm victims (already compressed — spilling them is
    /// cheap) and only then start compressing hot ones.
    lru_hot: LruList<u64>,
    /// Recycled entry buffers: steady-state puts allocate nothing.
    pool: Vec<Vec<u8>>,
    /// Clone of the cleaner channel (kept per shard so no shared `Sender`
    /// needs to be `Sync`); `None` once shut down or without a spill file.
    tx: Option<Sender<SpillJob>>,
}

impl Shard {
    fn acquire_buf(&mut self, contents: &[u8]) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(contents);
        buf
    }

    fn release_buf(&mut self, buf: Vec<u8>) {
        if self.pool.len() < POOL_CAP {
            self.pool.push(buf);
        }
    }
}

/// Pad shards to their own cache lines so hot per-shard state on
/// neighbouring shards does not false-share.
#[repr(align(128))]
struct Padded<T>(T);

/// An entry handed to the writer thread. The file offset is chosen by the
/// writer at batch-commit time, not by the producer — that is what lets
/// the writer pack many entries into one contiguous write and lets GC
/// reset the allocation cursor.
struct SpillJob {
    key: u64,
    gen: u64,
    /// Codec id byte, sealed into the extent header alongside the data.
    codec: u8,
    /// Uncompressed page length, journaled so recovery can restore the
    /// entry (and re-learn the store's page size) without decoding.
    orig_len: u32,
    data: Arc<Vec<u8>>,
    /// Trace context of the sampled put that queued this job
    /// ([`TraceCtx::NONE`] for background eviction / unsampled puts):
    /// the writer records a `spill_write` span under it.
    ctx: TraceCtx,
    /// When the job was queued — the writer splits queue-wait from
    /// service time in the span. Set iff `ctx` is sampled.
    queued: Option<Instant>,
}

/// Span bookkeeping for one traced store operation: its span id and
/// start instant (see [`StoreCore::op_trace`]).
struct OpTrace {
    span: u32,
    t0: Instant,
}

/// What a store operation reports back for its span: the tier it
/// resolved to and the codec involved.
#[derive(Default)]
struct TraceOut {
    tier: u8,
    codec: u8,
}

/// Completion offset reported when the batch write itself failed.
const SPILL_FAILED: u64 = u64::MAX;

/// Magic leading every on-file extent header. The low nibble is the
/// format version: `..E001` was the PR 5 codec-less layout (20-byte
/// header, CRC over the payload only); `..E002` added the codec id byte
/// and widened the CRC to cover the header fields too. Old-format
/// extents fail the magic check and surface as [`StoreError::Corrupt`]
/// instead of being decoded with a guessed codec.
const EXTENT_MAGIC: u32 = 0xCC5E_E002;

/// Bytes of self-verifying header preceding every spilled payload:
/// `magic: u32 | payload_len: u32 | gen: u64 | codec: u8 | pad: [u8; 3] |
/// crc: u32`, all little-endian. The CRC covers the first
/// [`EXTENT_CRC_OFFSET`] header bytes *and* the payload, so a flipped
/// codec id is a verification failure — decoding with the wrong codec is
/// impossible by construction, not merely unlikely.
pub(crate) const EXTENT_HEADER: usize = 24;

/// Offset of the CRC field inside the header; everything before it is
/// covered by the CRC.
const EXTENT_CRC_OFFSET: usize = 20;

/// Append `payload`'s extent (header + payload) to `buf`. The CRC is
/// computed here, at batch-commit time — the last moment the writer
/// still holds the payload bytes it is about to trust to the medium.
pub(crate) fn encode_extent(buf: &mut Vec<u8>, gen: u64, codec: u8, payload: &[u8]) {
    let start = buf.len();
    buf.extend_from_slice(&EXTENT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&gen.to_le_bytes());
    buf.push(codec);
    buf.extend_from_slice(&[0u8; 3]);
    let mut h = Crc32::new();
    h.update(&buf[start..start + EXTENT_CRC_OFFSET]);
    h.update(payload);
    buf.extend_from_slice(&h.finish().to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Check `ext` (a full extent as read back) against the generation and
/// codec id the entry map says live there. Any mismatch — magic/version,
/// length, generation, codec, or CRC over header + payload — means the
/// bytes must not be decompressed. The codec is checked twice over: the
/// header byte must equal the entry's recorded id, *and* the CRC covers
/// that byte, so neither a flipped header nor a stale entry can route
/// the payload to the wrong decoder.
pub(crate) fn verify_extent(ext: &[u8], gen: u64, codec: u8) -> bool {
    if ext.len() < EXTENT_HEADER {
        return false;
    }
    let magic = u32::from_le_bytes(ext[0..4].try_into().expect("4-byte slice"));
    let plen = u32::from_le_bytes(ext[4..8].try_into().expect("4-byte slice")) as usize;
    let hgen = u64::from_le_bytes(ext[8..16].try_into().expect("8-byte slice"));
    let hcodec = ext[16];
    let crc = u32::from_le_bytes(
        ext[EXTENT_CRC_OFFSET..EXTENT_HEADER]
            .try_into()
            .expect("4-byte slice"),
    );
    let mut h = Crc32::new();
    h.update(&ext[..EXTENT_CRC_OFFSET]);
    h.update(&ext[EXTENT_HEADER..]);
    magic == EXTENT_MAGIC
        && hgen == gen
        && hcodec == codec
        && plen == ext.len() - EXTENT_HEADER
        && crc == h.finish()
}

/// Backoff before retry `attempt` (1-based): `base << (attempt - 1)`,
/// capped to keep a misconfigured attempt count from sleeping forever.
fn backoff(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << (attempt - 1).min(10))
}

/// A durable (or failed) write the store must fold into its entry maps.
struct Completion {
    key: u64,
    gen: u64,
    /// File offset, or [`SPILL_FAILED`].
    offset: u64,
    len: u32,
}

/// Scratch space reused across calls on each thread: the codec set
/// (LZRW1's hash table lives here) plus compression, staging, and
/// decompression buffers. `comp` is sized by
/// [`CodecSet::max_compressed_len`] for the active policy on every
/// compress — each codec's own worst case, not LZRW1's.
struct Scratch {
    codecs: CodecSet,
    comp: Vec<u8>,
    stage: Vec<u8>,
    decomp: Vec<u8>,
    /// Demotion's compression output. Separate from `comp` because hot
    /// demotion can run *inside* a put's eviction loop on the same
    /// thread, while the put's own sealed bytes are still parked in
    /// `comp` waiting for budget.
    demote: Vec<u8>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch {
        codecs: CodecSet::new(),
        comp: Vec::new(),
        stage: Vec::new(),
        decomp: Vec::new(),
        demote: Vec::new(),
    });
}

/// Everything shared between the public handle and the writer thread:
/// the shards, the budget gauge, and the spill-file bookkeeping.
struct StoreCore {
    cfg: StoreConfig,
    shards: Vec<Padded<Mutex<Shard>>>,
    shard_mask: u64,
    /// Bytes with `Hot` or `Memory` residence across all shards. Budget
    /// is enforced by CAS reservation on this counter, so it never
    /// exceeds `cfg.memory_budget` (outside the spill-failure recovery
    /// path).
    resident: AtomicUsize,
    /// Uncompressed bytes with `Hot` residence (gauge; a subset of
    /// `resident`, which stays the reservation authority).
    hot_resident: AtomicUsize,
    /// Sealed bytes with `Memory` residence (gauge; the other subset).
    warm_resident: AtomicUsize,
    /// Global operation clock: every put and get bumps it, and entries
    /// stamp `last_touch` with the value — the tier policies'
    /// generation-counter aging. Each op's value is unique, which is
    /// what lets promotion revalidate "the entry I served is still the
    /// entry I'm swapping" by comparing stamps.
    touch_clock: AtomicU64,
    /// Demoter shutdown flag, under the condvar's mutex.
    demote_stop: Mutex<bool>,
    /// Wakes the demoter early (budget-pressure evictions) or for
    /// shutdown; it otherwise sleeps `cfg.demote_interval` per pass.
    demote_cv: Condvar,
    /// Fixed at first put; 0 = not yet fixed.
    page_size: AtomicUsize,
    /// Generation stamp for spill jobs.
    next_gen: AtomicU64,
    /// The spill medium, shared by the writer thread and all readers
    /// (positioned I/O — no seek cursor to contend on).
    medium: Option<Arc<dyn SpillMedium>>,
    /// Set when spill is disabled after consecutive hard medium
    /// failures (or a writer death). Eviction sheds instead of
    /// spilling until the probation probe clears it.
    degraded: AtomicBool,
    /// Set when the writer thread has exited — normally (shutdown /
    /// drop) or by panic. With this set, `Spilling` entries that have
    /// no completion yet will never get one.
    writer_dead: AtomicBool,
    /// Completed writes, published by the writer after each batch.
    done: Mutex<Vec<Completion>>,
    /// Counters, latency histograms, and the event ring. Counters are
    /// striped by shard index and are the statistics of record behind
    /// [`StoreStats`]; sampling obeys [`StoreConfig::telemetry`].
    tel: Telemetry,
    /// Current spill-file length (the writer's allocation cursor).
    spill_file_bytes: AtomicU64,
    /// Bytes on the spill file belonging to removed/replaced entries.
    /// Approximate under concurrent churn (it can momentarily lag removes
    /// racing a compaction) but self-correcting: GC subtracts exactly
    /// what it physically reclaimed.
    spill_dead_bytes: AtomicU64,
    /// Persistence state (`Some` iff [`StoreConfig::persistent`]): the
    /// location-map journal and its append position. The superblock
    /// lives at the head of the spill medium itself.
    persist: Option<Persist>,
}

/// The thread-safe compressed page store. Cloneable handles are not
/// provided; share it behind an `Arc`.
pub struct CompressedStore {
    core: Arc<StoreCore>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    demoter: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The location-map journal lives beside the spill file: `<spill>.map`.
fn journal_path(path: &std::path::Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".map");
    PathBuf::from(os)
}

/// Everything a persistent open hands to [`CompressedStore::build`]: the
/// journal medium, the resume position, and (for an existing file) the
/// recovered entry set with how long recovery took.
struct PersistSetup {
    journal: Arc<dyn SpillMedium>,
    state: PersistState,
    recovery: Option<(persist::Recovery, Duration)>,
}

impl CompressedStore {
    /// Open a store.
    ///
    /// With [`StoreConfig::persistent`], the spill file gains a
    /// superblock and a `<spill_path>.map` location journal; both are
    /// created fresh (truncating any previous state — use
    /// [`CompressedStore::open_existing`] to warm-restart instead).
    ///
    /// # Panics
    ///
    /// Panics if the spill file (or, when persistent, the journal file
    /// or initial superblock) cannot be created.
    pub fn new(cfg: StoreConfig) -> Self {
        let medium = cfg.spill_path.as_ref().map(|path| {
            Arc::new(FileMedium::create(path).expect("create spill file")) as Arc<dyn SpillMedium>
        });
        if cfg.persistent {
            let path = cfg
                .spill_path
                .clone()
                .expect("persistent store needs a spill path");
            let journal =
                Arc::new(FileMedium::create(journal_path(&path)).expect("create spill journal"))
                    as Arc<dyn SpillMedium>;
            let medium = medium.expect("persistent store needs a spill medium");
            let state = Self::init_persistent(&*medium).expect("write initial superblock");
            return Self::build(
                cfg,
                Some(medium),
                Some(PersistSetup {
                    journal,
                    state,
                    recovery: None,
                }),
            );
        }
        Self::build(cfg, medium, None)
    }

    /// Open a store over an explicit [`SpillMedium`] — a fault injector,
    /// an in-memory medium, anything. `cfg.spill_path` is ignored (the
    /// medium *is* the spill backing); everything else applies as usual.
    /// Non-persistent; see [`CompressedStore::with_persistent_media`].
    pub fn with_medium(cfg: StoreConfig, medium: Arc<dyn SpillMedium>) -> Self {
        Self::build(cfg, Some(medium), None)
    }

    /// Reopen a persistent store from its existing spill file and
    /// journal, recovering every durably-committed cold extent: replay
    /// the location journal, arbitrate generations, re-verify extents
    /// (skipped entirely after a clean shutdown), and serve GETs for
    /// the survivors immediately — no re-PUT. `cfg.persistent` is
    /// implied. Fails with [`StoreError::Corrupt`] if no superblock
    /// slot decodes or the file was written under a different
    /// codec/format fingerprint.
    pub fn open_existing(mut cfg: StoreConfig) -> Result<Self, StoreError> {
        cfg.persistent = true;
        let path = cfg
            .spill_path
            .clone()
            .expect("persistent store needs a spill path");
        let medium = Arc::new(FileMedium::open(&path)?) as Arc<dyn SpillMedium>;
        let journal = Arc::new(FileMedium::open(journal_path(&path))?) as Arc<dyn SpillMedium>;
        Self::open_with(cfg, medium, journal)
    }

    /// Open a *fresh* persistent store over explicit media (the spill
    /// data medium and the location-journal medium) — fault injectors,
    /// in-memory media, anything. `cfg.spill_path` is ignored.
    pub fn with_persistent_media(
        mut cfg: StoreConfig,
        data: Arc<dyn SpillMedium>,
        journal: Arc<dyn SpillMedium>,
    ) -> Result<Self, StoreError> {
        cfg.persistent = true;
        let state = Self::init_persistent(&*data)?;
        Ok(Self::build(
            cfg,
            Some(data),
            Some(PersistSetup {
                journal,
                state,
                recovery: None,
            }),
        ))
    }

    /// [`CompressedStore::open_existing`] over explicit media: recover
    /// whatever the media already hold. This is the crash-recovery
    /// test entry point — cut the media mid-run, then reopen them here.
    pub fn open_existing_with_media(
        mut cfg: StoreConfig,
        data: Arc<dyn SpillMedium>,
        journal: Arc<dyn SpillMedium>,
    ) -> Result<Self, StoreError> {
        cfg.persistent = true;
        Self::open_with(cfg, data, journal)
    }

    /// Write the initial superblock of a fresh persistent store.
    fn init_persistent(data: &dyn SpillMedium) -> Result<PersistState, StoreError> {
        let sb = Superblock {
            seq: 1,
            page_size: 0,
            codec_fpr: persist::codec_fingerprint(),
            clean: false,
            epoch: 0,
            journal_start: 0,
            data_cursor: SUPERBLOCK_RESERVED,
            journal_tail: 0,
        };
        persist::write_superblock(data, &sb)?;
        Ok(PersistState {
            tail: 0,
            epoch: 0,
            start: 0,
            sb_seq: 1,
            pending: Vec::new(),
        })
    }

    fn open_with(
        cfg: StoreConfig,
        data: Arc<dyn SpillMedium>,
        journal: Arc<dyn SpillMedium>,
    ) -> Result<Self, StoreError> {
        let t0 = Instant::now();
        let rec = persist::recover(&*data, &*journal).map_err(|e| match e {
            RecoverError::Io(e) => StoreError::Io(e),
            other => {
                // Not an I/O problem: the file itself is unusable
                // (missing/destroyed superblock or format mismatch).
                // Surface it as corruption rather than guessing.
                let _ = other;
                StoreError::Corrupt
            }
        })?;
        // Mark the file dirty *before* serving: if we crash from here
        // on, the next open must not trust the old clean seal.
        let sb_seq = rec.sb_seq + 1;
        persist::write_superblock(
            &*data,
            &Superblock {
                seq: sb_seq,
                page_size: rec.page_size,
                codec_fpr: persist::codec_fingerprint(),
                clean: false,
                epoch: rec.epoch,
                journal_start: rec.journal_start,
                data_cursor: rec.data_cursor,
                journal_tail: rec.journal_tail,
            },
        )?;
        let state = PersistState {
            tail: rec.journal_tail,
            epoch: rec.epoch,
            start: rec.journal_start,
            sb_seq,
            pending: Vec::new(),
        };
        Ok(Self::build(
            cfg,
            Some(data),
            Some(PersistSetup {
                journal,
                state,
                recovery: Some((rec, t0.elapsed())),
            }),
        ))
    }

    fn build(
        cfg: StoreConfig,
        medium: Option<Arc<dyn SpillMedium>>,
        psetup: Option<PersistSetup>,
    ) -> Self {
        let (tx, rx) = match &medium {
            Some(_) => {
                let (tx, rx): (Sender<SpillJob>, Receiver<SpillJob>) = channel();
                (Some(tx), Some(rx))
            }
            None => (None, None),
        };
        let nshards = cfg.resolved_shards();
        let shards = (0..nshards)
            .map(|_| {
                Padded(Mutex::new(Shard {
                    entries: EntryMap::default(),
                    lru: LruList::new(),
                    lru_hot: LruList::new(),
                    pool: Vec::new(),
                    tx: tx.clone(),
                }))
            })
            .collect();
        drop(tx);
        let tel = Telemetry::with_options(
            STORE_TELEMETRY,
            nshards,
            cc_telemetry::DEFAULT_RING_CAPACITY,
            cfg.telemetry,
        );
        let (persist_handle, recovery) = match psetup {
            Some(p) => (Some(Persist::new(p.journal, p.state)), p.recovery),
            None => (None, None),
        };
        // Extent space starts past the superblock region on persistent
        // media; the legacy scratch layout keeps its base of 0.
        let init_cursor = match (&recovery, &persist_handle) {
            (Some((rec, _)), _) => rec.data_cursor,
            (None, Some(_)) => SUPERBLOCK_RESERVED,
            (None, None) => 0,
        };
        let core = Arc::new(StoreCore {
            cfg,
            shards,
            shard_mask: nshards as u64 - 1,
            resident: AtomicUsize::new(0),
            hot_resident: AtomicUsize::new(0),
            warm_resident: AtomicUsize::new(0),
            touch_clock: AtomicU64::new(0),
            demote_stop: Mutex::new(false),
            demote_cv: Condvar::new(),
            page_size: AtomicUsize::new(0),
            next_gen: AtomicU64::new(0),
            medium,
            degraded: AtomicBool::new(false),
            writer_dead: AtomicBool::new(false),
            done: Mutex::new(Vec::new()),
            tel,
            spill_file_bytes: AtomicU64::new(init_cursor),
            spill_dead_bytes: AtomicU64::new(0),
            persist: persist_handle,
        });
        if let Some((rec, took)) = recovery {
            let mut live_bytes = 0u64;
            for e in &rec.entries {
                let idx = core.shard_index(e.key);
                let mut shard = core.shards[idx].0.lock().expect("shard poisoned");
                shard.entries.insert(
                    e.key,
                    Entry {
                        residence: Residence::Spilled {
                            offset: e.offset,
                            len: e.len,
                            gen: e.gen,
                        },
                        orig_len: e.orig_len,
                        codec: e.codec,
                        probe: 0,
                        gets: 0,
                        last_touch: 0,
                        journaled: true,
                    },
                );
                live_bytes += e.len as u64;
            }
            // Resume generations above everything the journal has seen
            // (ABA safety across the restart) and restore the gauges.
            core.next_gen.store(rec.max_lsn + 1, Ordering::Relaxed);
            if rec.page_size != 0 {
                core.page_size
                    .store(rec.page_size as usize, Ordering::Relaxed);
            }
            core.spill_dead_bytes.store(
                rec.data_cursor
                    .saturating_sub(SUPERBLOCK_RESERVED)
                    .saturating_sub(live_bytes),
                Ordering::Relaxed,
            );
            let c = &rec.counts;
            core.tel
                .count(0, tstat::EXTENTS_RECOVERED, c.extents_recovered);
            core.tel.count(
                0,
                tstat::JOURNAL_RECORDS_REPLAYED,
                c.journal_records_replayed,
            );
            core.tel
                .count(0, tstat::TORN_TAIL_DISCARDED, c.torn_tail_discarded);
            core.tel.count(
                0,
                tstat::STALE_GENERATION_DROPPED,
                c.stale_generation_dropped,
            );
            core.tel
                .count(0, tstat::RECOVERY_EXTENTS_VERIFIED, c.extents_verified);
            if rec.clean {
                core.tel.count(0, tstat::CLEAN_RECOVERIES, 1);
            }
            let ns = took.as_nanos() as u64;
            core.tel.record(top::RECOVERY, ns);
            let _ = core.tel.event(tevent::RECOVERY, c.extents_recovered, ns);
        }
        let writer = match (&core.medium, rx) {
            (Some(medium), Some(rx)) => {
                let writer_core = Arc::clone(&core);
                let medium = Arc::clone(medium);
                let exit_core = Arc::clone(&core);
                Some(
                    std::thread::Builder::new()
                        .name("cc-store-cleaner".into())
                        .spawn(move || {
                            // A panic anywhere in the writer (including
                            // inside a hostile medium) must not strand
                            // `flush()` callers: mark the thread dead so
                            // flush can reclaim orphaned jobs, and
                            // degrade the store so eviction sheds
                            // instead of queueing into the void.
                            let body = std::panic::AssertUnwindSafe(move || {
                                SpillWriter {
                                    core: writer_core,
                                    medium,
                                    cursor: init_cursor,
                                    consecutive_failures: 0,
                                    probes: 0,
                                }
                                .run(rx)
                            });
                            let result = std::panic::catch_unwind(body);
                            exit_core.writer_dead.store(true, Ordering::Relaxed);
                            if result.is_err() {
                                exit_core.enter_degraded(0);
                            }
                        })
                        .expect("spawn cleaner thread"),
                )
            }
            _ => None,
        };
        // The demoter only exists for policies that age pages at all;
        // CompressAll / PaperThreshold stores carry zero extra threads.
        let demoter = core.cfg.tier_policy.wants_demoter().then(|| {
            let demote_core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("cc-store-demoter".into())
                .spawn(move || demote_core.demoter_loop())
                .expect("spawn demoter thread")
        });
        CompressedStore {
            core,
            writer: Mutex::new(writer),
            demoter: Mutex::new(demoter),
        }
    }

    /// Number of lock stripes in use.
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// The page size this store serves, fixed by the first successful
    /// put; `None` while the store has never stored anything. Callers
    /// that must size an output buffer before a [`CompressedStore::get`]
    /// (e.g. a network service) read it from here.
    pub fn page_size(&self) -> Option<usize> {
        match self.core.page_size.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Store (or replace) `key`'s page.
    pub fn put(&self, key: u64, page: &[u8]) -> Result<(), StoreError> {
        self.core.put(key, page, TraceCtx::NONE)
    }

    /// Like [`CompressedStore::put`], recording causal spans under `ctx`
    /// when the request is sampled (and a tracer is configured).
    pub fn put_traced(&self, key: u64, page: &[u8], ctx: TraceCtx) -> Result<(), StoreError> {
        self.core.put(key, page, ctx)
    }

    /// Fetch `key`'s page into `out` (must be page-sized). Returns false
    /// if the key is unknown.
    pub fn get(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        Ok(self.core.get(key, out, TraceCtx::NONE)?.is_some())
    }

    /// Like [`CompressedStore::get`], recording causal spans under `ctx`
    /// when the request is sampled (and a tracer is configured).
    pub fn get_traced(&self, key: u64, out: &mut [u8], ctx: TraceCtx) -> Result<bool, StoreError> {
        Ok(self.core.get(key, out, ctx)?.is_some())
    }

    /// Like [`CompressedStore::get`], but reports which tier served the
    /// hit — the uncompressed hot tier, compressed memory, the
    /// same-filled fast path, or the spill file.
    pub fn get_tier(&self, key: u64, out: &mut [u8]) -> Result<Option<HitTier>, StoreError> {
        self.core.get(key, out, TraceCtx::NONE)
    }

    /// Which tier `key` currently resides in, without reading the page
    /// or touching any recency state. `None` if the key is unknown.
    /// Recovery tests use this to prove a warm restart serves from the
    /// spill tier (no re-PUT happened); `Spilling` reports as
    /// [`HitTier::Memory`] since that is where a read would be served.
    pub fn peek_tier(&self, key: u64) -> Option<HitTier> {
        self.core.absorb_completed_spills();
        let shard = self.core.shard(key);
        shard.entries.get(&key).map(|e| match e.residence {
            Residence::Hot { .. } => HitTier::Hot,
            Residence::Memory { .. } | Residence::Spilling { .. } => HitTier::Memory,
            Residence::SameFilled { .. } => HitTier::SameFilled,
            Residence::Spilled { .. } => HitTier::Spill,
        })
    }

    /// The configured request tracer, if any (see
    /// [`StoreConfig::with_tracer`]). The server's service shares this
    /// instance so wire spans and store spans join into one trace.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.core.cfg.tracer.as_ref()
    }

    /// Remove a key (e.g. the page was freed). Returns whether it existed.
    pub fn remove(&self, key: u64) -> bool {
        self.core.absorb_completed_spills();
        let mut shard = self.core.shard(key);
        self.core.remove_locked(&mut shard, key)
    }

    /// Whether the store currently knows `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.core.absorb_completed_spills();
        self.core.shard(key).entries.contains_key(&key)
    }

    /// Number of stored pages (memory + spill).
    pub fn len(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.0.lock().expect("shard poisoned").entries.len())
            .sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters, aggregated across shards.
    pub fn stats(&self) -> StoreStats {
        self.core.stats()
    }

    /// Whether the store is currently in degraded mode: spill disabled
    /// after consecutive hard medium failures (or a writer death),
    /// eviction shedding the coldest entries instead. Clears itself
    /// when the probation probe finds the medium healthy again.
    pub fn is_degraded(&self) -> bool {
        self.core.degraded.load(Ordering::Relaxed)
    }

    /// The store's telemetry instance: striped counters, per-operation
    /// latency histograms (`put`, `get_memory`, `get_same_filled`,
    /// `get_spill`, `spill_write`, `spill_read`, `gc_pause`), and the
    /// structured event ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.core.tel
    }

    /// A full telemetry snapshot — counter sums, latency summaries,
    /// event counts, the ring window since the last snapshot — with the
    /// store's byte gauges attached. Feed it to
    /// [`cc_telemetry::Snapshot::to_json`], `to_prometheus`, or
    /// `render_text`, or hand a closure over it to
    /// [`cc_telemetry::Exporter::spawn`].
    pub fn telemetry_snapshot(&self) -> cc_telemetry::Snapshot {
        self.core.absorb_completed_spills();
        self.core
            .tel
            .snapshot()
            .gauge(
                "resident_bytes",
                self.core.resident.load(Ordering::Relaxed) as u64,
            )
            .gauge(
                "hot_resident_bytes",
                self.core.hot_resident.load(Ordering::Relaxed) as u64,
            )
            .gauge(
                "warm_resident_bytes",
                self.core.warm_resident.load(Ordering::Relaxed) as u64,
            )
            .gauge(
                "bytes_on_spill",
                self.core.spill_file_bytes.load(Ordering::Relaxed),
            )
            .gauge(
                "spill_dead_bytes",
                self.core.spill_dead_bytes.load(Ordering::Relaxed),
            )
            .gauge(
                "degraded",
                self.core.degraded.load(Ordering::Relaxed) as u64,
            )
    }

    /// Block until the cleaner has drained all pending spills (tests and
    /// orderly shutdown). Entries sitting in a partially-filled batch are
    /// committed by the writer's bounded linger, so this terminates even
    /// mid-batch. If the writer thread has died (panicked medium), the
    /// orphaned in-flight entries are reverted to memory residence, the
    /// budget is restored by shedding, and [`StoreError::ShuttingDown`]
    /// is returned — a flush never hangs on a dead writer.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.core.flush()
    }

    /// Drain pending spills, stop the cleaner thread, and join it. The
    /// store remains readable; further puts that need to spill fail
    /// with [`StoreError::ShuttingDown`].
    pub fn shutdown(&self) {
        let _ = self.core.flush();
        self.stop_demoter();
        for s in &self.core.shards {
            s.0.lock().expect("shard poisoned").tx = None;
        }
        if let Some(handle) = self.writer.lock().expect("writer handle poisoned").take() {
            let _ = handle.join();
        }
    }

    /// Signal the demoter thread to exit and join it (idempotent). Runs
    /// before the spill writer teardown so a mid-sweep demotion never
    /// races the channel closing.
    fn stop_demoter(&self) {
        *self.core.demote_stop.lock().expect("demoter flag poisoned") = true;
        self.core.demote_cv.notify_all();
        if let Some(handle) = self.demoter.lock().expect("demoter handle poisoned").take() {
            let _ = handle.join();
        }
    }

    /// Run one demotion sweep inline on the calling thread, exactly as
    /// the background demoter would (same policy age and pressure
    /// gates). Returns `(hot pages demoted, warm pages spilled)`.
    /// Deterministic tests and benches use this instead of sleeping for
    /// the thread.
    pub fn demote_now(&self) -> (u64, u64) {
        self.core.demote_pass()
    }
}

impl Drop for CompressedStore {
    fn drop(&mut self) {
        self.stop_demoter();
        // Closing every Sender clone stops the writer.
        for s in &self.core.shards {
            s.0.lock().expect("shard poisoned").tx = None;
        }
        if let Some(handle) = self.writer.lock().expect("writer handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl StoreCore {
    #[inline]
    fn shard_index(&self, key: u64) -> usize {
        // splitmix64 finalizer: decorrelates the shard choice from any
        // key-assignment pattern (sequential keys, strided keys, ...).
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & self.shard_mask) as usize
    }

    #[inline]
    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        self.shards[self.shard_index(key)]
            .0
            .lock()
            .expect("shard poisoned")
    }

    fn has_spill(&self) -> bool {
        self.medium.is_some()
    }

    /// Flip into degraded mode (idempotent); `failures` is the
    /// consecutive hard-failure count at the transition, for the event.
    fn enter_degraded(&self, failures: u64) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.tel.count(0, tstat::DEGRADED_ENTERED, 1);
            self.tel.event(tevent::DEGRADE, failures, 0);
            if let Some(tr) = self.cfg.tracer.as_deref() {
                tr.anomaly(AnomalyKind::Degraded, 0, failures, 0);
            }
        }
    }

    /// Leave degraded mode (idempotent); `probes` is how many canary
    /// probes it took, for the event.
    fn exit_degraded(&self, probes: u64) {
        if self.degraded.swap(false, Ordering::Relaxed) {
            self.tel.count(0, tstat::DEGRADED_RECOVERED, 1);
            self.tel.event(tevent::RECOVER, probes, 0);
        }
    }

    /// Start a latency sample iff sampling is enabled — the hot paths
    /// never call the clock when telemetry is off.
    #[inline]
    fn sample_start(&self) -> Option<Instant> {
        if self.tel.timing_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a latency sample started by [`StoreCore::sample_start`].
    #[inline]
    fn sample_end(&self, op: usize, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.tel.record(op, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Like [`StoreCore::sample_end`], tagging the sample with the
    /// request's trace id so the histogram keeps tail exemplars.
    #[inline]
    fn sample_end_traced(&self, op: usize, t0: Option<Instant>, ctx: TraceCtx) {
        if let Some(t0) = t0 {
            self.tel
                .record_traced(op, t0.elapsed().as_nanos() as u64, ctx.trace_id);
        }
    }

    /// Start tracing one store operation under a sampled request:
    /// allocates the operation's span id and stamps its start. `None`
    /// when the request is unsampled or no tracer is configured —
    /// callers skip all span work in that case.
    #[inline]
    fn op_trace(&self, ctx: TraceCtx) -> Option<OpTrace> {
        if !ctx.sampled() {
            return None;
        }
        let tr = self.cfg.tracer.as_deref()?;
        Some(OpTrace {
            span: tr.alloc_span(),
            t0: Instant::now(),
        })
    }

    /// Record the span opened by [`StoreCore::op_trace`].
    fn finish_op(&self, ot: OpTrace, ctx: TraceCtx, op: u8, tout: &TraceOut, status: u8, key: u64) {
        let Some(tr) = self.cfg.tracer.as_deref() else {
            return;
        };
        tr.record(
            self.shard_index(key),
            &Span {
                trace_id: ctx.trace_id,
                span_id: ot.span,
                parent: ctx.parent_span,
                op,
                tier: tout.tier,
                codec: tout.codec,
                status,
                start_ns: tr.now_ns(ot.t0),
                queue_ns: 0,
                service_ns: ot.t0.elapsed().as_nanos() as u64,
                arg: key,
            },
        );
    }

    /// Record a leaf child span under `ctx` spanning `t0 → now` (no-op
    /// when unsampled, untimed, or untraced).
    #[allow(clippy::too_many_arguments)]
    fn child_span(
        &self,
        ctx: TraceCtx,
        t0: Option<Instant>,
        op: u8,
        tier: u8,
        codec: u8,
        status: u8,
        arg: u64,
        stripe: usize,
    ) {
        let (Some(t0), true) = (t0, ctx.sampled()) else {
            return;
        };
        let Some(tr) = self.cfg.tracer.as_deref() else {
            return;
        };
        tr.record(
            stripe,
            &Span {
                trace_id: ctx.trace_id,
                span_id: tr.alloc_span(),
                parent: ctx.parent_span,
                op,
                tier,
                codec,
                status,
                start_ns: tr.now_ns(t0),
                queue_ns: 0,
                service_ns: t0.elapsed().as_nanos() as u64,
                arg,
            },
        );
    }

    /// Store or replace `key`'s page, recording a `store_put` span (and
    /// children) when `ctx` is sampled.
    fn put(&self, key: u64, page: &[u8], ctx: TraceCtx) -> Result<(), StoreError> {
        match self.op_trace(ctx) {
            None => self.put_inner(key, page, TraceCtx::NONE, &mut TraceOut::default()),
            Some(ot) => {
                let mut tout = TraceOut::default();
                let res = self.put_inner(key, page, ctx.child(ot.span), &mut tout);
                self.finish_op(ot, ctx, sop::STORE_PUT, &tout, res.is_err() as u8, key);
                res
            }
        }
    }

    fn put_inner(
        &self,
        key: u64,
        page: &[u8],
        ctx: TraceCtx,
        tout: &mut TraceOut,
    ) -> Result<(), StoreError> {
        let t0 = self.sample_start();
        let now = self.touch_clock.fetch_add(1, Ordering::Relaxed) as u32;
        // Fix the page size (or reject a mismatch) before compressing.
        match self
            .page_size
            .compare_exchange(0, page.len(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {}
            Err(ps) if ps == page.len() => {}
            Err(ps) => {
                return Err(StoreError::BadPageSize {
                    expected: ps,
                    got: page.len(),
                })
            }
        }

        // Same-filled fast path: a repeated-word page never touches the
        // compressor, the budget, or the buffer pool — the pattern *is*
        // the stored form.
        if let Some(pattern) = same_filled_pattern(page) {
            tout.tier = strier::SAME_FILLED;
            tout.codec = CodecId::SameFilled.as_u8();
            let shard_idx = self.shard_index(key);
            let mut shard = self.shards[shard_idx].0.lock().expect("shard poisoned");
            self.remove_locked(&mut shard, key);
            shard.entries.insert(
                key,
                Entry {
                    residence: Residence::SameFilled { pattern },
                    orig_len: page.len() as u32,
                    codec: CodecId::SameFilled.as_u8(),
                    probe: 0,
                    gets: 0,
                    last_touch: now,
                    journaled: false,
                },
            );
            drop(shard);
            self.tel.count(shard_idx, tstat::SAME_FILLED, 1);
            if self.tel.timing_enabled() {
                self.tel.event(tevent::SAME_FILLED, key, pattern);
            }
            self.sample_end_traced(top::PUT, t0, ctx);
            return Ok(());
        }

        // Probe compressibility once, here, for both the tier decision
        // and codec selection — the entry records the verdict so a later
        // demotion of this page never probes again.
        let hint = (self.cfg.codec_policy == CodecPolicy::Adaptive)
            .then(|| probe_bdi(page, self.cfg.threshold.max_compressed_len(page.len())));

        // Keep-hot fast path: a re-put of a still-fresh hot page can
        // stay hot, replacing the raw bytes in place and skipping the
        // compressor entirely — the demoter will seal it if it ever
        // goes cold. Gated on the policy's capability flag so flat
        // policies pay no extra lock acquisition.
        if self.cfg.tier_policy.may_keep_hot() {
            let shard_idx = self.shard_index(key);
            let mut shard = self.shards[shard_idx].0.lock().expect("shard poisoned");
            if let Some(e) = shard.entries.get_mut(&key) {
                if let Residence::Hot { data, handle } = &mut e.residence {
                    if data.len() == page.len() {
                        let q = PlacementQuery {
                            key,
                            page_len: page.len(),
                            sealed_len: page.len(),
                            admitted: false,
                            age: now.wrapping_sub(e.last_touch) as u64,
                            gets: e.gets as u32,
                            was_hot: true,
                            pressure_pct: self.pressure_pct(),
                        };
                        if self.cfg.tier_policy.keep_hot(&q) {
                            data.copy_from_slice(page);
                            let handle = *handle;
                            e.probe = probe_code(hint);
                            e.gets = 0;
                            e.last_touch = now;
                            shard.lru_hot.touch(handle);
                            drop(shard);
                            tout.tier = strier::HOT;
                            tout.codec = CodecId::Raw.as_u8();
                            self.tel.count(shard_idx, tstat::PUTS_HOT, 1);
                            self.sample_end_traced(top::PUT, t0, ctx);
                            return Ok(());
                        }
                    }
                }
            }
        }

        // Compress outside any lock, into this thread's reusable buffer.
        // The policy picks the codec (probe → BDI or LZRW1), the
        // threshold then admits or rewrites the buffer as a stored block;
        // either way the selection names exactly the codec that sealed
        // what sits in `comp`.
        let timing = self.tel.timing_enabled();
        let (sel, comp_ns) = SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let ct0 = (timing || ctx.sampled()).then(Instant::now);
            let sel = s.codecs.compress_with_hint(
                self.cfg.codec_policy,
                self.cfg.threshold,
                page,
                &mut s.comp,
                hint,
            );
            (sel, ct0.map(|t| t.elapsed().as_nanos() as u64))
        });
        let len = sel.len;
        tout.codec = sel.codec.as_u8();
        if let (Some(ns), true) = (comp_ns, ctx.sampled()) {
            if let Some(tr) = self.cfg.tracer.as_deref() {
                tr.record(
                    self.shard_index(key),
                    &Span {
                        trace_id: ctx.trace_id,
                        span_id: tr.alloc_span(),
                        parent: ctx.parent_span,
                        op: sop::COMPRESS,
                        tier: strier::NONE,
                        codec: sel.codec.as_u8(),
                        status: sel.fell_back as u8,
                        start_ns: tr.elapsed_ns().saturating_sub(ns),
                        queue_ns: 0,
                        service_ns: ns,
                        arg: key,
                    },
                );
            }
        }

        let shard_idx = self.shard_index(key);
        let mut shard = self.shard(key);
        // Capture the outgoing entry's recency metadata before replacing
        // it — the placement query describes the key's history, not just
        // this put.
        let (prev_age, prev_gets, was_hot) = match shard.entries.get(&key) {
            Some(e) => (
                now.wrapping_sub(e.last_touch) as u64,
                e.gets as u32,
                matches!(e.residence, Residence::Hot { .. }),
            ),
            None => (u64::MAX, 0, false),
        };
        self.remove_locked(&mut shard, key);
        if sel.fell_back {
            self.tel.count(shard_idx, tstat::CODEC_FALLBACKS, 1);
        }
        match sel.codec {
            CodecId::Lzrw1 => {
                self.tel.count(shard_idx, tstat::COMPRESSED, 1);
                self.tel.count(shard_idx, tstat::PUTS_LZRW1, 1);
                self.tel
                    .count(shard_idx, tstat::LZRW1_IN_BYTES, page.len() as u64);
                self.tel
                    .count(shard_idx, tstat::LZRW1_OUT_BYTES, len as u64);
                if let Some(ns) = comp_ns.filter(|_| timing) {
                    self.tel.record(top::COMPRESS_LZRW1, ns);
                }
            }
            CodecId::Bdi => {
                self.tel.count(shard_idx, tstat::COMPRESSED, 1);
                self.tel.count(shard_idx, tstat::PUTS_BDI, 1);
                self.tel
                    .count(shard_idx, tstat::BDI_IN_BYTES, page.len() as u64);
                self.tel.count(shard_idx, tstat::BDI_OUT_BYTES, len as u64);
                if let Some(ns) = comp_ns.filter(|_| timing) {
                    self.tel.record(top::COMPRESS_BDI, ns);
                }
            }
            _ => {
                debug_assert_eq!(sel.codec, CodecId::Raw, "unexpected put codec");
                self.tel.count(shard_idx, tstat::STORED_RAW, 1);
                if timing {
                    self.tel.event(tevent::THRESHOLD_REJECT, key, len as u64);
                }
            }
        }

        // Ask the tier policy where the sealed page should live. Hot
        // placement stores the raw page bytes, so it reserves the full
        // page size; the sealed bytes in `comp` are kept around either
        // way (they are what spills if reservation fails outright).
        let place_hot = matches!(
            self.cfg.tier_policy.admit(&PlacementQuery {
                key,
                page_len: page.len(),
                sealed_len: len,
                admitted: sel.admitted,
                age: prev_age,
                gets: prev_gets,
                was_hot,
                pressure_pct: self.pressure_pct(),
            }),
            TierDecision::Hot
        );
        let need = if place_hot { page.len() } else { len };

        // Reserve budget for the new entry before publishing it. The CAS
        // keeps `resident` at or below the budget at every instant.
        let mut reserved = true;
        'reserve: loop {
            let mut cur = self.resident.load(Ordering::Relaxed);
            while cur + need <= self.cfg.memory_budget {
                match self.resident.compare_exchange_weak(
                    cur,
                    cur + need,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break 'reserve,
                    Err(actual) => cur = actual,
                }
            }
            match self.make_room(shard_idx, &mut shard)? {
                Progress::Evicted => continue,
                Progress::NoVictim => {
                    // Nothing left to evict (everything is already
                    // spilling, or the page alone exceeds the budget):
                    // bypass residence and spill this entry directly.
                    reserved = false;
                    break;
                }
                Progress::Blocked => {
                    // Victims may exist on shards other putters hold.
                    // Release ours so the system can make progress, then
                    // retry from scratch.
                    drop(shard);
                    std::thread::yield_now();
                    shard = self.shard(key);
                }
            }
        }

        if !reserved {
            if shard.tx.is_none() {
                // Straight-to-spill needed but the writer is gone (the
                // store was shut down): fail the put instead of
                // panicking. The old entry was already removed above —
                // acceptable for a store that is being torn down.
                drop(shard);
                return Err(StoreError::ShuttingDown);
            }
            if self.degraded.load(Ordering::Relaxed) {
                // Spill is disabled and nothing was evictable: the
                // memory-only store is genuinely full.
                drop(shard);
                return Err(StoreError::OutOfMemory);
            }
        }
        tout.tier = match (reserved, place_hot) {
            (true, true) => strier::HOT,
            (true, false) => strier::MEMORY,
            (false, _) => strier::SPILL,
        };
        let residence = SCRATCH.with(|c| -> Result<Residence, StoreError> {
            let s = &mut *c.borrow_mut();
            let compressed = &s.comp[..len];
            if reserved && place_hot {
                // Hot tier: keep the raw page; the sealed bytes are
                // discarded (the demoter re-seals from the recorded
                // probe hint if this page ever ages out).
                let data = shard.acquire_buf(page);
                let handle = shard.lru_hot.push_mru(key);
                self.hot_resident.fetch_add(page.len(), Ordering::Relaxed);
                self.tel.count(shard_idx, tstat::PUTS_HOT, 1);
                Ok(Residence::Hot { data, handle })
            } else if reserved {
                self.warm_resident.fetch_add(len, Ordering::Relaxed);
                let data = shard.acquire_buf(compressed);
                let handle = shard.lru.push_mru(key);
                Ok(Residence::Memory { data, handle })
            } else {
                // Straight-to-spill path (see above): never resident.
                let data = Arc::new(compressed.to_vec());
                let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
                let tx = shard.tx.as_ref().expect("checked above");
                if tx
                    .send(SpillJob {
                        key,
                        gen,
                        codec: sel.codec.as_u8(),
                        orig_len: page.len() as u32,
                        data: Arc::clone(&data),
                        ctx,
                        queued: ctx.sampled().then(Instant::now),
                    })
                    .is_err()
                {
                    // The receiver is gone without a shutdown(): the
                    // writer panicked. Degrade and fail this put.
                    self.writer_dead.store(true, Ordering::Relaxed);
                    self.enter_degraded(0);
                    return Err(StoreError::ShuttingDown);
                }
                self.tel.count(shard_idx, tstat::SPILLED, 1);
                Ok(Residence::Spilling { data, gen })
            }
        });
        let residence = match residence {
            Ok(r) => r,
            Err(e) => {
                drop(shard);
                return Err(e);
            }
        };
        let hot = matches!(residence, Residence::Hot { .. });
        // A straight-to-spill entry is already in the writer's queue,
        // so its location will hit the journal: it must tombstone on
        // removal.
        let journaled = matches!(residence, Residence::Spilling { .. });
        shard.entries.insert(
            key,
            Entry {
                residence,
                orig_len: page.len() as u32,
                // A hot entry holds raw page bytes, not the sealed form
                // the selection describes.
                codec: if hot {
                    CodecId::Raw.as_u8()
                } else {
                    sel.codec.as_u8()
                },
                probe: probe_code(hint),
                gets: 0,
                last_touch: now,
                journaled,
            },
        );
        drop(shard);
        self.sample_end_traced(top::PUT, t0, ctx);
        Ok(())
    }

    /// Fetch `key`'s page, recording a `store_get` span (and a
    /// `spill_read` child for disk hits) when `ctx` is sampled.
    fn get(&self, key: u64, out: &mut [u8], ctx: TraceCtx) -> Result<Option<HitTier>, StoreError> {
        match self.op_trace(ctx) {
            None => self.get_inner(key, out, TraceCtx::NONE, &mut TraceOut::default()),
            Some(ot) => {
                let mut tout = TraceOut::default();
                let res = self.get_inner(key, out, ctx.child(ot.span), &mut tout);
                self.finish_op(ot, ctx, sop::STORE_GET, &tout, res.is_err() as u8, key);
                res
            }
        }
    }

    fn get_inner(
        &self,
        key: u64,
        out: &mut [u8],
        ctx: TraceCtx,
        tout: &mut TraceOut,
    ) -> Result<Option<HitTier>, StoreError> {
        self.absorb_completed_spills();
        let t0 = self.sample_start();
        let now = self.touch_clock.fetch_add(1, Ordering::Relaxed) as u32;
        let shard_idx = self.shard_index(key);
        // Transient spill-read failures (I/O errors, corrupt extents)
        // consumed so far by this get; bounded by the retry policy.
        let mut io_attempts: u32 = 0;
        // The loop retries a disk hit whose extent was replaced or
        // relocated by GC while the read was in flight (unbounded: each
        // pass observes real progress by another thread) and transient
        // I/O failures (bounded by `spill_retry_attempts`); every other
        // arm returns on the first pass.
        loop {
            let mut shard = self.shards[shard_idx].0.lock().expect("shard poisoned");
            let Some(entry) = shard.entries.get_mut(&key) else {
                drop(shard);
                self.tel.count(shard_idx, tstat::MISSES, 1);
                return Ok(None);
            };
            let orig_len = entry.orig_len as usize;
            let codec = entry.codec;
            if out.len() != orig_len {
                return Err(StoreError::BadPageSize {
                    expected: orig_len,
                    got: out.len(),
                });
            }
            // Stamp the access for the tier policies: the age the
            // promotion decision sees is the gap this get closed, and
            // the unique clock stamp doubles as the promotion
            // revalidation token.
            let age = now.wrapping_sub(entry.last_touch) as u64;
            entry.last_touch = now;
            entry.gets = entry.gets.saturating_add(1);
            let gets = entry.gets as u32;
            tout.codec = codec;
            match &entry.residence {
                Residence::Hot { data, handle } => {
                    tout.tier = strier::HOT;
                    out.copy_from_slice(data);
                    let handle = *handle;
                    shard.lru_hot.touch(handle);
                    drop(shard);
                    self.tel.count(shard_idx, tstat::HITS_HOT, 1);
                    self.sample_end_traced(top::GET_HOT, t0, ctx);
                    return Ok(Some(HitTier::Hot));
                }
                Residence::SameFilled { pattern } => {
                    tout.tier = strier::SAME_FILLED;
                    let pattern = *pattern;
                    drop(shard);
                    expand_same_filled(out, pattern);
                    self.tel.count(shard_idx, tstat::HITS_MEMORY, 1);
                    self.sample_end_traced(top::GET_SAME_FILLED, t0, ctx);
                    return Ok(Some(HitTier::SameFilled));
                }
                Residence::Memory { data, handle } => {
                    tout.tier = strier::MEMORY;
                    // Copy the (small) compressed bytes out under the lock
                    // so decompression runs without it.
                    let handle = *handle;
                    let sealed_len = data.len();
                    SCRATCH.with(|c| {
                        let s = &mut *c.borrow_mut();
                        s.stage.clear();
                        s.stage.extend_from_slice(data);
                    });
                    shard.lru.touch(handle);
                    drop(shard);
                    self.decompress_staged(codec, orig_len, out);
                    self.tel.count(shard_idx, tstat::HITS_MEMORY, 1);
                    self.sample_end_traced(top::GET_MEMORY, t0, ctx);
                    let q = PlacementQuery {
                        key,
                        page_len: orig_len,
                        sealed_len,
                        admitted: codec != CodecId::Raw.as_u8(),
                        age,
                        gets,
                        was_hot: false,
                        pressure_pct: self.pressure_pct(),
                    };
                    if self.cfg.tier_policy.promote(&q) {
                        self.try_promote(key, shard_idx, now, strier::MEMORY, out, ctx);
                    }
                    return Ok(Some(HitTier::Memory));
                }
                Residence::Spilling { data, .. } => {
                    tout.tier = strier::MEMORY;
                    let data = Arc::clone(data);
                    drop(shard);
                    self.decompress_into(codec, &data, orig_len, out);
                    self.tel.count(shard_idx, tstat::HITS_MEMORY, 1);
                    self.sample_end_traced(top::GET_MEMORY, t0, ctx);
                    return Ok(Some(HitTier::Memory));
                }
                Residence::Spilled { offset, len, gen } => {
                    tout.tier = strier::SPILL;
                    let (offset, len, gen) = (*offset, *len, *gen);
                    drop(shard);
                    let rspan_t0 = ctx.sampled().then(Instant::now);
                    let rt0 = self.sample_start();
                    let io = self.read_spill(offset, len);
                    self.sample_end(top::SPILL_READ, rt0);
                    // Validate after the read: if the entry still names
                    // this exact extent, GC cannot have clobbered it (it
                    // republishes an extent, under this shard's lock,
                    // before any byte of its old home is overwritten).
                    let shard = self.shards[shard_idx].0.lock().expect("shard poisoned");
                    let valid = matches!(
                        shard.entries.get(&key).map(|e| &e.residence),
                        Some(Residence::Spilled {
                            offset: o,
                            len: l,
                            gen: g
                        }) if *o == offset && *l == len && *g == gen
                    );
                    drop(shard);
                    if !valid {
                        continue;
                    }
                    // Transient I/O failure: bounded retry with backoff.
                    if let Err(e) = io {
                        self.child_span(
                            ctx,
                            rspan_t0,
                            sop::SPILL_READ,
                            strier::SPILL,
                            codec,
                            1,
                            offset,
                            shard_idx,
                        );
                        io_attempts += 1;
                        if io_attempts >= self.cfg.spill_retry_attempts.max(1) {
                            return Err(e);
                        }
                        self.tel.count(shard_idx, tstat::IO_RETRIES, 1);
                        std::thread::sleep(backoff(self.cfg.spill_retry_base, io_attempts));
                        continue;
                    }
                    // Verify AFTER revalidation: a torn read caused by a
                    // legitimate GC relocation took the `continue` above
                    // and never reaches here, so a failure now is real
                    // corruption — count it, never decompress it.
                    if !self.verify_staged(gen, codec) {
                        self.tel.count(shard_idx, tstat::CORRUPT_DETECTED, 1);
                        if self.tel.timing_enabled() {
                            self.tel.event(tevent::CORRUPT, key, offset);
                        }
                        self.child_span(
                            ctx,
                            rspan_t0,
                            sop::SPILL_READ,
                            strier::SPILL,
                            codec,
                            2,
                            offset,
                            shard_idx,
                        );
                        if let Some(tr) = self.cfg.tracer.as_deref() {
                            tr.anomaly(AnomalyKind::Corrupt, ctx.trace_id, key, offset);
                        }
                        io_attempts += 1;
                        if io_attempts >= self.cfg.spill_retry_attempts.max(1) {
                            // Persistent corruption: drop the entry (if
                            // it still names this extent) so later gets
                            // miss and can refill, instead of serving
                            // the same garbage forever.
                            let mut shard =
                                self.shards[shard_idx].0.lock().expect("shard poisoned");
                            let same = matches!(
                                shard.entries.get(&key).map(|e| &e.residence),
                                Some(Residence::Spilled {
                                    offset: o,
                                    len: l,
                                    gen: g
                                }) if *o == offset && *l == len && *g == gen
                            );
                            if same {
                                self.remove_locked(&mut shard, key);
                            }
                            return Err(StoreError::Corrupt);
                        }
                        self.tel.count(shard_idx, tstat::IO_RETRIES, 1);
                        std::thread::sleep(backoff(self.cfg.spill_retry_base, io_attempts));
                        continue;
                    }
                    self.child_span(
                        ctx,
                        rspan_t0,
                        sop::SPILL_READ,
                        strier::SPILL,
                        codec,
                        0,
                        offset,
                        shard_idx,
                    );
                    self.tel.count(shard_idx, tstat::HITS_SPILL, 1);
                    self.decompress_staged(codec, orig_len, out);
                    self.sample_end_traced(top::GET_SPILL, t0, ctx);
                    let q = PlacementQuery {
                        key,
                        page_len: orig_len,
                        sealed_len: len as usize,
                        admitted: codec != CodecId::Raw.as_u8(),
                        age,
                        gets,
                        was_hot: false,
                        pressure_pct: self.pressure_pct(),
                    };
                    if self.cfg.tier_policy.promote(&q) {
                        self.try_promote(key, shard_idx, now, strier::SPILL, out, ctx);
                    }
                    return Ok(Some(HitTier::Spill));
                }
            }
        }
    }

    fn stats(&self) -> StoreStats {
        self.absorb_completed_spills();
        let resident = self.resident.load(Ordering::Relaxed) as u64;
        StoreStats {
            compressed: self.tel.counter_sum(tstat::COMPRESSED),
            stored_raw: self.tel.counter_sum(tstat::STORED_RAW),
            puts_lzrw1: self.tel.counter_sum(tstat::PUTS_LZRW1),
            puts_bdi: self.tel.counter_sum(tstat::PUTS_BDI),
            codec_fallbacks: self.tel.counter_sum(tstat::CODEC_FALLBACKS),
            lzrw1_in_bytes: self.tel.counter_sum(tstat::LZRW1_IN_BYTES),
            lzrw1_out_bytes: self.tel.counter_sum(tstat::LZRW1_OUT_BYTES),
            bdi_in_bytes: self.tel.counter_sum(tstat::BDI_IN_BYTES),
            bdi_out_bytes: self.tel.counter_sum(tstat::BDI_OUT_BYTES),
            same_filled: self.tel.counter_sum(tstat::SAME_FILLED),
            puts_hot: self.tel.counter_sum(tstat::PUTS_HOT),
            hits_hot: self.tel.counter_sum(tstat::HITS_HOT),
            promotions: self.tel.counter_sum(tstat::PROMOTIONS),
            promotions_rejected: self.tel.counter_sum(tstat::PROMOTIONS_REJECTED),
            demoted_hot: self.tel.counter_sum(tstat::DEMOTED_HOT),
            demoted_warm: self.tel.counter_sum(tstat::DEMOTED_WARM),
            demoter_passes: self.tel.counter_sum(tstat::DEMOTER_PASSES),
            hits_memory: self.tel.counter_sum(tstat::HITS_MEMORY),
            hits_spill: self.tel.counter_sum(tstat::HITS_SPILL),
            misses: self.tel.counter_sum(tstat::MISSES),
            spilled: self.tel.counter_sum(tstat::SPILLED),
            spill_batches: self.tel.counter_sum(tstat::SPILL_BATCHES),
            gc_runs: self.tel.counter_sum(tstat::GC_RUNS),
            gc_bytes_relocated: self.tel.counter_sum(tstat::GC_BYTES_RELOCATED),
            gc_pause_max_ns: self.tel.op_summary(top::GC_PAUSE).max,
            spill_fallback_resident: self.tel.counter_sum(tstat::SPILL_FALLBACK_RESIDENT),
            shed_pages: self.tel.counter_sum(tstat::SHED_PAGES),
            corrupt_detected: self.tel.counter_sum(tstat::CORRUPT_DETECTED),
            io_retries: self.tel.counter_sum(tstat::IO_RETRIES),
            degraded_entered: self.tel.counter_sum(tstat::DEGRADED_ENTERED),
            degraded_recovered: self.tel.counter_sum(tstat::DEGRADED_RECOVERED),
            medium_probes: self.tel.counter_sum(tstat::MEDIUM_PROBES),
            degraded: self.degraded.load(Ordering::Relaxed),
            bytes_on_spill: self.spill_file_bytes.load(Ordering::Relaxed),
            spill_dead_bytes: self.spill_dead_bytes.load(Ordering::Relaxed),
            memory_bytes: resident,
            resident_bytes: resident,
            hot_bytes: self.hot_resident.load(Ordering::Relaxed) as u64,
            warm_bytes: self.warm_resident.load(Ordering::Relaxed) as u64,
            extents_recovered: self.tel.counter_sum(tstat::EXTENTS_RECOVERED),
            journal_records_replayed: self.tel.counter_sum(tstat::JOURNAL_RECORDS_REPLAYED),
            torn_tail_discarded: self.tel.counter_sum(tstat::TORN_TAIL_DISCARDED),
            stale_generation_dropped: self.tel.counter_sum(tstat::STALE_GENERATION_DROPPED),
            recovery_extents_verified: self.tel.counter_sum(tstat::RECOVERY_EXTENTS_VERIFIED),
            journal_records_written: self.tel.counter_sum(tstat::JOURNAL_RECORDS_WRITTEN),
            journal_compactions: self.tel.counter_sum(tstat::JOURNAL_COMPACTIONS),
            clean_recoveries: self.tel.counter_sum(tstat::CLEAN_RECOVERIES),
            recovery_ns: self.tel.op_summary(top::RECOVERY).max,
        }
    }

    /// Read `len` bytes at `offset` into this thread's staging buffer.
    fn read_spill(&self, offset: u64, len: u32) -> Result<(), StoreError> {
        SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            s.stage.clear();
            s.stage.resize(len as usize, 0);
            self.medium
                .as_ref()
                .expect("spilled entry without spill medium")
                .read_at(&mut s.stage, offset)?;
            Ok(())
        })
    }

    /// Verify the staged extent against `gen` and the entry's recorded
    /// `codec`; on success strip the header so only the payload remains
    /// staged for decompression.
    fn verify_staged(&self, gen: u64, codec: u8) -> bool {
        SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            if !verify_extent(&s.stage, gen, codec) {
                return false;
            }
            s.stage.drain(..EXTENT_HEADER);
            true
        })
    }

    /// Record a decompression latency sample on the per-codec histogram.
    #[inline]
    fn record_decompress(&self, codec: CodecId, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        // Raw blocks are a memcpy, not a codec — they are excluded so the
        // per-codec histograms measure real decode work.
        let op = match codec {
            CodecId::Bdi => top::DECOMPRESS_BDI,
            CodecId::Lzrw1 => top::DECOMPRESS_LZRW1,
            _ => return,
        };
        self.tel.record(op, t0.elapsed().as_nanos() as u64);
    }

    /// Decompress this thread's staging buffer into `out`, dispatching on
    /// the entry's recorded codec id.
    fn decompress_staged(&self, codec: u8, orig_len: usize, out: &mut [u8]) {
        let id = CodecId::from_u8(codec).expect("unknown codec id in entry");
        let t0 = self.sample_start();
        SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let Scratch {
                codecs,
                stage,
                decomp,
                ..
            } = &mut *s;
            codecs
                .decompress(id, stage, decomp, orig_len)
                .expect("corrupt page in store");
            out.copy_from_slice(decomp);
        });
        self.record_decompress(id, t0);
    }

    fn decompress_into(&self, codec: u8, data: &[u8], orig_len: usize, out: &mut [u8]) {
        let id = CodecId::from_u8(codec).expect("unknown codec id in entry");
        let t0 = self.sample_start();
        SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let Scratch { codecs, decomp, .. } = &mut *s;
            codecs
                .decompress(id, data, decomp, orig_len)
                .expect("corrupt page in store");
            out.copy_from_slice(decomp);
        });
        self.record_decompress(id, t0);
    }

    /// Persistence hook for every path that removes (or supersedes) an
    /// entry: if the key has a location record in the journal, queue a
    /// tombstone with a fresh LSN so recovery cannot resurrect it. The
    /// LSN is allocated while the caller still holds the key's shard
    /// lock, which is what makes the per-key LSN order exact even when
    /// the tombstone reaches the journal before the PUT it supersedes.
    fn tombstone_if_journaled(&self, journaled: bool, key: u64) {
        if !journaled {
            return;
        }
        if let Some(p) = &self.persist {
            let lsn = self.next_gen.fetch_add(1, Ordering::Relaxed);
            p.enqueue_tombstone(key, lsn);
        }
    }

    fn remove_locked(&self, shard: &mut Shard, key: u64) -> bool {
        match shard.entries.remove(&key) {
            Some(e) => {
                self.tombstone_if_journaled(e.journaled, key);
                match e.residence {
                    Residence::Hot { data, handle } => {
                        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
                        self.hot_resident.fetch_sub(data.len(), Ordering::Relaxed);
                        shard.lru_hot.remove(handle);
                        shard.release_buf(data);
                    }
                    Residence::Memory { data, handle } => {
                        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
                        self.warm_resident.fetch_sub(data.len(), Ordering::Relaxed);
                        shard.lru.remove(handle);
                        shard.release_buf(data);
                    }
                    Residence::Spilled { len, .. } => {
                        // The extent's bytes stay behind on the file as
                        // dead space; the gauge feeds the GC trigger.
                        self.spill_dead_bytes
                            .fetch_add(len as u64, Ordering::Relaxed);
                    }
                    // An in-flight job's bytes become dead when its now-
                    // orphaned completion is absorbed; same-filled entries
                    // occupy nothing anywhere.
                    Residence::Spilling { .. } | Residence::SameFilled { .. } => {}
                }
                true
            }
            None => false,
        }
    }

    /// Evict one cold entry to free budget: spill it if a spill file is
    /// configured, otherwise fail. Prefers the local (already locked)
    /// shard; falls back to try-locking the others so two concurrent
    /// putters can never deadlock.
    fn make_room(&self, local_idx: usize, local: &mut Shard) -> Result<Progress, StoreError> {
        // Budget pressure reached the foreground path: give the
        // background demoter an early wakeup so it sweeps aged entries
        // before the next put has to.
        self.demote_cv.notify_one();
        if self.evict_one(local) {
            return Ok(Progress::Evicted);
        }
        let mut blocked = false;
        for (i, other) in self.shards.iter().enumerate() {
            if i == local_idx {
                continue;
            }
            match other.0.try_lock() {
                Ok(mut guard) => {
                    if self.evict_one(&mut guard) {
                        return Ok(Progress::Evicted);
                    }
                }
                Err(_) => blocked = true,
            }
        }
        if self.has_spill() {
            // No victim reachable right now; the caller spills directly.
            Ok(Progress::NoVictim)
        } else if blocked {
            // Couldn't inspect every shard; the caller must release its
            // lock and retry rather than conclude out-of-memory.
            Ok(Progress::Blocked)
        } else {
            Err(StoreError::OutOfMemory)
        }
    }

    /// Free budget from `shard`: spill its coldest warm entry (already
    /// sealed — the cheapest victim), else compress-and-demote its
    /// coldest hot entry. When degraded, shed instead. Returns false if
    /// nothing on this shard can make progress.
    fn evict_one(&self, shard: &mut Shard) -> bool {
        let warm_victim = shard.lru.peek_lru().map(|(_, &k)| k);
        let Some(tx) = shard.tx.clone() else {
            // No writer (memory-only store, or shut down): warm pages
            // have nowhere to go, but a hot page whose compressed form
            // is smaller can still be squeezed down to warm in place.
            if self.degraded.load(Ordering::Relaxed) {
                return false;
            }
            if let Some((_, &victim)) = shard.lru_hot.peek_lru() {
                return matches!(
                    self.demote_hot_locked(shard, victim, None),
                    DemoteOutcome::Warm
                );
            }
            return false;
        };
        if self.degraded.load(Ordering::Relaxed) {
            // Degraded: the medium can't be trusted with this page, but
            // the budget still must be honored. Shedding drops the
            // coldest entry entirely — cache-miss semantics.
            return self.shed_one(shard);
        }
        let Some(victim) = warm_victim else {
            // Only hot entries left: compress the coldest and demote it
            // (to warm when compression frees memory, straight to the
            // spill channel otherwise — guaranteed progress either way).
            if let Some((_, &victim)) = shard.lru_hot.peek_lru() {
                return matches!(
                    self.demote_hot_locked(shard, victim, Some(&tx)),
                    DemoteOutcome::Warm | DemoteOutcome::Spilled
                );
            }
            return false;
        };
        let entry = shard.entries.get_mut(&victim).expect("lru/map sync");
        let codec = entry.codec;
        let orig_len = entry.orig_len;
        let was_journaled = entry.journaled;
        let Residence::Memory { data, handle } = &mut entry.residence else {
            unreachable!("LRU entry not in memory")
        };
        let handle = *handle;
        let data = Arc::new(std::mem::take(data));
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        entry.residence = Residence::Spilling {
            data: Arc::clone(&data),
            gen,
        };
        entry.journaled = self.persist.is_some();
        shard.lru.remove(handle);
        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
        self.warm_resident.fetch_sub(data.len(), Ordering::Relaxed);
        let len = data.len() as u64;
        if tx
            .send(SpillJob {
                key: victim,
                gen,
                codec,
                orig_len,
                data,
                ctx: TraceCtx::NONE,
                queued: None,
            })
            .is_err()
        {
            // The writer died without a shutdown() (panic): degrade, and
            // shed the victim we just flipped to `Spilling` — its job
            // will never be received, let alone completed.
            self.writer_dead.store(true, Ordering::Relaxed);
            self.enter_degraded(0);
            shard.entries.remove(&victim);
            // The job never reached the journal, but an older location
            // record for this key may still be live there.
            self.tombstone_if_journaled(was_journaled, victim);
            let idx = self.shard_index(victim);
            self.tel.count(idx, tstat::SHED_PAGES, 1);
            if self.tel.timing_enabled() {
                self.tel.event(tevent::SHED, victim, len);
            }
            return true;
        }
        self.tel.count(self.shard_index(victim), tstat::SPILLED, 1);
        if self.tel.timing_enabled() {
            self.tel.event(tevent::EVICT, victim, len);
        }
        true
    }

    /// Drop `shard`'s coldest memory entry entirely (degraded-mode
    /// eviction and post-fallback budget repair) — the coldest warm
    /// entry first (already compressed, cheapest to refill), then the
    /// coldest hot one. Returns false if the shard has no in-memory
    /// entries.
    fn shed_one(&self, shard: &mut Shard) -> bool {
        let victim = match shard.lru.peek_lru() {
            Some((_, &k)) => k,
            None => match shard.lru_hot.peek_lru() {
                Some((_, &k)) => k,
                None => return false,
            },
        };
        let entry = shard.entries.remove(&victim).expect("lru/map sync");
        self.tombstone_if_journaled(entry.journaled, victim);
        let data = match entry.residence {
            Residence::Memory { data, handle } => {
                self.warm_resident.fetch_sub(data.len(), Ordering::Relaxed);
                shard.lru.remove(handle);
                data
            }
            Residence::Hot { data, handle } => {
                self.hot_resident.fetch_sub(data.len(), Ordering::Relaxed);
                shard.lru_hot.remove(handle);
                data
            }
            _ => unreachable!("LRU entry not in memory"),
        };
        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
        let idx = self.shard_index(victim);
        self.tel.count(idx, tstat::SHED_PAGES, 1);
        if self.tel.timing_enabled() {
            self.tel.event(tevent::SHED, victim, data.len() as u64);
        }
        shard.release_buf(data);
        true
    }

    /// Resident bytes as a percentage of the budget, saturated to 100 —
    /// the pressure signal the tier policies and the demoter gates read.
    fn pressure_pct(&self) -> u8 {
        let budget = self.cfg.memory_budget.max(1);
        ((self.resident.load(Ordering::Relaxed).min(budget) * 100) / budget) as u8
    }

    /// Decompress-back-to-hot promotion of `key`, whose just-served
    /// page bytes are in `page`. Promotion never evicts: the budget
    /// delta is CAS-reserved outright and the promotion is abandoned
    /// (counted) when it doesn't fit. The entry must still carry this
    /// get's unique `now` stamp — any interleaved put or get stamps its
    /// own clock value, so a stale swap is impossible.
    fn try_promote(
        &self,
        key: u64,
        shard_idx: usize,
        now: u32,
        src_tier: u8,
        page: &[u8],
        ctx: TraceCtx,
    ) {
        let t0 = self.sample_start();
        let pt0 = ctx.sampled().then(Instant::now);
        let mut shard = self.shards[shard_idx].0.lock().expect("shard poisoned");
        let Some(e) = shard.entries.get(&key) else {
            return;
        };
        if e.last_touch != now {
            self.tel.count(shard_idx, tstat::PROMOTIONS_REJECTED, 1);
            return;
        }
        // Net budget delta: the raw page comes in, the warm sealed
        // bytes (if that's where it lives) go out. A spilled source
        // frees nothing in memory.
        let freed = match &e.residence {
            Residence::Memory { data, .. } => data.len() as i64,
            Residence::Spilled { .. } => 0,
            // Already hot, in flight to disk, or same-filled (which is
            // strictly cheaper than hot): nothing to do.
            _ => return,
        };
        let delta = page.len() as i64 - freed;
        if delta > 0 {
            let delta = delta as usize;
            let mut cur = self.resident.load(Ordering::Relaxed);
            loop {
                if cur + delta > self.cfg.memory_budget {
                    drop(shard);
                    self.tel.count(shard_idx, tstat::PROMOTIONS_REJECTED, 1);
                    return;
                }
                match self.resident.compare_exchange_weak(
                    cur,
                    cur + delta,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        } else {
            self.resident
                .fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
        let mut e = shard.entries.remove(&key).expect("checked above");
        match e.residence {
            Residence::Memory { data, handle } => {
                self.warm_resident.fetch_sub(data.len(), Ordering::Relaxed);
                shard.lru.remove(handle);
                shard.release_buf(data);
            }
            Residence::Spilled { len, .. } => {
                // The extent stays behind as dead bytes for GC.
                self.spill_dead_bytes
                    .fetch_add(len as u64, Ordering::Relaxed);
            }
            _ => unreachable!("checked above"),
        }
        let data = shard.acquire_buf(page);
        let handle = shard.lru_hot.push_mru(key);
        e.residence = Residence::Hot { data, handle };
        e.codec = CodecId::Raw.as_u8();
        shard.entries.insert(key, e);
        drop(shard);
        self.hot_resident.fetch_add(page.len(), Ordering::Relaxed);
        self.tel.count(shard_idx, tstat::PROMOTIONS, 1);
        if self.tel.timing_enabled() {
            self.tel.event(tevent::PROMOTE, key, src_tier as u64);
        }
        self.sample_end(top::PROMOTE, t0);
        self.child_span(
            ctx,
            pt0,
            sop::PROMOTE,
            src_tier,
            CodecId::Raw.as_u8(),
            0,
            key,
            shard_idx,
        );
    }

    /// Compress `shard`'s hot entry `key` (reusing its recorded probe
    /// verdict — no re-probe) and demote it: to warm residence when the
    /// sealed form is smaller, else to the spill channel when one is
    /// available. `Kept` means neither helped; the entry is cycled to
    /// the hot MRU end so a bounded sweep doesn't re-grind it.
    fn demote_hot_locked(
        &self,
        shard: &mut Shard,
        key: u64,
        tx: Option<&Sender<SpillJob>>,
    ) -> DemoteOutcome {
        let shard_idx = self.shard_index(key);
        let Some(e) = shard.entries.get(&key) else {
            return DemoteOutcome::Kept;
        };
        let hint = probe_hint(e.probe);
        let Residence::Hot { data, .. } = &e.residence else {
            return DemoteOutcome::Kept;
        };
        let orig_len = data.len();
        // Seal under the shard lock: the demoter touches one entry per
        // lock hold, and compressing outside the lock would need a page
        // copy plus revalidation — more overhead than it saves on a
        // background path.
        let sel = SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let Scratch { codecs, demote, .. } = &mut *s;
            codecs.compress_with_hint(
                self.cfg.codec_policy,
                self.cfg.threshold,
                data,
                demote,
                hint,
            )
        });
        if sel.len < orig_len {
            // Hot → warm: swap the raw page for its sealed form at the
            // *cold* end of the warm LRU (an aged page stays first in
            // line for the next spill).
            let sealed = SCRATCH.with(|c| shard.acquire_buf(&c.borrow().demote[..sel.len]));
            let mut e = shard.entries.remove(&key).expect("checked above");
            let Residence::Hot { data, handle } = e.residence else {
                unreachable!("checked above")
            };
            shard.lru_hot.remove(handle);
            let handle = shard.lru.push_lru(key);
            e.residence = Residence::Memory {
                data: sealed,
                handle,
            };
            e.codec = sel.codec.as_u8();
            shard.entries.insert(key, e);
            shard.release_buf(data);
            self.resident
                .fetch_sub(orig_len - sel.len, Ordering::Relaxed);
            self.hot_resident.fetch_sub(orig_len, Ordering::Relaxed);
            self.warm_resident.fetch_add(sel.len, Ordering::Relaxed);
            self.tel.count(shard_idx, tstat::DEMOTED_HOT, 1);
            DemoteOutcome::Warm
        } else if let Some(tx) = tx {
            // Incompressible (that's usually why it was hot): hand the
            // sealed bytes straight to the spill writer.
            let sealed = Arc::new(SCRATCH.with(|c| c.borrow().demote[..sel.len].to_vec()));
            let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
            let mut e = shard.entries.remove(&key).expect("checked above");
            let Residence::Hot { data, handle } = e.residence else {
                unreachable!("checked above")
            };
            shard.lru_hot.remove(handle);
            e.residence = Residence::Spilling {
                data: Arc::clone(&sealed),
                gen,
            };
            e.codec = sel.codec.as_u8();
            let was_journaled = e.journaled;
            e.journaled = self.persist.is_some();
            shard.entries.insert(key, e);
            shard.release_buf(data);
            self.resident.fetch_sub(orig_len, Ordering::Relaxed);
            self.hot_resident.fetch_sub(orig_len, Ordering::Relaxed);
            if tx
                .send(SpillJob {
                    key,
                    gen,
                    codec: sel.codec.as_u8(),
                    orig_len: orig_len as u32,
                    data: sealed,
                    ctx: TraceCtx::NONE,
                    queued: None,
                })
                .is_err()
            {
                // Writer died mid-demotion: degrade and shed the victim,
                // exactly as the warm eviction path does.
                self.writer_dead.store(true, Ordering::Relaxed);
                self.enter_degraded(0);
                shard.entries.remove(&key);
                self.tombstone_if_journaled(was_journaled, key);
                self.tel.count(shard_idx, tstat::SHED_PAGES, 1);
                if self.tel.timing_enabled() {
                    self.tel.event(tevent::SHED, key, sel.len as u64);
                }
                return DemoteOutcome::Spilled;
            }
            self.tel.count(shard_idx, tstat::SPILLED, 1);
            self.tel.count(shard_idx, tstat::DEMOTED_HOT, 1);
            DemoteOutcome::Spilled
        } else {
            // Nothing to gain and nowhere to spill: cycle it so the
            // caller's bounded walk moves on.
            if let Some(e) = shard.entries.get(&key) {
                if let Residence::Hot { handle, .. } = &e.residence {
                    let handle = *handle;
                    shard.lru_hot.touch(handle);
                }
            }
            DemoteOutcome::Kept
        }
    }

    /// One bounded demotion sweep across every shard. Hot entries idle
    /// past the policy's `hot_idle` window are compressed down to warm
    /// (or straight to spill if incompressible); warm entries idle past
    /// `warm_idle` are handed to the spill writer. Each list is gated
    /// on its own pressure threshold so an under-budget store does no
    /// work at all. Returns `(hot_demoted, warm_demoted)`.
    fn demote_pass(&self) -> (u64, u64) {
        let policy = &self.cfg.tier_policy;
        let pressure = self.pressure_pct();
        let hot_idle = policy.hot_idle();
        let warm_idle = policy.warm_idle();
        let do_hot = hot_idle != u64::MAX && pressure >= policy.hot_demote_pressure_pct();
        let do_warm = warm_idle != u64::MAX
            && pressure >= policy.warm_demote_pressure_pct()
            && self.has_spill()
            && !self.degraded.load(Ordering::Relaxed);
        if !do_hot && !do_warm {
            return (0, 0);
        }
        let t0 = Instant::now();
        let now = self.touch_clock.load(Ordering::Relaxed) as u32;
        let (mut hot_n, mut warm_n) = (0u64, 0u64);
        for (shard_idx, slot) in self.shards.iter().enumerate() {
            let mut shard = slot.0.lock().expect("shard poisoned");
            if do_hot {
                for _ in 0..DEMOTE_SHARD_BATCH {
                    let Some((_, &victim)) = shard.lru_hot.peek_lru() else {
                        break;
                    };
                    let age = shard
                        .entries
                        .get(&victim)
                        .map(|e| now.wrapping_sub(e.last_touch) as u64)
                        .unwrap_or(0);
                    if age < hot_idle {
                        break;
                    }
                    let tx = shard.tx.clone();
                    match self.demote_hot_locked(&mut shard, victim, tx.as_ref()) {
                        DemoteOutcome::Warm | DemoteOutcome::Spilled => hot_n += 1,
                        DemoteOutcome::Kept => {}
                    }
                }
            }
            if do_warm {
                for _ in 0..DEMOTE_SHARD_BATCH {
                    let Some((_, &victim)) = shard.lru.peek_lru() else {
                        break;
                    };
                    let age = shard
                        .entries
                        .get(&victim)
                        .map(|e| now.wrapping_sub(e.last_touch) as u64)
                        .unwrap_or(0);
                    if age < warm_idle {
                        break;
                    }
                    if !self.evict_one(&mut shard) {
                        break;
                    }
                    self.tel.count(shard_idx, tstat::DEMOTED_WARM, 1);
                    warm_n += 1;
                }
            }
        }
        self.tel.count(0, tstat::DEMOTER_PASSES, 1);
        let pause = t0.elapsed().as_nanos() as u64;
        self.tel.record(top::DEMOTE_PAUSE, pause);
        if self.tel.timing_enabled() {
            self.tel.event(tevent::DEMOTE, hot_n + warm_n, pause);
        }
        if let Some(tr) = self.cfg.tracer.as_deref() {
            // Background span, same idiom as the GC pause: trace 0, no
            // parent, `arg` = pages demoted this pass.
            tr.record(
                0,
                &Span {
                    trace_id: 0,
                    span_id: tr.alloc_span(),
                    parent: 0,
                    op: sop::DEMOTE,
                    tier: strier::NONE,
                    codec: 0,
                    status: 0,
                    start_ns: tr.now_ns(t0),
                    queue_ns: 0,
                    service_ns: pause,
                    arg: hot_n + warm_n,
                },
            );
        }
        (hot_n, warm_n)
    }

    /// Body of the `cc-store-demoter` thread: sleep `demote_interval`
    /// (or until a pressured put kicks the condvar), then run one
    /// [`Self::demote_pass`]. Exits when `shutdown()`/`Drop` sets
    /// `demote_stop`.
    fn demoter_loop(&self) {
        loop {
            let guard = self.demote_stop.lock().expect("demoter stop poisoned");
            if *guard {
                return;
            }
            let (guard, _) = self
                .demote_cv
                .wait_timeout(guard, self.cfg.demote_interval)
                .expect("demoter stop poisoned");
            if *guard {
                return;
            }
            drop(guard);
            self.demote_pass();
        }
    }

    /// Shed coldest entries across shards until `resident` is back at or
    /// under the budget — the repair step after the spill-failure
    /// fallback path pushed it over. Takes one shard lock at a time.
    fn shed_to_budget(&self) {
        loop {
            if self.resident.load(Ordering::Relaxed) <= self.cfg.memory_budget {
                return;
            }
            let mut progress = false;
            for s in &self.shards {
                if self.resident.load(Ordering::Relaxed) <= self.cfg.memory_budget {
                    return;
                }
                let mut guard = s.0.lock().expect("shard poisoned");
                if self.shed_one(&mut guard) {
                    progress = true;
                }
            }
            if !progress {
                // Nothing left to shed (the overshoot is entirely
                // in-flight or already gone); leave the gauge to the
                // next absorb.
                return;
            }
        }
    }

    /// Fold completed writer jobs into the entry maps. A completion only
    /// lands if the entry is still waiting on that exact generation —
    /// replaced-and-respilled keys ignore stale completions, whose bytes
    /// on the file are accounted dead.
    ///
    /// The done-list lock is held across the entire fold (not just the
    /// drain): GC relies on "after my own absorb returns, every committed
    /// offset is published" to take a complete live-extent snapshot, and
    /// releasing the lock before publishing would let a concurrent
    /// absorber (e.g. `flush`) publish a pre-GC offset after GC has
    /// compacted and truncated that region. Lock order is done → shard,
    /// everywhere.
    fn absorb_completed_spills(&self) {
        if !self.has_spill() {
            return;
        }
        let mut over_budget = false;
        let mut done = self.done.lock().expect("done list poisoned");
        for c in done.drain(..) {
            let mut shard = self.shard(c.key);
            let Some(e) = shard.entries.get_mut(&c.key) else {
                // Removed while its write was queued: the write landed
                // anyway (unless it failed) and its bytes are dead.
                if c.offset != SPILL_FAILED {
                    self.spill_dead_bytes
                        .fetch_add(c.len as u64, Ordering::Relaxed);
                }
                continue;
            };
            let data = match &e.residence {
                Residence::Spilling { gen, data } if *gen == c.gen => Arc::clone(data),
                _ => {
                    // Replaced (and possibly re-spilled under a newer
                    // generation) while this write was queued.
                    if c.offset != SPILL_FAILED {
                        self.spill_dead_bytes
                            .fetch_add(c.len as u64, Ordering::Relaxed);
                    }
                    continue;
                }
            };
            if c.offset == SPILL_FAILED {
                // Write failed: fall back to memory residence. This is
                // the one path that may push `resident` past the budget
                // transiently — the alternative is losing the page. The
                // overshoot is counted, and repaired by shedding the
                // coldest entries once the drain completes.
                let handle = shard.lru.push_mru(c.key);
                let bytes = data.len();
                let buf = Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone());
                let e = shard.entries.get_mut(&c.key).expect("just looked up");
                e.residence = Residence::Memory { data: buf, handle };
                let shard_idx = self.shard_index(c.key);
                drop(shard);
                self.tel.count(shard_idx, tstat::SPILL_FALLBACK_RESIDENT, 1);
                self.warm_resident.fetch_add(bytes, Ordering::Relaxed);
                if self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes
                    > self.cfg.memory_budget
                {
                    over_budget = true;
                }
            } else {
                e.residence = Residence::Spilled {
                    offset: c.offset,
                    len: c.len,
                    gen: c.gen,
                };
            }
        }
        drop(done);
        if over_budget {
            // Shed after releasing the done lock: shedding only needs
            // shard locks, and the overshoot window stays bounded by the
            // batches the writer failed while this drain ran.
            self.shed_to_budget();
        }
    }

    fn flush(&self) -> Result<(), StoreError> {
        loop {
            self.absorb_completed_spills();
            let pending = self.shards.iter().any(|s| {
                s.0.lock()
                    .expect("shard poisoned")
                    .entries
                    .values()
                    .any(|e| matches!(e.residence, Residence::Spilling { .. }))
            });
            if !pending {
                // Durability barrier for the journal too: any tombstones
                // queued by removes ride out with the flush, so a crash
                // after a successful flush can never resurrect a key the
                // caller saw removed before the barrier.
                if let Some(p) = &self.persist {
                    let n = p.commit_pending().map_err(StoreError::Io)?;
                    if n > 0 {
                        self.tel.count(0, tstat::JOURNAL_RECORDS_WRITTEN, n);
                    }
                }
                return Ok(());
            }
            if self.writer_dead.load(Ordering::Relaxed) {
                // The writer is gone but jobs are still in flight: their
                // completions will never arrive. Revert them to memory
                // residence (the data is still held by the `Spilling`
                // Arc), restore the budget by shedding, and report the
                // truth instead of spinning forever.
                self.reclaim_orphaned_spilling();
                self.shed_to_budget();
                return Err(StoreError::ShuttingDown);
            }
            std::thread::yield_now();
        }
    }

    /// Convert every `Spilling` entry whose completion can never arrive
    /// (dead writer) back to memory residence. Counted on the same
    /// fallback counter as failed-batch reverts — either way the entry
    /// went back to memory because the medium let it down.
    fn reclaim_orphaned_spilling(&self) {
        // One more absorb first: completions the writer *did* publish
        // before dying must win over the blanket revert.
        self.absorb_completed_spills();
        for s in &self.shards {
            let mut shard = s.0.lock().expect("shard poisoned");
            let orphaned: Vec<u64> = shard
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.residence, Residence::Spilling { .. }))
                .map(|(&k, _)| k)
                .collect();
            for key in orphaned {
                let handle = shard.lru.push_mru(key);
                let e = shard.entries.get_mut(&key).expect("just listed");
                let old = std::mem::replace(&mut e.residence, Residence::SameFilled { pattern: 0 });
                let Residence::Spilling { data, .. } = old else {
                    unreachable!("just filtered")
                };
                let bytes = data.len();
                let buf = Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone());
                e.residence = Residence::Memory { data: buf, handle };
                self.resident.fetch_add(bytes, Ordering::Relaxed);
                self.warm_resident.fetch_add(bytes, Ordering::Relaxed);
                let idx = self.shard_index(key);
                self.tel.count(idx, tstat::SPILL_FALLBACK_RESIDENT, 1);
            }
        }
    }
}

enum Progress {
    Evicted,
    NoVictim,
    Blocked,
}

/// What [`StoreCore::demote_hot_locked`] did with its victim.
enum DemoteOutcome {
    /// Compressed in place to warm residence (freed `orig - sealed`).
    Warm,
    /// Handed to the spill writer (freed the whole raw page).
    Spilled,
    /// Nothing freed and nowhere to spill; cycled to the hot MRU end.
    Kept,
}

/// Per-LRU-list cap on entries each demoter pass inspects per shard —
/// bounds the time a pass holds any one shard lock, so foreground puts
/// and gets never stall behind a long sweep.
const DEMOTE_SHARD_BATCH: usize = 8;

/// How long the writer holds a partially-filled batch open waiting for
/// more jobs. Bounds both the batching opportunity and the extra latency
/// `flush()` can observe for an entry caught mid-batch.
const BATCH_LINGER: Duration = Duration::from_micros(200);

/// The background spill thread: drains the job channel, packs entries
/// into [`StoreConfig::spill_batch_bytes`] batches written with a single
/// positioned write each, and runs spill-file compaction between
/// batches. It is the sole allocator of file space (`cursor`), which is
/// what makes both contiguous batch packing and post-GC cursor reset
/// race-free. It also owns the degraded-mode state machine: consecutive
/// hard batch failures flip the store degraded; while degraded it fails
/// queued jobs immediately (no medium traffic) and probes the medium
/// with a canary round-trip every [`StoreConfig::probe_interval`],
/// re-enabling spill on success.
struct SpillWriter {
    core: Arc<StoreCore>,
    medium: Arc<dyn SpillMedium>,
    cursor: u64,
    /// Hard batch failures (each already retried) since the last
    /// success; crossing `degrade_after` degrades the store.
    consecutive_failures: u32,
    /// Canary probes issued during the current degraded episode.
    probes: u64,
}

/// A job staged into the current batch: its place in the batch buffer
/// plus the identity its completion must carry. `len` is the full
/// extent length (header + payload) as it will live on the file.
struct StagedJob {
    key: u64,
    gen: u64,
    rel: usize,
    len: usize,
    codec: u8,
    /// Uncompressed page length, carried into the journal PUT record.
    orig_len: u32,
    /// Trace context carried over from the [`SpillJob`] (sampled
    /// straight-to-spill puts only).
    ctx: TraceCtx,
    queued: Option<Instant>,
}

impl SpillWriter {
    fn run(mut self, rx: Receiver<SpillJob>) {
        self.run_loop(rx);
        // Channel closed: every queued job has been committed (mpsc
        // drains before disconnecting). Seal the clean-shutdown bit —
        // after the final batch and its journal records are durable,
        // never before.
        self.seal();
    }

    /// Orderly-exit seal: commit any pending tombstones, then write the
    /// superblock with the clean bit, final cursor, and journal tail so
    /// the next open can trust the journal without re-scanning extents.
    /// Best-effort — any failure leaves the file unclean, which is
    /// always safe (recovery just takes the verifying path).
    fn seal(&mut self) {
        let Some(p) = &self.core.persist else { return };
        match p.commit_pending() {
            Ok(n) => {
                if n > 0 {
                    self.core.tel.count(0, tstat::JOURNAL_RECORDS_WRITTEN, n);
                }
            }
            Err(_) => return,
        }
        let page_size = self.core.page_size.load(Ordering::Relaxed) as u32;
        let _ = p.seal_clean(&*self.medium, self.cursor, page_size);
    }

    fn run_loop(&mut self, rx: Receiver<SpillJob>) {
        let target = self.core.cfg.spill_batch_bytes.max(1);
        let mut buf: Vec<u8> = Vec::with_capacity(target * 2);
        let mut staged: Vec<StagedJob> = Vec::new();
        loop {
            if self.core.degraded.load(Ordering::Relaxed) {
                // Probation: producers shed instead of spilling, but
                // jobs queued before the transition (or raced onto it)
                // still arrive — fail them immediately so their pages
                // revert to memory rather than waiting on a medium we
                // don't trust. Between arrivals, probe.
                match rx.recv_timeout(self.core.cfg.probe_interval) {
                    Ok(job) => self.fail_job(job),
                    Err(RecvTimeoutError::Timeout) => self.probe(),
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                continue;
            }
            // Block for the first job of each batch, then coalesce
            // whatever else is queued (lingering briefly for stragglers)
            // into one write.
            let Ok(first) = rx.recv() else { return };
            buf.clear();
            staged.clear();
            Self::stage(&mut buf, &mut staged, first);
            let deadline = Instant::now() + BATCH_LINGER;
            let mut disconnected = false;
            while buf.len() < target {
                match rx.try_recv() {
                    Ok(j) => Self::stage(&mut buf, &mut staged, j),
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                    Err(TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(j) => Self::stage(&mut buf, &mut staged, j),
                            Err(RecvTimeoutError::Timeout) => break,
                            Err(RecvTimeoutError::Disconnected) => {
                                disconnected = true;
                                break;
                            }
                        }
                    }
                }
            }
            self.commit_batch(&buf, &staged);
            self.maybe_gc();
            if disconnected {
                return;
            }
        }
    }

    /// Frame `job` into the batch as a self-verifying extent: header
    /// (with the payload CRC, computed here at commit time) + payload.
    fn stage(buf: &mut Vec<u8>, staged: &mut Vec<StagedJob>, job: SpillJob) {
        let rel = buf.len();
        encode_extent(buf, job.gen, job.codec, &job.data);
        staged.push(StagedJob {
            key: job.key,
            gen: job.gen,
            rel,
            len: buf.len() - rel,
            codec: job.codec,
            orig_len: job.orig_len,
            ctx: job.ctx,
            queued: job.queued,
        });
    }

    /// Publish an immediate `SPILL_FAILED` completion for a job received
    /// while degraded.
    fn fail_job(&self, job: SpillJob) {
        let mut done = self.core.done.lock().expect("done list poisoned");
        done.push(Completion {
            key: job.key,
            gen: job.gen,
            offset: SPILL_FAILED,
            len: (job.data.len() + EXTENT_HEADER) as u32,
        });
    }

    /// One canary write/read round-trip at the cursor (unallocated
    /// space: the next batch overwrites it). Success ends probation.
    fn probe(&mut self) {
        self.probes += 1;
        self.core.tel.count(0, tstat::MEDIUM_PROBES, 1);
        let canary = *b"cc-medium-probe!";
        let mut back = [0u8; 16];
        let ok = self.medium.write_at(&canary, self.cursor).is_ok()
            && self.medium.flush().is_ok()
            && self.medium.read_at(&mut back, self.cursor).is_ok()
            && back == canary;
        if ok {
            self.consecutive_failures = 0;
            self.core.exit_degraded(self.probes);
            self.probes = 0;
        }
    }

    /// Write the batch at `base` with bounded retry and exponential
    /// backoff; transient failures are counted as retries.
    fn write_with_retry(&self, buf: &[u8], base: u64) -> bool {
        let attempts = self.core.cfg.spill_retry_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                self.core.tel.count(0, tstat::IO_RETRIES, 1);
                std::thread::sleep(backoff(self.core.cfg.spill_retry_base, attempt));
            }
            if self.medium.write_at(buf, base).is_ok() && self.medium.flush().is_ok() {
                return true;
            }
        }
        false
    }

    /// Write one coalesced batch at the cursor and publish per-entry
    /// completions. Entries become visible as `Spilled` only after the
    /// whole batch is on the file. A hard failure (retries exhausted)
    /// reports `SPILL_FAILED` for every member and advances the
    /// degraded-mode countdown.
    fn commit_batch(&mut self, buf: &[u8], staged: &[StagedJob]) {
        let base = self.cursor;
        // Always timed: this thread is off the data path, and the write
        // histogram is what the bench gates sanity-check.
        let t0 = Instant::now();
        let mut ok = self.write_with_retry(buf, base);
        if ok {
            // Group-commit the location records *after* the data is
            // durable: a journal record must never point at bytes that
            // were not written. If the journal append fails the whole
            // batch fails — the data bytes are orphaned at an
            // unadvanced cursor and the next batch overwrites them.
            ok = self.journal_batch(base, staged);
        }
        if ok {
            self.consecutive_failures = 0;
            self.cursor += buf.len() as u64;
            self.core
                .spill_file_bytes
                .store(self.cursor, Ordering::Relaxed);
            self.core
                .tel
                .record(top::SPILL_WRITE, t0.elapsed().as_nanos() as u64);
            self.core.tel.count(0, tstat::SPILL_BATCHES, 1);
            self.core
                .tel
                .event(tevent::BATCH_COMMIT, staged.len() as u64, buf.len() as u64);
        } else {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.core.cfg.degrade_after.max(1) {
                self.core.enter_degraded(self.consecutive_failures as u64);
            }
        }
        // Spans for sampled members: queue wait (enqueue to batch start)
        // split from service time (the shared batch write).
        if let Some(tr) = self.core.cfg.tracer.as_deref() {
            let write_ns = t0.elapsed().as_nanos() as u64;
            for j in staged.iter().filter(|j| j.ctx.sampled()) {
                let queue_ns = j
                    .queued
                    .map_or(0, |q| t0.saturating_duration_since(q).as_nanos() as u64);
                tr.record(
                    0,
                    &Span {
                        trace_id: j.ctx.trace_id,
                        span_id: tr.alloc_span(),
                        parent: j.ctx.parent_span,
                        op: sop::SPILL_WRITE,
                        tier: strier::SPILL,
                        codec: j.codec,
                        status: !ok as u8,
                        start_ns: tr.now_ns(t0),
                        queue_ns,
                        service_ns: write_ns,
                        arg: if ok { base + j.rel as u64 } else { j.key },
                    },
                );
            }
        }
        let mut done = self.core.done.lock().expect("done list poisoned");
        for j in staged {
            // A failed batch reports SPILL_FAILED for every member: the
            // store reverts those entries to memory residence rather than
            // losing data or hanging `flush` on completions that never
            // come.
            let offset = if ok {
                base + j.rel as u64
            } else {
                SPILL_FAILED
            };
            done.push(Completion {
                key: j.key,
                gen: j.gen,
                offset,
                len: j.len as u32,
            });
        }
    }

    /// Append one journal PUT record per staged job, plus any tombstones
    /// queued by foreground removes, in a single group-committed write.
    /// Returns `true` on success (or when the store is not persistent).
    fn journal_batch(&self, base: u64, staged: &[StagedJob]) -> bool {
        let Some(p) = &self.core.persist else {
            return true;
        };
        let puts: Vec<JournalRecord> = staged
            .iter()
            .map(|j| JournalRecord {
                kind: jkind::PUT,
                lsn: j.gen,
                key: j.key,
                offset: base + j.rel as u64,
                len: j.len as u32,
                orig_len: j.orig_len,
                codec: j.codec,
            })
            .collect();
        match p.append_commit(&puts) {
            Ok(n) => {
                self.core.tel.count(0, tstat::JOURNAL_RECORDS_WRITTEN, n);
                true
            }
            Err(_) => false,
        }
    }

    /// Compact the spill file if enough of it is dead. Runs between
    /// batches on this thread — the sole producer of completions and the
    /// sole writer of the file — which is what makes the live-extent
    /// snapshot complete and the cursor reset safe.
    ///
    /// Persistent stores add a crash discipline on top: each move
    /// journals a relocation record *before* the copy that might clobber
    /// an earlier extent's old home, a destination is never allowed to
    /// overlap its own source (the old copy stays the fallback until the
    /// new one is provably complete), and the file is truncated only
    /// after every relocation is journaled. A crash at any byte of the
    /// sweep therefore resolves every extent to exactly one valid copy.
    fn maybe_gc(&mut self) {
        let dead = self.core.spill_dead_bytes.load(Ordering::Relaxed);
        let min_dead = self.core.cfg.spill_batch_bytes.max(1) as u64;
        // Persistent files reserve the superblock region below the data;
        // compaction packs down to that floor, never into it.
        let floor = if self.core.persist.is_some() {
            SUPERBLOCK_RESERVED
        } else {
            0
        };
        if self.cursor <= floor || dead < min_dead {
            return;
        }
        if (dead as f64) < self.core.cfg.gc_dead_ratio * (self.cursor - floor) as f64 {
            return;
        }
        // Absorb pending completions first: entries only become `Spilled`
        // through completions, no new ones can appear while this thread
        // is sweeping, and absorb holds the done-list lock across its
        // publishes — so once this call returns, no other absorber is
        // mid-publish and the snapshot below sees every live extent.
        self.core.absorb_completed_spills();
        // Pause clock + relocation meter: the paper's cleaner cost, the
        // modern system's GC stall. Always timed (writer thread).
        let t0 = Instant::now();
        let mut moved = 0u64;
        let mut extents: Vec<(u64, u64, u32, u64, u8, u32)> = Vec::new();
        for s in &self.core.shards {
            let guard = s.0.lock().expect("shard poisoned");
            for (&k, e) in &guard.entries {
                if let Residence::Spilled { offset, len, gen } = e.residence {
                    extents.push((k, offset, len, gen, e.codec, e.orig_len));
                }
            }
        }
        extents.sort_unstable_by_key(|&(_, off, ..)| off);
        let old_len = self.cursor;
        let mut new_cursor = floor;
        let mut buf = Vec::new();
        // Post-sweep location of every surviving extent — the snapshot a
        // journal compaction rewrites the map file from.
        let mut live: Vec<JournalRecord> = Vec::new();
        for (key, old_off, len, gen, codec, orig_len) in extents {
            let record = |offset: u64| JournalRecord {
                kind: jkind::PUT,
                lsn: gen,
                key,
                offset,
                len,
                orig_len,
                codec,
            };
            if old_off == new_cursor {
                // Already compact; nothing to move.
                new_cursor += len as u64;
                live.push(record(old_off));
                continue;
            }
            if floor != 0 && new_cursor + len as u64 > old_off {
                // Persistent non-overlap rule: the destination would
                // reach into the source, destroying the only valid copy
                // before the new one is complete. Leave it in place and
                // accept the gap — a later pass, with more dead space
                // ahead of it, will move it cleanly.
                new_cursor = old_off + len as u64;
                live.push(record(old_off));
                continue;
            }
            buf.resize(len as usize, 0);
            if self.medium.read_at(&mut buf, old_off).is_err() {
                // Abort mid-GC: extents moved so far are already
                // republished and valid; the rest stay where they were.
                return;
            }
            // Copy + republish under the owning shard's lock. A reader
            // validates its (offset, len, gen) snapshot under this same
            // lock *after* its file read, so it can never accept bytes a
            // compaction write clobbered: any clobber of a region implies
            // the extent that lived there was republished first.
            let mut shard = self.core.shard(key);
            let Some(e) = shard.entries.get_mut(&key) else {
                continue; // removed since the snapshot: now dead, skip
            };
            match &mut e.residence {
                Residence::Spilled {
                    offset,
                    len: l,
                    gen: g,
                } if *offset == old_off && *l == len && *g == gen => {
                    // Relocate verbatim, corrupt or not: a live extent
                    // must keep a unique home (skipping it would let a
                    // later relocation clobber it), and the reader's
                    // verification is the integrity authority.
                    //
                    // Persistent: journal the relocation *before* the
                    // copy. Writes hit the platter in issue order under
                    // the power-loss model, so by the time this copy can
                    // clobber an earlier extent's old home, that earlier
                    // extent's own copy and RELOC record are both ahead
                    // of it in the stream — recovery always finds one
                    // valid copy (new if the copy landed, old otherwise,
                    // via the record's previous-offset fallback).
                    if let Some(p) = &self.core.persist {
                        let reloc = JournalRecord {
                            kind: jkind::RELOC,
                            lsn: gen,
                            key,
                            offset: new_cursor,
                            len,
                            orig_len,
                            codec,
                        };
                        match p.append_commit(&[reloc]) {
                            Ok(n) => {
                                self.core.tel.count(0, tstat::JOURNAL_RECORDS_WRITTEN, n);
                            }
                            // Journal down: stop relocating. Everything
                            // moved so far is journaled and republished;
                            // the rest stays put. No truncation.
                            Err(_) => return,
                        }
                    }
                    if self.medium.write_at(&buf, new_cursor).is_err() {
                        return;
                    }
                    *offset = new_cursor;
                    live.push(record(new_cursor));
                    new_cursor += len as u64;
                    moved += len as u64;
                }
                // Replaced since the snapshot: its bytes are dead, skip.
                _ => {}
            }
        }
        let _ = self.medium.flush();
        let _ = self.medium.set_len(new_cursor);
        self.cursor = new_cursor;
        let reclaimed = old_len - new_cursor;
        // Saturating: removes racing the sweep may have counted bytes this
        // pass already reclaimed.
        let _ =
            self.core
                .spill_dead_bytes
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                    Some(d.saturating_sub(reclaimed))
                });
        self.core
            .spill_file_bytes
            .store(new_cursor, Ordering::Relaxed);
        let pause = t0.elapsed().as_nanos() as u64;
        self.core.tel.record(top::GC_PAUSE, pause);
        self.core.tel.count(0, tstat::GC_RUNS, 1);
        self.core.tel.count(0, tstat::GC_BYTES_RELOCATED, moved);
        self.core.tel.event(tevent::GC_RUN, moved, pause);
        if let Some(tr) = self.core.cfg.tracer.as_deref() {
            // Background span: no request trace owns a GC run.
            tr.record(
                0,
                &Span {
                    trace_id: 0,
                    span_id: tr.alloc_span(),
                    parent: 0,
                    op: sop::GC,
                    tier: strier::SPILL,
                    codec: 0,
                    status: 0,
                    start_ns: tr.now_ns(t0),
                    queue_ns: 0,
                    service_ns: pause,
                    arg: moved,
                },
            );
            if pause > tr.gc_pause_threshold().as_nanos() as u64 {
                tr.anomaly(AnomalyKind::GcPause, 0, moved, pause);
            }
        }
        // The sweep shrank the data file and `live` is a complete
        // post-sweep location snapshot — the one moment a journal
        // compaction (rewriting the map file from the snapshot instead
        // of its full history) is both cheap and obviously correct.
        if let Some(p) = &self.core.persist {
            let page_size = self.core.page_size.load(Ordering::Relaxed) as u32;
            if let Ok(true) = p.maybe_compact(&*self.medium, new_cursor, page_size, &live) {
                self.core.tel.count(0, tstat::JOURNAL_COMPACTIONS, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> Vec<u8> {
        let mut p = vec![0u8; 4096];
        for (i, b) in p.iter_mut().enumerate() {
            *b = tag.wrapping_add((i / 97) as u8);
        }
        p
    }

    fn temp_path(name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("ccstore-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        (dir.clone(), dir.join("spill.bin"))
    }

    fn cleanup(dir: std::path::PathBuf, path: std::path::PathBuf) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir(dir);
    }

    #[test]
    fn extent_header_roundtrip_and_tamper_detection() {
        let payload: Vec<u8> = (0..777u32).map(|i| (i * 13 % 251) as u8).collect();
        let codec = CodecId::Lzrw1.as_u8();
        let mut ext = Vec::new();
        encode_extent(&mut ext, 42, codec, &payload);
        assert_eq!(ext.len(), EXTENT_HEADER + payload.len());
        assert!(verify_extent(&ext, 42, codec));
        assert_eq!(&ext[EXTENT_HEADER..], &payload[..]);
        // Wrong generation: a stale or misdirected read.
        assert!(!verify_extent(&ext, 43, codec));
        // Wrong codec: the entry and the extent disagree about how the
        // payload was sealed — never decode.
        assert!(!verify_extent(&ext, 42, CodecId::Bdi.as_u8()));
        // Truncated extent (torn write).
        assert!(!verify_extent(&ext[..ext.len() - 1], 42, codec));
        assert!(!verify_extent(&ext[..EXTENT_HEADER - 1], 42, codec));
        // Any single bit flip — header (including the codec byte and its
        // padding) or payload — is caught.
        let mut tampered = ext.clone();
        for byte in 0..ext.len() {
            for bit in 0..8 {
                tampered[byte] ^= 1 << bit;
                assert!(
                    !verify_extent(&tampered, 42, codec),
                    "flip at {byte}:{bit} undetected"
                );
                tampered[byte] ^= 1 << bit;
            }
        }
        assert_eq!(tampered, ext);
    }

    /// Regression (format versioning): a PR 5-era extent — 20-byte header
    /// without a codec id, CRC over the payload only, magic `..E001` —
    /// must be rejected outright, not misdecoded with a guessed codec.
    #[test]
    fn old_format_extent_is_rejected_as_corrupt() {
        let payload: Vec<u8> = (0..777u32).map(|i| (i * 13 % 251) as u8).collect();
        let gen = 42u64;
        let mut v1 = Vec::new();
        v1.extend_from_slice(&0xCC5E_E001u32.to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        v1.extend_from_slice(&gen.to_le_bytes());
        v1.extend_from_slice(&cc_util::crc32(&payload).to_le_bytes());
        v1.extend_from_slice(&payload);
        for codec in 0..=u8::MAX {
            assert!(
                !verify_extent(&v1, gen, codec),
                "v1 extent accepted under codec {codec}"
            );
        }
    }

    /// A page of 8-byte words clustered near one base — the BDI sweet
    /// spot (pointer-array-like data that LZRW1 handles poorly).
    fn bdi_page(tag: u8) -> Vec<u8> {
        let base = 0x7f00_dead_0000u64 + ((tag as u64) << 16);
        let mut p = Vec::with_capacity(4096);
        for i in 0..512u64 {
            p.extend_from_slice(&(base + (i * 37 + tag as u64 * 11) % 120).to_le_bytes());
        }
        p
    }

    #[test]
    fn adaptive_policy_routes_bdi_pages_and_falls_back() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        assert_eq!(store.core.cfg.codec_policy, CodecPolicy::Adaptive);
        let mut out = vec![0u8; 4096];
        // Word-patterned pages go through BDI...
        for k in 0..16u64 {
            store.put(k, &bdi_page(k as u8)).unwrap();
        }
        // ...while byte-ramp pages (not BDI-able) take LZRW1.
        for k in 16..32u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.puts_bdi, 16, "{s:?}");
        assert_eq!(s.puts_lzrw1, 16, "{s:?}");
        // BDI packs 512 clustered words into ~523 bytes.
        assert!(s.bdi_out_bytes < s.bdi_in_bytes / 4, "{s:?}");
        for k in 0..16u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, bdi_page(k as u8), "key {k}");
        }
        for k in 16..32u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8), "key {k}");
        }
    }

    #[test]
    fn codec_policy_pins_the_codec() {
        let mut out = vec![0u8; 4096];
        // lzrw1-only never runs BDI, even on its best-case input.
        let store = CompressedStore::new(
            StoreConfig::in_memory(1 << 20).with_codec_policy(CodecPolicy::Lzrw1Only),
        );
        for k in 0..8u64 {
            store.put(k, &bdi_page(k as u8)).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.puts_bdi, 0, "{s:?}");
        assert!(s.puts_lzrw1 + s.stored_raw == 8, "{s:?}");
        for k in 0..8u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, bdi_page(k as u8), "key {k}");
        }
        // bdi-only runs BDI everywhere; non-BDI-able pages degrade to
        // stored-raw inside the BDI stream but still roundtrip.
        let store = CompressedStore::new(
            StoreConfig::in_memory(1 << 20).with_codec_policy(CodecPolicy::BdiOnly),
        );
        for k in 0..8u64 {
            store.put(k, &bdi_page(k as u8)).unwrap();
        }
        store.put(99, &page(7)).unwrap();
        let s = store.stats();
        assert_eq!(s.puts_lzrw1, 0, "{s:?}");
        assert_eq!(s.puts_bdi, 8, "{s:?}");
        for k in 0..8u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, bdi_page(k as u8), "key {k}");
        }
        assert!(store.get(99, &mut out).unwrap());
        assert_eq!(out, page(7));
    }

    #[test]
    fn codec_id_survives_spill_and_gc() {
        let (dir, path) = temp_path("codecid");
        {
            // Tiny budget + tiny batches + aggressive GC: BDI-sealed
            // extents are spilled, relocated by compaction, and must still
            // decode with the codec recorded at seal time.
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * 1024, &path)
                    .with_spill_batch_bytes(2 * 1024)
                    .with_gc_dead_ratio(0.3),
            );
            const KEYS: u64 = 24;
            let mut last_round = 0u64;
            for round in 0..200u64 {
                for k in 0..KEYS {
                    // Mix codecs so relocated batches carry both ids.
                    if k % 2 == 0 {
                        store.put(k, &bdi_page((k + round) as u8)).unwrap();
                    } else {
                        store.put(k, &page((k + round) as u8)).unwrap();
                    }
                }
                last_round = round;
                if round >= 39 {
                    store.flush().unwrap();
                    if store.stats().gc_runs > 0 {
                        break;
                    }
                }
            }
            let s = store.stats();
            assert!(s.gc_runs > 0, "churn never triggered GC: {s:?}");
            assert!(s.puts_bdi > 0 && s.puts_lzrw1 > 0, "{s:?}");
            let mut out = vec![0u8; 4096];
            let mut disk_hits = 0;
            for k in 0..KEYS {
                let tier = store.get_tier(k, &mut out).unwrap();
                assert!(tier.is_some(), "key {k} lost");
                let want = if k % 2 == 0 {
                    bdi_page((k + last_round) as u8)
                } else {
                    page((k + last_round) as u8)
                };
                assert_eq!(out, want, "key {k} corrupted");
                if tier == Some(HitTier::Spill) {
                    disk_hits += 1;
                }
            }
            assert!(disk_hits > 0, "nothing read back from disk: {s:?}");
            assert_eq!(store.stats().corrupt_detected, 0);
        }
        cleanup(dir, path);
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        for k in 0..32u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..32u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8), "key {k}");
        }
        assert!(!store.get(999, &mut out).unwrap());
        let s = store.stats();
        assert_eq!(s.compressed, 32);
        assert_eq!(s.misses, 1);
        assert!(s.memory_bytes > 0 && s.memory_bytes < 32 * 4096);
        assert_eq!(s.memory_bytes, s.resident_bytes);
    }

    #[test]
    fn replace_and_remove() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        store.put(1, &page(2)).unwrap();
        let mut out = vec![0u8; 4096];
        store.get(1, &mut out).unwrap();
        assert_eq!(out, page(2));
        assert!(store.remove(1));
        assert!(!store.remove(1));
        assert!(store.is_empty());
        assert_eq!(store.stats().memory_bytes, 0);
    }

    #[test]
    fn raw_pages_counted_and_returned() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let mut rng = cc_util::SplitMix64::new(5);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        store.put(7, &noise).unwrap();
        assert_eq!(store.stats().stored_raw, 1);
        let mut out = vec![0u8; 4096];
        assert!(store.get(7, &mut out).unwrap());
        assert_eq!(out, noise);
    }

    #[test]
    fn out_of_memory_without_spill() {
        let store = CompressedStore::new(StoreConfig::in_memory(2048));
        let mut rng = cc_util::SplitMix64::new(9);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let err = store.put(1, &noise).unwrap_err();
        assert!(matches!(err, StoreError::OutOfMemory));
    }

    #[test]
    fn page_size_is_enforced() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        let err = store.put(2, &vec![0u8; 2048]).unwrap_err();
        assert!(matches!(err, StoreError::BadPageSize { .. }));
    }

    #[test]
    fn shard_count_resolves_to_power_of_two() {
        for (requested, expect) in [(1, 1), (2, 2), (3, 4), (8, 8), (9, 16)] {
            let store =
                CompressedStore::new(StoreConfig::in_memory(1 << 20).with_shards(requested));
            assert_eq!(store.shard_count(), expect, "requested {requested}");
        }
        let auto = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        assert!(auto.shard_count().is_power_of_two());
    }

    #[test]
    fn single_shard_still_works() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20).with_shards(1));
        for k in 0..64u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..64u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8));
        }
    }

    #[test]
    fn same_filled_detection() {
        // Repeated word, any alignment of content.
        assert_eq!(same_filled_pattern(&[0u8; 4096]), Some(0));
        let word = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let repeated: Vec<u8> = word.iter().copied().cycle().take(4096).collect();
        assert_eq!(
            same_filled_pattern(&repeated),
            Some(u64::from_ne_bytes(word))
        );
        // Length not a multiple of the word: tail must match the prefix.
        let odd: Vec<u8> = word.iter().copied().cycle().take(4093).collect();
        assert_eq!(same_filled_pattern(&odd), Some(u64::from_ne_bytes(word)));
        let mut bad_tail = odd.clone();
        *bad_tail.last_mut().unwrap() ^= 1;
        assert_eq!(same_filled_pattern(&bad_tail), None);
        // One byte off anywhere defeats the pattern.
        let mut near = repeated.clone();
        near[2048] ^= 0x80;
        assert_eq!(same_filled_pattern(&near), None);
        // Shorter than a word: all-equal qualifies.
        assert_eq!(
            same_filled_pattern(&[9u8; 5]),
            Some(u64::from_ne_bytes([9; 8]))
        );
        assert_eq!(same_filled_pattern(&[9, 9, 8, 9, 9]), None);
        assert_eq!(same_filled_pattern(&[]), None);
    }

    #[test]
    fn same_filled_pages_bypass_compressor_and_budget() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &vec![0u8; 4096]).unwrap();
        store.put(2, &vec![0xABu8; 4096]).unwrap();
        let word: Vec<u8> = [1u8, 2, 3, 4, 5, 6, 7, 8]
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        store.put(3, &word).unwrap();
        let s = store.stats();
        assert_eq!(s.same_filled, 3);
        assert_eq!(s.compressed, 0);
        assert_eq!(s.resident_bytes, 0, "same-filled pages cost no budget");
        let mut out = vec![0u8; 4096];
        assert_eq!(
            store.get_tier(1, &mut out).unwrap(),
            Some(HitTier::SameFilled)
        );
        assert_eq!(out, vec![0u8; 4096]);
        assert!(store.get(2, &mut out).unwrap());
        assert_eq!(out, vec![0xABu8; 4096]);
        assert!(store.get(3, &mut out).unwrap());
        assert_eq!(out, word);
        // Replacing a same-filled page with a normal one and back works.
        store.put(1, &page(5)).unwrap();
        assert!(store.get(1, &mut out).unwrap());
        assert_eq!(out, page(5));
        store.put(1, &vec![7u8; 4096]).unwrap();
        assert_eq!(
            store.get_tier(1, &mut out).unwrap(),
            Some(HitTier::SameFilled)
        );
        assert_eq!(out, vec![7u8; 4096]);
    }

    #[test]
    fn same_filled_odd_page_size_roundtrip() {
        // 1021 is not a multiple of 8: the pattern tail is partial.
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let word = [0xDEu8, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4];
        let pg: Vec<u8> = word.iter().copied().cycle().take(1021).collect();
        store.put(1, &pg).unwrap();
        assert_eq!(store.stats().same_filled, 1);
        let mut out = vec![0u8; 1021];
        assert_eq!(
            store.get_tier(1, &mut out).unwrap(),
            Some(HitTier::SameFilled)
        );
        assert_eq!(out, pg);
        // A near-pattern of the same size takes the compressor path.
        let mut near = pg.clone();
        near[500] ^= 1;
        store.put(2, &near).unwrap();
        let s = store.stats();
        assert_eq!(s.same_filled, 1);
        assert_eq!(s.compressed + s.stored_raw, 1);
        assert!(store.get(2, &mut out).unwrap());
        assert_eq!(out, near);
    }

    #[test]
    fn spills_to_file_and_reads_back() {
        let (dir, path) = temp_path("test");
        {
            // Budget fits only a handful of compressed pages.
            let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
            for k in 0..64u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush().unwrap();
            let s = store.stats();
            assert!(s.spilled > 0, "must have spilled: {s:?}");
            assert!(s.memory_bytes <= 8 * 1024);
            assert!(s.spill_batches > 0, "spills imply batches: {s:?}");
            assert!(s.bytes_on_spill > 0);
            let mut out = vec![0u8; 4096];
            for k in 0..64u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8), "key {k} corrupted");
            }
            assert!(store.stats().hits_spill > 0);
        }
        cleanup(dir, path);
    }

    #[test]
    fn spill_batches_coalesce_entries() {
        let (dir, path) = temp_path("batch");
        {
            // Budget of ~2 compressed pages: nearly every put evicts, and
            // the single-threaded put loop outruns the 200 µs linger, so
            // the writer must pack multiple entries per batch.
            let store = CompressedStore::new(StoreConfig::with_spill(4 * 1024, &path));
            for k in 0..256u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush().unwrap();
            let s = store.stats();
            assert!(s.spilled >= 200, "expected heavy spilling: {s:?}");
            let per_batch = s.spilled as f64 / s.spill_batches.max(1) as f64;
            assert!(
                per_batch >= 2.0,
                "writer failed to coalesce: {} spills in {} batches",
                s.spilled,
                s.spill_batches
            );
            let mut out = vec![0u8; 4096];
            for k in 0..256u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8), "key {k} corrupted");
            }
        }
        cleanup(dir, path);
    }

    #[test]
    fn flush_makes_partial_batch_readable() {
        let (dir, path) = temp_path("midbatch");
        {
            // A batch target far larger than the data guarantees the
            // entries sit in a partially-filled batch; flush() must still
            // make them durable and readable.
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * 1024, &path).with_spill_batch_bytes(1 << 20),
            );
            for k in 0..8u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush().unwrap();
            let s = store.stats();
            assert!(s.spilled > 0, "must have spilled: {s:?}");
            // After flush, nothing is mid-air: every spilled entry must be
            // servable from the file.
            let mut out = vec![0u8; 4096];
            let mut disk_hits = 0;
            for k in 0..8u64 {
                let tier = store.get_tier(k, &mut out).unwrap();
                assert!(tier.is_some(), "key {k} lost");
                assert_eq!(out, page(k as u8), "key {k} corrupted");
                if tier == Some(HitTier::Spill) {
                    disk_hits += 1;
                }
            }
            assert!(disk_hits > 0, "flush left no entries on disk: {s:?}");
        }
        cleanup(dir, path);
    }

    #[test]
    fn remove_and_replace_account_dead_bytes() {
        let (dir, path) = temp_path("dead");
        {
            // GC disabled so the gauge is observable without compaction.
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * 1024, &path).with_gc_dead_ratio(1e9),
            );
            for k in 0..32u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush().unwrap();
            assert_eq!(store.stats().spill_dead_bytes, 0);
            // Removing spilled entries strands their extents.
            for k in 0..8u64 {
                assert!(store.remove(k));
            }
            let after_remove = store.stats().spill_dead_bytes;
            assert!(after_remove > 0, "removes must strand dead bytes");
            // Replacing spilled entries strands their old extents too.
            for k in 8..16u64 {
                store.put(k, &page(100 + k as u8)).unwrap();
            }
            store.flush().unwrap();
            let after_replace = store.stats().spill_dead_bytes;
            assert!(
                after_replace > after_remove,
                "replaces must strand dead bytes: {after_remove} -> {after_replace}"
            );
        }
        cleanup(dir, path);
    }

    #[test]
    fn gc_compacts_dead_space_and_preserves_data() {
        let (dir, path) = temp_path("gc");
        {
            // Tiny batches + aggressive ratio so compaction triggers
            // repeatedly under replace churn.
            let store = CompressedStore::new(
                StoreConfig::with_spill(4 * 1024, &path)
                    .with_spill_batch_bytes(2 * 1024)
                    .with_gc_dead_ratio(0.3),
            );
            const KEYS: u64 = 24;
            let mut total_spilled_bytes = 0u64;
            let mut last_round = 0u64;
            // 40 rounds of whole-keyspace replacement normally trigger
            // several GC passes, but on a loaded host the writer can lag:
            // queued spill jobs are superseded before they commit, so no
            // dead bytes strand and the trigger never fires. Flushing
            // between extra rounds forces the writer to catch up, making
            // the next round's replaces strand real extents — bounded so
            // a genuinely broken trigger still fails.
            for round in 0..200u64 {
                for k in 0..KEYS {
                    store.put(k, &page((k + round) as u8)).unwrap();
                    total_spilled_bytes += 1024; // rough lower bound per put
                }
                last_round = round;
                if round >= 39 {
                    store.flush().unwrap();
                    if store.stats().gc_runs > 0 {
                        break;
                    }
                }
            }
            let s = store.stats();
            assert!(s.gc_runs > 0, "churn never triggered GC: {s:?}");
            // The file must stay near the live working set, far below the
            // total bytes ever written through it.
            assert!(
                s.bytes_on_spill < total_spilled_bytes / 4,
                "file not compacted: {} bytes on spill, ~{} written",
                s.bytes_on_spill,
                total_spilled_bytes
            );
            // Every key survives compaction with its latest contents.
            let mut out = vec![0u8; 4096];
            for k in 0..KEYS {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page((k + last_round) as u8), "key {k} corrupted");
            }
            // The on-disk file really is the size the gauge reports.
            let fs_len = std::fs::metadata(&path).unwrap().len();
            let s = store.stats();
            assert!(
                fs_len <= s.bytes_on_spill + store.core.cfg.spill_batch_bytes as u64 * 2,
                "fs={fs_len} gauge={}",
                s.bytes_on_spill
            );
        }
        cleanup(dir, path);
    }

    #[test]
    fn telemetry_snapshot_covers_tiers_and_events() {
        let (dir, path) = temp_path("tel");
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(8 * 1024, &path).with_spill_batch_bytes(2 * 1024),
            );
            for k in 0..64u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.put(100, &vec![0u8; 4096]).unwrap();
            store.flush().unwrap();
            let mut out = vec![0u8; 4096];
            for k in 0..64u64 {
                assert!(store.get(k, &mut out).unwrap());
            }
            assert_eq!(
                store.get_tier(100, &mut out).unwrap(),
                Some(HitTier::SameFilled)
            );
            assert!(!store.get(999, &mut out).unwrap());

            let snap = store.telemetry_snapshot();
            assert_eq!(snap.counter("compressed"), Some(64));
            assert_eq!(snap.counter("same_filled"), Some(1));
            assert_eq!(snap.counter("misses"), Some(1));
            assert_eq!(snap.op("put").unwrap().count, 65);
            assert!(snap.op("get_memory").unwrap().count > 0);
            assert_eq!(snap.op("get_same_filled").unwrap().count, 1);
            assert!(snap.op("get_spill").unwrap().count > 0, "{snap:?}");
            assert!(snap.op("spill_write").unwrap().count > 0);
            assert!(snap.op("spill_read").unwrap().count > 0);
            assert!(snap.event_count("batch_commit").unwrap() > 0);
            assert!(snap.event_count("evict").unwrap() > 0);
            assert!(!snap.recent.is_empty());
            let g = snap.op("get_spill").unwrap();
            assert!(g.p50 <= g.p99 && g.p99 <= g.max, "{g:?}");
            assert!(snap.gauges.iter().any(|(n, _)| *n == "bytes_on_spill"));
            // Stats and telemetry are the same counters, not two books.
            let s = store.stats();
            assert_eq!(s.compressed, 64);
            assert_eq!(s.hits_spill, snap.counter("hits_spill").unwrap());
        }
        cleanup(dir, path);
    }

    #[test]
    fn telemetry_disabled_keeps_stats_exact() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20).with_telemetry(false));
        for k in 0..16u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..16u64 {
            assert!(store.get(k, &mut out).unwrap());
        }
        let s = store.stats();
        assert_eq!(s.compressed, 16);
        assert_eq!(s.hits_memory, 16);
        let snap = store.telemetry_snapshot();
        assert_eq!(snap.op("put").unwrap().count, 0, "sampling must be off");
        assert_eq!(snap.counter("compressed"), Some(16), "counters stay live");
        assert_eq!(snap.event_count("evict"), Some(0));
    }

    #[test]
    fn shutdown_then_reads_still_work() {
        let (dir, path) = temp_path("shut");
        {
            let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
            for k in 0..32u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.shutdown();
            let mut out = vec![0u8; 4096];
            for k in 0..32u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8));
            }
        }
        cleanup(dir, path);
    }

    #[test]
    fn concurrent_threads_round_trip() {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let base = t * 10_000;
                let mut out = vec![0u8; 4096];
                for i in 0..500u64 {
                    let key = base + i;
                    store.put(key, &page((key % 251) as u8)).unwrap();
                    // Read back a key written earlier by this thread.
                    let probe = base + i / 2;
                    assert!(store.get(probe, &mut out).unwrap());
                    assert_eq!(out, page((probe % 251) as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
    }

    #[test]
    fn concurrent_with_spill_pressure() {
        let (dir, path) = temp_path("mt");
        {
            let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
                16 * 1024,
                &path,
            )));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                handles.push(std::thread::spawn(move || {
                    let base = t * 1000;
                    let mut out = vec![0u8; 4096];
                    for i in 0..200u64 {
                        store
                            .put(base + i, &page(((base + i) % 251) as u8))
                            .unwrap();
                        if i % 3 == 0 {
                            let probe = base + i / 2;
                            assert!(store.get(probe, &mut out).unwrap(), "{probe}");
                            assert_eq!(out, page((probe % 251) as u8));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            store.flush().unwrap();
            let mut out = vec![0u8; 4096];
            for t in 0..4u64 {
                for i in 0..200u64 {
                    let key = t * 1000 + i;
                    assert!(store.get(key, &mut out).unwrap(), "key {key} lost");
                    assert_eq!(out, page((key % 251) as u8), "key {key} corrupted");
                }
            }
        }
        cleanup(dir, path);
    }

    #[test]
    fn page_size_exposed_after_first_put() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        assert_eq!(store.page_size(), None);
        store.put(1, &page(1)).unwrap();
        assert_eq!(store.page_size(), Some(4096));
    }

    #[test]
    fn put_after_shutdown_fails_instead_of_panicking() {
        let (dir, path) = temp_path("shutdown-put");
        {
            // Budget of ~1 compressed page: puts beyond the first must
            // go through the (stopped) spill writer.
            let store = CompressedStore::new(StoreConfig::with_spill(4 * 1024, &path));
            for k in 0..16u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.shutdown();
            // Reads keep working after shutdown.
            let mut out = vec![0u8; 4096];
            assert!(store.get(3, &mut out).unwrap());
            assert_eq!(out, page(3));
            // A put that needs the writer reports ShuttingDown.
            let mut err = None;
            for k in 100..164u64 {
                if let Err(e) = store.put(k, &page(k as u8)) {
                    err = Some(e);
                    break;
                }
            }
            assert!(
                matches!(err, Some(StoreError::ShuttingDown)),
                "expected ShuttingDown, got {err:?}"
            );
        }
        cleanup(dir, path);
    }

    /// An incompressible page (uniform noise) — the tier policies send
    /// these hot because compressing them buys nothing.
    fn noise_page(seed: u64) -> Vec<u8> {
        let mut rng = cc_util::SplitMix64::new(seed.wrapping_mul(2) + 1);
        (0..4096).map(|_| rng.next_u64() as u8).collect()
    }

    #[test]
    fn incompressible_puts_land_hot_and_hit_without_decode() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let mut out = vec![0u8; 4096];
        for k in 0..8u64 {
            store.put(k, &noise_page(k)).unwrap();
        }
        let s = store.stats();
        // The put still ran the compressor (threshold counters are tier-
        // independent); the raw bytes are what got kept.
        assert_eq!(s.puts_hot, 8, "{s:?}");
        assert_eq!(s.stored_raw, 8, "{s:?}");
        assert_eq!(s.hot_bytes, 8 * 4096, "{s:?}");
        assert_eq!(s.warm_bytes, 0, "{s:?}");
        assert_eq!(s.hot_bytes + s.warm_bytes, s.resident_bytes, "{s:?}");
        for k in 0..8u64 {
            assert_eq!(store.get_tier(k, &mut out).unwrap(), Some(HitTier::Hot));
            assert_eq!(out, noise_page(k), "key {k}");
        }
        assert_eq!(store.stats().hits_hot, 8);
    }

    #[test]
    fn reaccessed_warm_page_is_promoted_to_hot() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let mut out = vec![0u8; 4096];
        store.put(1, &page(1)).unwrap();
        // Compressible → warm on put; the first get serves from warm.
        assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Memory));
        assert_eq!(out, page(1));
        // The second recent get crosses the promotion bar (gets >= 2).
        assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Memory));
        let s = store.stats();
        assert_eq!(s.promotions, 1, "{s:?}");
        assert_eq!(s.hot_bytes, 4096, "{s:?}");
        assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Hot));
        assert_eq!(out, page(1));
    }

    #[test]
    fn compress_all_policy_reproduces_flat_store() {
        let (dir, path) = temp_path("tier-flat");
        {
            let store = CompressedStore::new(
                StoreConfig::with_spill(1 << 20, &path)
                    .with_tier_policy(Arc::new(crate::tier::CompressAll)),
            );
            let mut out = vec![0u8; 4096];
            for k in 0..8u64 {
                store.put(k, &noise_page(k)).unwrap();
                store.put(100 + k, &page(k as u8)).unwrap();
            }
            for _ in 0..4 {
                for k in 0..8u64 {
                    assert!(store.get(k, &mut out).unwrap());
                    assert!(store.get(100 + k, &mut out).unwrap());
                }
            }
            let s = store.stats();
            assert_eq!(s.puts_hot, 0, "{s:?}");
            assert_eq!(s.hits_hot, 0, "{s:?}");
            assert_eq!(s.promotions, 0, "{s:?}");
            assert_eq!(s.hot_bytes, 0, "{s:?}");
            assert_eq!(s.warm_bytes, s.resident_bytes, "{s:?}");
            store.shutdown();
        }
        cleanup(dir, path);
    }

    #[test]
    fn paper_threshold_policy_splits_on_admission_only() {
        let store = CompressedStore::new(
            StoreConfig::in_memory(1 << 20).with_tier_policy(Arc::new(crate::tier::PaperThreshold)),
        );
        let mut out = vec![0u8; 4096];
        store.put(1, &noise_page(1)).unwrap();
        store.put(2, &page(2)).unwrap();
        assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Hot));
        assert_eq!(store.get_tier(2, &mut out).unwrap(), Some(HitTier::Memory));
        // The 4:3 rule is static: no amount of re-access promotes.
        for _ in 0..8 {
            assert_eq!(store.get_tier(2, &mut out).unwrap(), Some(HitTier::Memory));
        }
        assert_eq!(store.stats().promotions, 0);
    }

    /// The full lifecycle under an aggressive recency policy: a promoted
    /// hot page is demoted back to warm by an explicit pass, aged out to
    /// the spill file by the next, and climbs back to hot on re-access —
    /// byte-identical at every step.
    #[test]
    fn demote_now_cycles_hot_to_warm_to_cold_and_back() {
        let (dir, path) = temp_path("tier-cycle");
        {
            let policy = crate::tier::RecencyCompressibility {
                hot_idle: 1,
                // One step above hot_idle so a single pass demotes hot →
                // warm without cascading straight on to the spill file.
                warm_idle: 2,
                hot_demote_pressure_pct: 0,
                warm_demote_pressure_pct: 0,
                ..Default::default()
            };
            let store = CompressedStore::new(
                StoreConfig::with_spill(1 << 20, &path)
                    .with_tier_policy(Arc::new(policy))
                    // Only the explicit demote_now() passes below run, so
                    // every counter assertion is deterministic.
                    .with_demote_interval(Duration::from_secs(3600)),
            );
            let mut out = vec![0u8; 4096];
            store.put(1, &page(1)).unwrap();
            store.get(1, &mut out).unwrap();
            store.get(1, &mut out).unwrap();
            let s = store.stats();
            assert_eq!(s.promotions, 1, "{s:?}");
            assert_eq!(s.hot_bytes, 4096, "{s:?}");

            // Hot → warm: the page is compressible, so demotion reseals
            // it in place (no spill traffic yet).
            let (hot_n, _) = store.demote_now();
            let s = store.stats();
            assert_eq!(hot_n, 1, "{s:?}");
            assert_eq!(s.demoted_hot, 1, "{s:?}");
            assert_eq!(s.hot_bytes, 0, "{s:?}");
            assert!(s.warm_bytes > 0, "{s:?}");
            assert_eq!(s.hot_bytes + s.warm_bytes, s.resident_bytes, "{s:?}");

            // Age is measured on the op clock, so tick it with an
            // unrelated put before the warm → cold pass.
            store.put(99, &page(99)).unwrap();
            let (_, warm_n) = store.demote_now();
            store.flush().unwrap();
            let s = store.stats();
            assert_eq!(warm_n, 1, "{s:?}");
            assert_eq!(s.demoted_warm, 1, "{s:?}");
            assert_eq!(s.hot_bytes, 0, "{s:?}");

            // Cold → hot: the disk hit re-stamps it (its lifetime get
            // count already cleared the bar), so the very next access
            // promotes — and the bytes came through the cycle intact.
            assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Spill));
            assert_eq!(out, page(1));
            assert_eq!(store.get_tier(1, &mut out).unwrap(), Some(HitTier::Hot));
            assert_eq!(out, page(1));
            assert_eq!(store.stats().promotions, 2);
            store.shutdown();
        }
        cleanup(dir, path);
    }
}
