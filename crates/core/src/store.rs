//! A standalone, thread-safe compressed page store — the paper's idea as
//! a modern library API.
//!
//! The simulator in this workspace reproduces the 1993 system; this
//! module is the same mechanism packaged the way its descendants (zram,
//! zswap, the macOS/Windows compressed memory managers) expose it: a
//! bounded in-memory store that keeps pages compressed, with optional
//! spill of the coldest entries to a backing file handled by a background
//! writer thread — the §4.2 cleaner, for real this time.
//!
//! ```
//! use cc_core::store::{CompressedStore, StoreConfig};
//!
//! let store = CompressedStore::new(StoreConfig::in_memory(16 * 1024 * 1024));
//! let page = vec![7u8; 4096];
//! store.put(42, &page).unwrap();
//! let mut out = vec![0u8; 4096];
//! assert!(store.get(42, &mut out).unwrap());
//! assert_eq!(out, page);
//! ```

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use cc_compress::{CompressDecision, Compressor, Lzrw1, ThresholdPolicy};
use cc_util::LruList;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

/// Configuration of a [`CompressedStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum bytes of compressed data held in memory. Beyond this, the
    /// coldest entries are spilled (if a spill file is configured) or
    /// puts fail with [`StoreError::OutOfMemory`].
    pub memory_budget: usize,
    /// Optional spill file path; created/truncated on open.
    pub spill_path: Option<PathBuf>,
    /// Keep-compressed threshold; pages failing it are stored raw (they
    /// still count against the budget — exactly the paper's accounting).
    pub threshold: ThresholdPolicy,
}

impl StoreConfig {
    /// Memory-only store with the paper's 4:3 threshold.
    pub fn in_memory(memory_budget: usize) -> Self {
        StoreConfig {
            memory_budget,
            spill_path: None,
            threshold: ThresholdPolicy::default(),
        }
    }

    /// Store with a spill file for overflow.
    pub fn with_spill(memory_budget: usize, path: impl Into<PathBuf>) -> Self {
        StoreConfig {
            memory_budget,
            spill_path: Some(path.into()),
            threshold: ThresholdPolicy::default(),
        }
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The memory budget is exhausted and no spill file is configured.
    OutOfMemory,
    /// Page size differs from the store's page size (fixed at first put).
    BadPageSize {
        /// Size the store was created with.
        expected: usize,
        /// Size offered.
        got: usize,
    },
    /// Spill-file I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfMemory => write!(f, "compressed store memory budget exhausted"),
            StoreError::BadPageSize { expected, got } => {
                write!(f, "page size mismatch: store uses {expected}, got {got}")
            }
            StoreError::Io(e) => write!(f, "spill I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Counters (all monotonic).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Pages stored compressed.
    pub compressed: u64,
    /// Pages stored raw (failed the threshold).
    pub stored_raw: u64,
    /// Gets served from memory.
    pub hits_memory: u64,
    /// Gets served from the spill file.
    pub hits_spill: u64,
    /// Gets for unknown keys.
    pub misses: u64,
    /// Entries spilled to disk.
    pub spilled: u64,
    /// Current compressed bytes resident in memory.
    pub memory_bytes: u64,
}

enum Residence {
    /// Compressed (or raw) bytes in memory, LRU-tracked.
    Memory {
        data: Arc<Vec<u8>>,
        handle: cc_util::LruHandle,
    },
    /// Handed to the writer; data still readable until the write lands.
    /// The generation ties the eventual completion to *this* hand-off: a
    /// key can be replaced and re-spilled while an older job is still
    /// queued, and the stale completion must not be believed.
    Spilling { data: Arc<Vec<u8>>, gen: u64 },
    /// On the spill file.
    Spilled { offset: u64, len: u32 },
}

struct Entry {
    residence: Residence,
    orig_len: u32,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    lru: LruList<u64>,
    memory_bytes: usize,
    page_size: Option<usize>,
    stats: StoreStats,
    spill_cursor: u64,
    next_gen: u64,
    shutdown: bool,
}

struct SpillJob {
    key: u64,
    gen: u64,
    data: Arc<Vec<u8>>,
    offset: u64,
}

/// The thread-safe compressed page store. Cloneable handles are not
/// provided; share it behind an `Arc`.
pub struct CompressedStore {
    cfg: StoreConfig,
    inner: Mutex<Inner>,
    /// Signaled when the writer drains a job (gets waiting on spill
    /// completion use the entry map, so this is only for backpressure).
    drained: Condvar,
    tx: Option<Sender<SpillJob>>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The spill file for reads (independent handle from the writer's).
    read_file: Option<Mutex<File>>,
    /// Shared with the writer thread to mark entries spilled.
    shared: Arc<SharedSpillState>,
}

struct SharedSpillState {
    /// Completed writes: (key, generation, offset, len).
    done: Mutex<Vec<(u64, u64, u64, u32)>>,
}

impl CompressedStore {
    /// Open a store.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be created.
    pub fn new(cfg: StoreConfig) -> Self {
        let shared = Arc::new(SharedSpillState {
            done: Mutex::new(Vec::new()),
        });
        let (tx, writer, read_file) = match &cfg.spill_path {
            Some(path) => {
                let write_file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(path)
                    .expect("create spill file");
                let read_file = OpenOptions::new()
                    .read(true)
                    .open(path)
                    .expect("open spill file for reads");
                let (tx, rx): (Sender<SpillJob>, Receiver<SpillJob>) = unbounded();
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("cc-store-cleaner".into())
                    .spawn(move || writer_loop(write_file, rx, shared2))
                    .expect("spawn cleaner thread");
                (Some(tx), Some(handle), Some(Mutex::new(read_file)))
            }
            None => (None, None, None),
        };
        CompressedStore {
            cfg,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: LruList::new(),
                memory_bytes: 0,
                page_size: None,
                stats: StoreStats::default(),
                spill_cursor: 0,
                next_gen: 0,
                shutdown: false,
            }),
            drained: Condvar::new(),
            tx,
            writer: Mutex::new(writer),
            read_file,
            shared,
        }
    }

    /// Store (or replace) `key`'s page.
    pub fn put(&self, key: u64, page: &[u8]) -> Result<(), StoreError> {
        // Compress outside the lock with a thread-local codec.
        thread_local! {
            static CODEC: std::cell::RefCell<(Lzrw1, Vec<u8>)> =
                std::cell::RefCell::new((Lzrw1::new(), Vec::new()));
        }
        let (data, raw) = CODEC.with(|c| {
            let (codec, buf) = &mut *c.borrow_mut();
            let n = codec.compress(page, buf);
            match self.cfg.threshold.evaluate(page.len(), n) {
                CompressDecision::Keep => (buf[..n].to_vec(), false),
                CompressDecision::Reject => {
                    // Stored raw, framed the same way (method byte 0).
                    let mut v = Vec::with_capacity(page.len() + 1);
                    v.push(0);
                    v.extend_from_slice(page);
                    (v, true)
                }
            }
        });

        let mut inner = self.inner.lock();
        match inner.page_size {
            None => inner.page_size = Some(page.len()),
            Some(ps) if ps != page.len() => {
                return Err(StoreError::BadPageSize {
                    expected: ps,
                    got: page.len(),
                })
            }
            _ => {}
        }
        self.remove_locked(&mut inner, key);
        if raw {
            inner.stats.stored_raw += 1;
        } else {
            inner.stats.compressed += 1;
        }
        let len = data.len();
        let handle = inner.lru.push_mru(key);
        inner.entries.insert(
            key,
            Entry {
                residence: Residence::Memory {
                    data: Arc::new(data),
                    handle,
                },
                orig_len: page.len() as u32,
            },
        );
        inner.memory_bytes += len;
        self.enforce_budget(&mut inner)?;
        inner.stats.memory_bytes = inner.memory_bytes as u64;
        Ok(())
    }

    /// Fetch `key`'s page into `out` (must be page-sized). Returns false
    /// if the key is unknown.
    pub fn get(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        self.absorb_completed_spills();
        let mut inner = self.inner.lock();
        enum Found {
            InMemory(Arc<Vec<u8>>, Option<cc_util::LruHandle>),
            OnDisk(u64, u32),
        }
        let (found, orig_len) = {
            let Some(entry) = inner.entries.get(&key) else {
                inner.stats.misses += 1;
                return Ok(false);
            };
            let orig_len = entry.orig_len as usize;
            let found = match &entry.residence {
                Residence::Memory { data, handle } => {
                    Found::InMemory(Arc::clone(data), Some(*handle))
                }
                Residence::Spilling { data, .. } => Found::InMemory(Arc::clone(data), None),
                Residence::Spilled { offset, len } => Found::OnDisk(*offset, *len),
            };
            (found, orig_len)
        };
        if out.len() != orig_len {
            return Err(StoreError::BadPageSize {
                expected: orig_len,
                got: out.len(),
            });
        }
        match found {
            Found::InMemory(data, handle) => {
                if let Some(h) = handle {
                    inner.lru.touch(h);
                }
                inner.stats.hits_memory += 1;
                drop(inner);
                self.decompress_into(&data, orig_len, out);
            }
            Found::OnDisk(offset, len) => {
                inner.stats.hits_spill += 1;
                drop(inner);
                let mut buf = vec![0u8; len as usize];
                {
                    let mut f = self
                        .read_file
                        .as_ref()
                        .expect("spilled entry without spill file")
                        .lock();
                    f.seek(SeekFrom::Start(offset))?;
                    f.read_exact(&mut buf)?;
                }
                self.decompress_into(&buf, orig_len, out);
            }
        }
        Ok(true)
    }

    /// Remove a key (e.g. the page was freed). Returns whether it existed.
    pub fn remove(&self, key: u64) -> bool {
        self.absorb_completed_spills();
        let mut inner = self.inner.lock();
        self.remove_locked(&mut inner, key)
    }

    /// Whether the store currently knows `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.absorb_completed_spills();
        self.inner.lock().entries.contains_key(&key)
    }

    /// Number of stored pages (memory + spill).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        self.absorb_completed_spills();
        let mut inner = self.inner.lock();
        inner.stats.memory_bytes = inner.memory_bytes as u64;
        inner.stats
    }

    fn decompress_into(&self, data: &[u8], orig_len: usize, out: &mut [u8]) {
        thread_local! {
            static DECODEC: std::cell::RefCell<(Lzrw1, Vec<u8>)> =
                std::cell::RefCell::new((Lzrw1::new(), Vec::new()));
        }
        DECODEC.with(|c| {
            let (codec, buf) = &mut *c.borrow_mut();
            codec
                .decompress(data, buf, orig_len)
                .expect("corrupt page in store");
            out.copy_from_slice(buf);
        });
    }

    fn remove_locked(&self, inner: &mut Inner, key: u64) -> bool {
        match inner.entries.remove(&key) {
            Some(e) => {
                if let Residence::Memory { data, handle } = &e.residence {
                    inner.memory_bytes -= data.len();
                    inner.lru.remove(*handle);
                }
                true
            }
            None => false,
        }
    }

    /// Evict coldest memory entries until under budget.
    fn enforce_budget(&self, inner: &mut Inner) -> Result<(), StoreError> {
        while inner.memory_bytes > self.cfg.memory_budget {
            let Some((_, &victim)) = inner.lru.peek_lru() else {
                // Everything left is mid-spill; without a spill file this
                // is simply out of memory.
                return if self.tx.is_some() {
                    Ok(())
                } else {
                    Err(StoreError::OutOfMemory)
                };
            };
            let Some(tx) = &self.tx else {
                return Err(StoreError::OutOfMemory);
            };
            // Move the victim to Spilling and enqueue the write.
            let entry = inner.entries.get_mut(&victim).expect("lru/map sync");
            let Residence::Memory { data, handle } = &entry.residence else {
                unreachable!("LRU entry not in memory")
            };
            let (data, handle) = (Arc::clone(data), *handle);
            inner.lru.remove(handle);
            inner.memory_bytes -= data.len();
            let offset = inner.spill_cursor;
            inner.spill_cursor += data.len() as u64;
            let gen = inner.next_gen;
            inner.next_gen += 1;
            entry.residence = Residence::Spilling {
                data: Arc::clone(&data),
                gen,
            };
            inner.stats.spilled += 1;
            tx.send(SpillJob {
                key: victim,
                gen,
                data,
                offset,
            })
            .expect("cleaner thread died");
        }
        Ok(())
    }

    /// Fold completed writer jobs into the entry map. A completion only
    /// lands if the entry is still waiting on that exact generation —
    /// replaced-and-respilled keys ignore stale completions.
    fn absorb_completed_spills(&self) {
        let done: Vec<(u64, u64, u64, u32)> = {
            let mut d = self.shared.done.lock();
            std::mem::take(&mut *d)
        };
        if done.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for (key, gen, offset, len) in done {
            let Some(e) = inner.entries.get_mut(&key) else {
                continue;
            };
            let data = match &e.residence {
                Residence::Spilling { gen: g, data } if *g == gen => Arc::clone(data),
                _ => continue,
            };
            if offset == u64::MAX {
                // Write failed: fall back to memory residence.
                let handle = inner.lru.push_mru(key);
                let bytes = data.len();
                let e = inner.entries.get_mut(&key).expect("just looked up");
                e.residence = Residence::Memory { data, handle };
                inner.memory_bytes += bytes;
            } else {
                e.residence = Residence::Spilled { offset, len };
            }
        }
        self.drained.notify_all();
    }

    /// Block until the cleaner has drained all pending spills (tests and
    /// orderly shutdown).
    pub fn flush(&self) {
        loop {
            self.absorb_completed_spills();
            let inner = self.inner.lock();
            let pending = inner
                .entries
                .values()
                .any(|e| matches!(e.residence, Residence::Spilling { .. }));
            if !pending {
                return;
            }
            drop(inner);
            std::thread::yield_now();
        }
    }
}

impl Drop for CompressedStore {
    fn drop(&mut self) {
        self.inner.lock().shutdown = true;
        // Closing the channel stops the writer.
        self.tx = None;
        if let Some(handle) = self.writer.lock().take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(mut file: File, rx: Receiver<SpillJob>, shared: Arc<SharedSpillState>) {
    while let Ok(job) = rx.recv() {
        let ok = file.seek(SeekFrom::Start(job.offset)).is_ok() && file.write_all(&job.data).is_ok();
        let _ = file.flush();
        // A failed write reports offset u64::MAX: the store reverts the
        // entry to memory residence rather than losing the data or hanging
        // `flush` on a completion that never comes.
        let offset = if ok { job.offset } else { u64::MAX };
        shared
            .done
            .lock()
            .push((job.key, job.gen, offset, job.data.len() as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> Vec<u8> {
        let mut p = vec![0u8; 4096];
        for (i, b) in p.iter_mut().enumerate() {
            *b = tag.wrapping_add((i / 97) as u8);
        }
        p
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        for k in 0..32u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..32u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8), "key {k}");
        }
        assert!(!store.get(999, &mut out).unwrap());
        let s = store.stats();
        assert_eq!(s.compressed, 32);
        assert_eq!(s.misses, 1);
        assert!(s.memory_bytes > 0 && s.memory_bytes < 32 * 4096);
    }

    #[test]
    fn replace_and_remove() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        store.put(1, &page(2)).unwrap();
        let mut out = vec![0u8; 4096];
        store.get(1, &mut out).unwrap();
        assert_eq!(out, page(2));
        assert!(store.remove(1));
        assert!(!store.remove(1));
        assert!(store.is_empty());
        assert_eq!(store.stats().memory_bytes, 0);
    }

    #[test]
    fn raw_pages_counted_and_returned() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let mut rng = cc_util::SplitMix64::new(5);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        store.put(7, &noise).unwrap();
        assert_eq!(store.stats().stored_raw, 1);
        let mut out = vec![0u8; 4096];
        assert!(store.get(7, &mut out).unwrap());
        assert_eq!(out, noise);
    }

    #[test]
    fn out_of_memory_without_spill() {
        let store = CompressedStore::new(StoreConfig::in_memory(2048));
        let mut rng = cc_util::SplitMix64::new(9);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let err = store.put(1, &noise).unwrap_err();
        assert!(matches!(err, StoreError::OutOfMemory));
    }

    #[test]
    fn page_size_is_enforced() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        let err = store.put(2, &vec![0u8; 2048]).unwrap_err();
        assert!(matches!(err, StoreError::BadPageSize { .. }));
    }

    #[test]
    fn spills_to_file_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("ccstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            // Budget fits only a handful of compressed pages.
            let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
            for k in 0..64u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush();
            let s = store.stats();
            assert!(s.spilled > 0, "must have spilled: {s:?}");
            assert!(s.memory_bytes <= 8 * 1024);
            let mut out = vec![0u8; 4096];
            for k in 0..64u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8), "key {k} corrupted");
            }
            assert!(store.stats().hits_spill > 0);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn concurrent_threads_round_trip() {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let base = t * 10_000;
                let mut out = vec![0u8; 4096];
                for i in 0..500u64 {
                    let key = base + i;
                    store.put(key, &page((key % 251) as u8)).unwrap();
                    // Read back a key written earlier by this thread.
                    let probe = base + i / 2;
                    assert!(store.get(probe, &mut out).unwrap());
                    assert_eq!(out, page((probe % 251) as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
    }

    #[test]
    fn concurrent_with_spill_pressure() {
        let dir = std::env::temp_dir().join(format!("ccstore-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
                16 * 1024,
                &path,
            )));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                handles.push(std::thread::spawn(move || {
                    let base = t * 1000;
                    let mut out = vec![0u8; 4096];
                    for i in 0..200u64 {
                        store.put(base + i, &page(((base + i) % 251) as u8)).unwrap();
                        if i % 3 == 0 {
                            let probe = base + i / 2;
                            assert!(store.get(probe, &mut out).unwrap(), "{probe}");
                            assert_eq!(out, page((probe % 251) as u8));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            store.flush();
            let mut out = vec![0u8; 4096];
            for t in 0..4u64 {
                for i in 0..200u64 {
                    let key = t * 1000 + i;
                    assert!(store.get(key, &mut out).unwrap(), "key {key} lost");
                    assert_eq!(out, page((key % 251) as u8), "key {key} corrupted");
                }
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
