//! A standalone, thread-safe compressed page store — the paper's idea as
//! a modern library API.
//!
//! The simulator in this workspace reproduces the 1993 system; this
//! module is the same mechanism packaged the way its descendants (zram,
//! zswap, the macOS/Windows compressed memory managers) expose it: a
//! bounded in-memory store that keeps pages compressed, with optional
//! spill of the coldest entries to a backing file handled by a background
//! writer thread — the §4.2 cleaner, for real this time.
//!
//! # Concurrency
//!
//! The store is **lock-striped**: keys hash onto a power-of-two number of
//! shards (default: one per hardware thread), each with its own entry
//! map, LRU spill ordering, and buffer pool behind its own mutex. The
//! global memory budget is enforced through a single atomic byte counter
//! using compare-and-swap reservation, so `stats().resident_bytes` never
//! exceeds the configured budget, while puts and gets on different shards
//! proceed fully in parallel. Compression and decompression always run
//! outside any shard lock, on thread-local reusable buffers, so the
//! steady-state hot path performs no heap allocation.
//!
//! ```
//! use cc_core::store::{CompressedStore, StoreConfig};
//!
//! let store = CompressedStore::new(StoreConfig::in_memory(16 * 1024 * 1024));
//! let page = vec![7u8; 4096];
//! store.put(42, &page).unwrap();
//! let mut out = vec![0u8; 4096];
//! assert!(store.get(42, &mut out).unwrap());
//! assert_eq!(out, page);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};

use cc_compress::{CompressDecision, Compressor, Lzrw1, ThresholdPolicy};
use cc_util::LruList;

/// Configuration of a [`CompressedStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Maximum bytes of compressed data held in memory. Beyond this, the
    /// coldest entries are spilled (if a spill file is configured) or
    /// puts fail with [`StoreError::OutOfMemory`].
    pub memory_budget: usize,
    /// Optional spill file path; created/truncated on open.
    pub spill_path: Option<PathBuf>,
    /// Keep-compressed threshold; pages failing it are stored raw (they
    /// still count against the budget — exactly the paper's accounting).
    pub threshold: ThresholdPolicy,
    /// Number of lock-striped shards, rounded up to a power of two.
    /// `0` (the default) sizes the striping to the hardware parallelism.
    pub shards: usize,
}

impl StoreConfig {
    /// Memory-only store with the paper's 4:3 threshold.
    pub fn in_memory(memory_budget: usize) -> Self {
        StoreConfig {
            memory_budget,
            spill_path: None,
            threshold: ThresholdPolicy::default(),
            shards: 0,
        }
    }

    /// Store with a spill file for overflow.
    pub fn with_spill(memory_budget: usize, path: impl Into<PathBuf>) -> Self {
        StoreConfig {
            memory_budget,
            spill_path: Some(path.into()),
            threshold: ThresholdPolicy::default(),
            shards: 0,
        }
    }

    /// Override the shard count (rounded up to a power of two; `1` gives
    /// the pre-striping behavior of one global lock, useful as a
    /// scaling baseline).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count this config will actually build: the requested
    /// count (or available parallelism when unset), rounded up to a
    /// power of two and clamped to `1..=256`.
    pub fn resolved_shards(&self) -> usize {
        let n = if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8)
        } else {
            self.shards
        };
        n.next_power_of_two().clamp(1, 256)
    }
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The memory budget is exhausted and no spill file is configured.
    OutOfMemory,
    /// Page size differs from the store's page size (fixed at first put).
    BadPageSize {
        /// Size the store was created with.
        expected: usize,
        /// Size offered.
        got: usize,
    },
    /// Spill-file I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfMemory => write!(f, "compressed store memory budget exhausted"),
            StoreError::BadPageSize { expected, got } => {
                write!(f, "page size mismatch: store uses {expected}, got {got}")
            }
            StoreError::Io(e) => write!(f, "spill I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Counters (all monotonic except the byte gauges).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Pages stored compressed.
    pub compressed: u64,
    /// Pages stored raw (failed the threshold).
    pub stored_raw: u64,
    /// Gets served from memory.
    pub hits_memory: u64,
    /// Gets served from the spill file.
    pub hits_spill: u64,
    /// Gets for unknown keys.
    pub misses: u64,
    /// Entries spilled to disk.
    pub spilled: u64,
    /// Bytes in the spill file belonging to removed or replaced entries
    /// (gauge). The spill file is append-only, so without this the file
    /// would look fully live forever; it is the ground truth a future
    /// compactor needs to decide when collecting is worth it.
    pub spill_dead_bytes: u64,
    /// Current compressed bytes resident in memory (same as
    /// [`StoreStats::resident_bytes`]; kept for source compatibility).
    pub memory_bytes: u64,
    /// Current compressed bytes resident in memory, never above the
    /// configured budget.
    pub resident_bytes: u64,
}

impl StoreStats {
    fn absorb(&mut self, other: &StoreStats) {
        self.compressed += other.compressed;
        self.stored_raw += other.stored_raw;
        self.hits_memory += other.hits_memory;
        self.hits_spill += other.hits_spill;
        self.misses += other.misses;
        self.spilled += other.spilled;
    }
}

enum Residence {
    /// Compressed (or raw) bytes in memory, LRU-tracked, counted against
    /// the budget.
    Memory {
        data: Vec<u8>,
        handle: cc_util::LruHandle,
    },
    /// Handed to the writer; data still readable until the write lands.
    /// The generation ties the eventual completion to *this* hand-off: a
    /// key can be replaced and re-spilled while an older job is still
    /// queued, and the stale completion must not be believed.
    Spilling { data: Arc<Vec<u8>>, gen: u64 },
    /// On the spill file.
    Spilled { offset: u64, len: u32 },
}

struct Entry {
    residence: Residence,
    orig_len: u32,
}

/// Multiplicative hasher for the per-shard entry maps: the keys are
/// already well-mixed page numbers, so SipHash's DoS resistance only
/// costs cycles here.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, k: u64) {
        // splitmix64 finalizer — full avalanche in three multiplies.
        let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type EntryMap = HashMap<u64, Entry, BuildHasherDefault<KeyHasher>>;

/// Max pooled buffers per shard; beyond this, freed buffers are dropped.
const POOL_CAP: usize = 64;

struct Shard {
    entries: EntryMap,
    /// Coldest-first spill ordering over the keys with `Memory` residence.
    lru: LruList<u64>,
    /// Monotonic counters owned by this shard (aggregated by `stats`).
    stats: StoreStats,
    /// Recycled entry buffers: steady-state puts allocate nothing.
    pool: Vec<Vec<u8>>,
    /// Clone of the cleaner channel (kept per shard so no shared `Sender`
    /// needs to be `Sync`); `None` once shut down or without a spill file.
    tx: Option<Sender<SpillJob>>,
}

impl Shard {
    fn acquire_buf(&mut self, contents: &[u8]) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(contents);
        buf
    }

    fn release_buf(&mut self, buf: Vec<u8>) {
        if self.pool.len() < POOL_CAP {
            self.pool.push(buf);
        }
    }
}

/// Pad shards to their own cache lines so hot per-shard state on
/// neighbouring shards does not false-share.
#[repr(align(128))]
struct Padded<T>(T);

struct SpillJob {
    key: u64,
    gen: u64,
    data: Arc<Vec<u8>>,
    offset: u64,
}

struct SharedSpillState {
    /// Completed writes: (key, generation, offset, len).
    done: Mutex<Vec<(u64, u64, u64, u32)>>,
}

/// Scratch space reused across calls on each thread: codec state plus
/// compression, staging, and decompression buffers.
struct Scratch {
    codec: Lzrw1,
    comp: Vec<u8>,
    stage: Vec<u8>,
    decomp: Vec<u8>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch {
        codec: Lzrw1::new(),
        comp: Vec::new(),
        stage: Vec::new(),
        decomp: Vec::new(),
    });
}

/// The thread-safe compressed page store. Cloneable handles are not
/// provided; share it behind an `Arc`.
pub struct CompressedStore {
    cfg: StoreConfig,
    shards: Vec<Padded<Mutex<Shard>>>,
    shard_mask: u64,
    /// Bytes with `Memory` residence across all shards. Budget is
    /// enforced by CAS reservation on this counter, so it never exceeds
    /// `cfg.memory_budget` (outside the spill-failure recovery path).
    resident: AtomicUsize,
    /// Fixed at first put; 0 = not yet fixed.
    page_size: AtomicUsize,
    /// Next free offset in the spill file.
    spill_cursor: AtomicU64,
    /// Bytes on the spill file stranded by removes/replaces of `Spilled`
    /// entries (and by completions for entries that no longer want them).
    spill_dead_bytes: AtomicU64,
    /// Generation stamp for spill jobs.
    next_gen: AtomicU64,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The spill file for reads (independent handle from the writer's).
    read_file: Option<Mutex<File>>,
    /// Shared with the writer thread to mark entries spilled.
    shared: Arc<SharedSpillState>,
}

impl CompressedStore {
    /// Open a store.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be created.
    pub fn new(cfg: StoreConfig) -> Self {
        let shared = Arc::new(SharedSpillState {
            done: Mutex::new(Vec::new()),
        });
        let (tx, writer, read_file) = match &cfg.spill_path {
            Some(path) => {
                let write_file = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(path)
                    .expect("create spill file");
                let read_file = OpenOptions::new()
                    .read(true)
                    .open(path)
                    .expect("open spill file for reads");
                let (tx, rx): (Sender<SpillJob>, Receiver<SpillJob>) = channel();
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("cc-store-cleaner".into())
                    .spawn(move || writer_loop(write_file, rx, shared2))
                    .expect("spawn cleaner thread");
                (Some(tx), Some(handle), Some(Mutex::new(read_file)))
            }
            None => (None, None, None),
        };
        let nshards = cfg.resolved_shards();
        let shards = (0..nshards)
            .map(|_| {
                Padded(Mutex::new(Shard {
                    entries: EntryMap::default(),
                    lru: LruList::new(),
                    stats: StoreStats::default(),
                    pool: Vec::new(),
                    tx: tx.clone(),
                }))
            })
            .collect();
        CompressedStore {
            cfg,
            shards,
            shard_mask: nshards as u64 - 1,
            resident: AtomicUsize::new(0),
            page_size: AtomicUsize::new(0),
            spill_cursor: AtomicU64::new(0),
            spill_dead_bytes: AtomicU64::new(0),
            next_gen: AtomicU64::new(0),
            writer: Mutex::new(writer),
            read_file,
            shared,
        }
    }

    /// Number of lock stripes in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_index(&self, key: u64) -> usize {
        // splitmix64 finalizer: decorrelates the shard choice from any
        // key-assignment pattern (sequential keys, strided keys, ...).
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & self.shard_mask) as usize
    }

    #[inline]
    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        self.shards[self.shard_index(key)]
            .0
            .lock()
            .expect("shard poisoned")
    }

    fn has_spill(&self) -> bool {
        self.read_file.is_some()
    }

    /// Store (or replace) `key`'s page.
    pub fn put(&self, key: u64, page: &[u8]) -> Result<(), StoreError> {
        // Fix the page size (or reject a mismatch) before compressing.
        match self
            .page_size
            .compare_exchange(0, page.len(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {}
            Err(ps) if ps == page.len() => {}
            Err(ps) => {
                return Err(StoreError::BadPageSize {
                    expected: ps,
                    got: page.len(),
                })
            }
        }

        // Compress outside any lock, into this thread's reusable buffer.
        let (len, raw) = SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let n = s.codec.compress(page, &mut s.comp);
            match self.cfg.threshold.evaluate(page.len(), n) {
                CompressDecision::Keep => (n, false),
                CompressDecision::Reject => {
                    // Stored raw, framed the same way (method byte 0).
                    s.comp.clear();
                    s.comp.push(0);
                    s.comp.extend_from_slice(page);
                    (s.comp.len(), true)
                }
            }
        });

        let shard_idx = self.shard_index(key);
        let mut shard = self.shard(key);
        self.remove_locked(&mut shard, key);
        if raw {
            shard.stats.stored_raw += 1;
        } else {
            shard.stats.compressed += 1;
        }

        // Reserve budget for the new entry before publishing it. The CAS
        // keeps `resident` at or below the budget at every instant.
        let mut reserved = true;
        'reserve: loop {
            let mut cur = self.resident.load(Ordering::Relaxed);
            while cur + len <= self.cfg.memory_budget {
                match self.resident.compare_exchange_weak(
                    cur,
                    cur + len,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break 'reserve,
                    Err(actual) => cur = actual,
                }
            }
            match self.make_room(shard_idx, &mut shard)? {
                Progress::Evicted => continue,
                Progress::NoVictim => {
                    // Nothing left to evict (everything is already
                    // spilling, or the page alone exceeds the budget):
                    // bypass residence and spill this entry directly.
                    reserved = false;
                    break;
                }
                Progress::Blocked => {
                    // Victims may exist on shards other putters hold.
                    // Release ours so the system can make progress, then
                    // retry from scratch.
                    drop(shard);
                    std::thread::yield_now();
                    shard = self.shard(key);
                }
            }
        }

        let residence = SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let compressed = &s.comp[..len];
            if reserved {
                let data = shard.acquire_buf(compressed);
                let handle = shard.lru.push_mru(key);
                Residence::Memory { data, handle }
            } else {
                // Straight-to-spill path (see above): never resident.
                let data = Arc::new(compressed.to_vec());
                let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
                let offset = self.spill_cursor.fetch_add(len as u64, Ordering::Relaxed);
                shard.stats.spilled += 1;
                let tx = shard.tx.as_ref().expect("no-spill store cannot bypass");
                tx.send(SpillJob {
                    key,
                    gen,
                    data: Arc::clone(&data),
                    offset,
                })
                .expect("cleaner thread died");
                Residence::Spilling { data, gen }
            }
        });
        shard.entries.insert(
            key,
            Entry {
                residence,
                orig_len: page.len() as u32,
            },
        );
        Ok(())
    }

    /// Fetch `key`'s page into `out` (must be page-sized). Returns false
    /// if the key is unknown.
    pub fn get(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        self.absorb_completed_spills();
        enum Found {
            /// Compressed bytes staged into the thread-local buffer.
            Staged,
            /// Still in the writer's hands; decode from the shared copy.
            InFlight(Arc<Vec<u8>>),
            OnDisk(u64, u32),
        }
        let mut shard = self.shard(key);
        let Some(entry) = shard.entries.get(&key) else {
            shard.stats.misses += 1;
            return Ok(false);
        };
        let orig_len = entry.orig_len as usize;
        if out.len() != orig_len {
            return Err(StoreError::BadPageSize {
                expected: orig_len,
                got: out.len(),
            });
        }
        let (found, touch) = match &entry.residence {
            Residence::Memory { data, handle } => {
                // Copy the (small) compressed bytes out under the lock so
                // decompression runs without it.
                SCRATCH.with(|c| {
                    let s = &mut *c.borrow_mut();
                    s.stage.clear();
                    s.stage.extend_from_slice(data);
                });
                (Found::Staged, Some(*handle))
            }
            Residence::Spilling { data, .. } => (Found::InFlight(Arc::clone(data)), None),
            Residence::Spilled { offset, len } => (Found::OnDisk(*offset, *len), None),
        };
        if let Some(handle) = touch {
            shard.lru.touch(handle);
        }
        if matches!(found, Found::OnDisk(..)) {
            shard.stats.hits_spill += 1;
        } else {
            shard.stats.hits_memory += 1;
        }
        drop(shard);
        match found {
            Found::Staged => SCRATCH.with(|c| {
                let s = &mut *c.borrow_mut();
                let Scratch {
                    codec,
                    stage,
                    decomp,
                    ..
                } = s;
                codec
                    .decompress(stage, decomp, orig_len)
                    .expect("corrupt page in store");
                out.copy_from_slice(decomp);
            }),
            Found::InFlight(data) => self.decompress_into(&data, orig_len, out),
            Found::OnDisk(offset, len) => {
                SCRATCH.with(|c| {
                    let s = &mut *c.borrow_mut();
                    s.stage.clear();
                    s.stage.resize(len as usize, 0);
                    let mut f = self
                        .read_file
                        .as_ref()
                        .expect("spilled entry without spill file")
                        .lock()
                        .expect("spill file poisoned");
                    f.seek(SeekFrom::Start(offset))?;
                    f.read_exact(&mut s.stage)?;
                    drop(f);
                    let Scratch {
                        codec,
                        stage,
                        decomp,
                        ..
                    } = &mut *s;
                    codec
                        .decompress(stage, decomp, orig_len)
                        .expect("corrupt page in store");
                    out.copy_from_slice(decomp);
                    Ok::<(), StoreError>(())
                })?;
            }
        }
        Ok(true)
    }

    /// Remove a key (e.g. the page was freed). Returns whether it existed.
    pub fn remove(&self, key: u64) -> bool {
        self.absorb_completed_spills();
        let mut shard = self.shard(key);
        self.remove_locked(&mut shard, key)
    }

    /// Whether the store currently knows `key`.
    pub fn contains(&self, key: u64) -> bool {
        self.absorb_completed_spills();
        self.shard(key).entries.contains_key(&key)
    }

    /// Number of stored pages (memory + spill).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.0.lock().expect("shard poisoned").entries.len())
            .sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters, aggregated across shards.
    pub fn stats(&self) -> StoreStats {
        self.absorb_completed_spills();
        let mut total = StoreStats::default();
        for s in &self.shards {
            total.absorb(&s.0.lock().expect("shard poisoned").stats);
        }
        let resident = self.resident.load(Ordering::Relaxed) as u64;
        total.resident_bytes = resident;
        total.memory_bytes = resident;
        total.spill_dead_bytes = self.spill_dead_bytes.load(Ordering::Relaxed);
        total
    }

    fn decompress_into(&self, data: &[u8], orig_len: usize, out: &mut [u8]) {
        SCRATCH.with(|c| {
            let s = &mut *c.borrow_mut();
            let Scratch { codec, decomp, .. } = &mut *s;
            codec
                .decompress(data, decomp, orig_len)
                .expect("corrupt page in store");
            out.copy_from_slice(decomp);
        });
    }

    fn remove_locked(&self, shard: &mut Shard, key: u64) -> bool {
        match shard.entries.remove(&key) {
            Some(e) => {
                match e.residence {
                    Residence::Memory { data, handle } => {
                        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
                        shard.lru.remove(handle);
                        shard.release_buf(data);
                    }
                    Residence::Spilled { len, .. } => {
                        // The extent stays behind in the append-only file;
                        // record it as dead rather than leaking it silently.
                        self.spill_dead_bytes
                            .fetch_add(len as u64, Ordering::Relaxed);
                    }
                    // An in-flight job's bytes become dead when its now-
                    // orphaned completion is absorbed.
                    Residence::Spilling { .. } => {}
                }
                true
            }
            None => false,
        }
    }

    /// Evict one cold entry to free budget: spill it if a spill file is
    /// configured, otherwise fail. Prefers the local (already locked)
    /// shard; falls back to try-locking the others so two concurrent
    /// putters can never deadlock.
    fn make_room(&self, local_idx: usize, local: &mut Shard) -> Result<Progress, StoreError> {
        if self.evict_one(local) {
            return Ok(Progress::Evicted);
        }
        let mut blocked = false;
        for (i, other) in self.shards.iter().enumerate() {
            if i == local_idx {
                continue;
            }
            match other.0.try_lock() {
                Ok(mut guard) => {
                    if self.evict_one(&mut guard) {
                        return Ok(Progress::Evicted);
                    }
                }
                Err(_) => blocked = true,
            }
        }
        if self.has_spill() {
            // No victim reachable right now; the caller spills directly.
            Ok(Progress::NoVictim)
        } else if blocked {
            // Couldn't inspect every shard; the caller must release its
            // lock and retry rather than conclude out-of-memory.
            Ok(Progress::Blocked)
        } else {
            Err(StoreError::OutOfMemory)
        }
    }

    /// Move `shard`'s coldest memory entry to the writer. Returns false
    /// if the shard has no memory-resident entries.
    fn evict_one(&self, shard: &mut Shard) -> bool {
        let Some((_, &victim)) = shard.lru.peek_lru() else {
            return false;
        };
        let Some(tx) = shard.tx.clone() else {
            return false;
        };
        let entry = shard.entries.get_mut(&victim).expect("lru/map sync");
        let Residence::Memory { data, handle } = &mut entry.residence else {
            unreachable!("LRU entry not in memory")
        };
        let handle = *handle;
        let data = Arc::new(std::mem::take(data));
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let offset = self
            .spill_cursor
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        entry.residence = Residence::Spilling {
            data: Arc::clone(&data),
            gen,
        };
        shard.lru.remove(handle);
        self.resident.fetch_sub(data.len(), Ordering::Relaxed);
        shard.stats.spilled += 1;
        tx.send(SpillJob {
            key: victim,
            gen,
            data,
            offset,
        })
        .expect("cleaner thread died");
        true
    }

    /// Fold completed writer jobs into the entry maps. A completion only
    /// lands if the entry is still waiting on that exact generation —
    /// replaced-and-respilled keys ignore stale completions.
    fn absorb_completed_spills(&self) {
        if !self.has_spill() {
            return;
        }
        let done: Vec<(u64, u64, u64, u32)> = {
            let mut d = self.shared.done.lock().expect("done list poisoned");
            std::mem::take(&mut *d)
        };
        for (key, gen, offset, len) in done {
            let mut shard = self.shard(key);
            let Some(e) = shard.entries.get_mut(&key) else {
                // Removed while its write was queued: the write landed
                // anyway (unless it failed) and its bytes are dead.
                if offset != u64::MAX {
                    self.spill_dead_bytes
                        .fetch_add(len as u64, Ordering::Relaxed);
                }
                continue;
            };
            let data = match &e.residence {
                Residence::Spilling { gen: g, data } if *g == gen => Arc::clone(data),
                _ => {
                    // Replaced (and possibly re-spilled under a newer
                    // generation) while this write was queued.
                    if offset != u64::MAX {
                        self.spill_dead_bytes
                            .fetch_add(len as u64, Ordering::Relaxed);
                    }
                    continue;
                }
            };
            if offset == u64::MAX {
                // Write failed: fall back to memory residence. This is the
                // one path that may push `resident` past the budget — the
                // alternative is losing the page.
                let handle = shard.lru.push_mru(key);
                let bytes = data.len();
                let buf = Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone());
                let e = shard.entries.get_mut(&key).expect("just looked up");
                e.residence = Residence::Memory { data: buf, handle };
                self.resident.fetch_add(bytes, Ordering::Relaxed);
            } else {
                e.residence = Residence::Spilled { offset, len };
            }
        }
    }

    /// Block until the cleaner has drained all pending spills (tests and
    /// orderly shutdown).
    pub fn flush(&self) {
        loop {
            self.absorb_completed_spills();
            let pending = self.shards.iter().any(|s| {
                s.0.lock()
                    .expect("shard poisoned")
                    .entries
                    .values()
                    .any(|e| matches!(e.residence, Residence::Spilling { .. }))
            });
            if !pending {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Drain pending spills, stop the cleaner thread, and join it. The
    /// store remains readable; further puts that need to spill will fail.
    pub fn shutdown(&self) {
        self.flush();
        for s in &self.shards {
            s.0.lock().expect("shard poisoned").tx = None;
        }
        if let Some(handle) = self.writer.lock().expect("writer handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

enum Progress {
    Evicted,
    NoVictim,
    Blocked,
}

impl Drop for CompressedStore {
    fn drop(&mut self) {
        // Closing every Sender clone stops the writer.
        for s in &self.shards {
            s.0.lock().expect("shard poisoned").tx = None;
        }
        if let Some(handle) = self.writer.lock().expect("writer handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(mut file: File, rx: Receiver<SpillJob>, shared: Arc<SharedSpillState>) {
    while let Ok(job) = rx.recv() {
        let ok =
            file.seek(SeekFrom::Start(job.offset)).is_ok() && file.write_all(&job.data).is_ok();
        let _ = file.flush();
        // A failed write reports offset u64::MAX: the store reverts the
        // entry to memory residence rather than losing the data or hanging
        // `flush` on a completion that never comes.
        let offset = if ok { job.offset } else { u64::MAX };
        shared.done.lock().expect("done list poisoned").push((
            job.key,
            job.gen,
            offset,
            job.data.len() as u32,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> Vec<u8> {
        let mut p = vec![0u8; 4096];
        for (i, b) in p.iter_mut().enumerate() {
            *b = tag.wrapping_add((i / 97) as u8);
        }
        p
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        for k in 0..32u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..32u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8), "key {k}");
        }
        assert!(!store.get(999, &mut out).unwrap());
        let s = store.stats();
        assert_eq!(s.compressed, 32);
        assert_eq!(s.misses, 1);
        assert!(s.memory_bytes > 0 && s.memory_bytes < 32 * 4096);
        assert_eq!(s.memory_bytes, s.resident_bytes);
    }

    #[test]
    fn replace_and_remove() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        store.put(1, &page(2)).unwrap();
        let mut out = vec![0u8; 4096];
        store.get(1, &mut out).unwrap();
        assert_eq!(out, page(2));
        assert!(store.remove(1));
        assert!(!store.remove(1));
        assert!(store.is_empty());
        assert_eq!(store.stats().memory_bytes, 0);
    }

    #[test]
    fn raw_pages_counted_and_returned() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        let mut rng = cc_util::SplitMix64::new(5);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        store.put(7, &noise).unwrap();
        assert_eq!(store.stats().stored_raw, 1);
        let mut out = vec![0u8; 4096];
        assert!(store.get(7, &mut out).unwrap());
        assert_eq!(out, noise);
    }

    #[test]
    fn out_of_memory_without_spill() {
        let store = CompressedStore::new(StoreConfig::in_memory(2048));
        let mut rng = cc_util::SplitMix64::new(9);
        let noise: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let err = store.put(1, &noise).unwrap_err();
        assert!(matches!(err, StoreError::OutOfMemory));
    }

    #[test]
    fn page_size_is_enforced() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        store.put(1, &page(1)).unwrap();
        let err = store.put(2, &vec![0u8; 2048]).unwrap_err();
        assert!(matches!(err, StoreError::BadPageSize { .. }));
    }

    #[test]
    fn shard_count_resolves_to_power_of_two() {
        for (requested, expect) in [(1, 1), (2, 2), (3, 4), (8, 8), (9, 16)] {
            let store =
                CompressedStore::new(StoreConfig::in_memory(1 << 20).with_shards(requested));
            assert_eq!(store.shard_count(), expect, "requested {requested}");
        }
        let auto = CompressedStore::new(StoreConfig::in_memory(1 << 20));
        assert!(auto.shard_count().is_power_of_two());
    }

    #[test]
    fn single_shard_still_works() {
        let store = CompressedStore::new(StoreConfig::in_memory(1 << 20).with_shards(1));
        for k in 0..64u64 {
            store.put(k, &page(k as u8)).unwrap();
        }
        let mut out = vec![0u8; 4096];
        for k in 0..64u64 {
            assert!(store.get(k, &mut out).unwrap());
            assert_eq!(out, page(k as u8));
        }
    }

    #[test]
    fn spills_to_file_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("ccstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            // Budget fits only a handful of compressed pages.
            let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
            for k in 0..64u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush();
            let s = store.stats();
            assert!(s.spilled > 0, "must have spilled: {s:?}");
            assert!(s.memory_bytes <= 8 * 1024);
            let mut out = vec![0u8; 4096];
            for k in 0..64u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8), "key {k} corrupted");
            }
            assert!(store.stats().hits_spill > 0);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn remove_and_replace_account_dead_bytes() {
        let dir = std::env::temp_dir().join(format!("ccstore-dead-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            let store = CompressedStore::new(StoreConfig::with_spill(4 * 1024, &path));
            for k in 0..32u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.flush();
            assert_eq!(store.stats().spill_dead_bytes, 0);
            // Removing spilled entries strands their extents.
            for k in 0..8u64 {
                assert!(store.remove(k));
            }
            let after_remove = store.stats().spill_dead_bytes;
            assert!(after_remove > 0, "removes must strand dead bytes");
            // Replacing spilled entries strands their old extents too.
            for k in 8..16u64 {
                store.put(k, &page(100 + k as u8)).unwrap();
            }
            store.flush();
            let after_replace = store.stats().spill_dead_bytes;
            assert!(
                after_replace > after_remove,
                "replaces must strand dead bytes: {after_remove} -> {after_replace}"
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn shutdown_then_reads_still_work() {
        let dir = std::env::temp_dir().join(format!("ccstore-shut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            let store = CompressedStore::new(StoreConfig::with_spill(8 * 1024, &path));
            for k in 0..32u64 {
                store.put(k, &page(k as u8)).unwrap();
            }
            store.shutdown();
            let mut out = vec![0u8; 4096];
            for k in 0..32u64 {
                assert!(store.get(k, &mut out).unwrap(), "key {k} lost");
                assert_eq!(out, page(k as u8));
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn concurrent_threads_round_trip() {
        let store = Arc::new(CompressedStore::new(StoreConfig::in_memory(64 << 20)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let base = t * 10_000;
                let mut out = vec![0u8; 4096];
                for i in 0..500u64 {
                    let key = base + i;
                    store.put(key, &page((key % 251) as u8)).unwrap();
                    // Read back a key written earlier by this thread.
                    let probe = base + i / 2;
                    assert!(store.get(probe, &mut out).unwrap());
                    assert_eq!(out, page((probe % 251) as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
    }

    #[test]
    fn concurrent_with_spill_pressure() {
        let dir = std::env::temp_dir().join(format!("ccstore-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.bin");
        {
            let store = Arc::new(CompressedStore::new(StoreConfig::with_spill(
                16 * 1024,
                &path,
            )));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let store = Arc::clone(&store);
                handles.push(std::thread::spawn(move || {
                    let base = t * 1000;
                    let mut out = vec![0u8; 4096];
                    for i in 0..200u64 {
                        store
                            .put(base + i, &page(((base + i) % 251) as u8))
                            .unwrap();
                        if i % 3 == 0 {
                            let probe = base + i / 2;
                            assert!(store.get(probe, &mut out).unwrap(), "{probe}");
                            assert_eq!(out, page((probe % 251) as u8));
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            store.flush();
            let mut out = vec![0u8; 4096];
            for t in 0..4u64 {
                for i in 0..200u64 {
                    let key = t * 1000 + i;
                    assert!(store.get(key, &mut out).unwrap(), "key {key} lost");
                    assert_eq!(out, page((key % 251) as u8), "key {key} corrupted");
                }
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
