//! The circular buffer of physical frames holding compressed pages.
//!
//! §4.2: *"memory for the compression cache is now treated as a
//! variable-sized circular buffer. Physical pages are mapped into the
//! kernel's virtual address space, one after another, eventually wrapping
//! around to the start of the range of addresses for the compression
//! cache... When VM pages are compressed, they are compressed directly
//! into the first unused region within the compression cache, following
//! the last page that had been added to the cache."*
//!
//! The model is byte-accurate: the VA range is `max_slots` page-sized
//! slots; a monotonically increasing byte cursor maps to `(cursor /
//! page_bytes) % max_slots`. Compressed entries (header + data) are
//! appended at the cursor and may span slot boundaries. Each slot tracks
//! the number of *live* entry bytes it holds; a mapped slot with zero live
//! bytes is reclaimable (the paper's `free`/`clean` frame states), whether
//! it is at the oldest end or in the middle ("They may be removed from the
//! middle if no clean pages are available at the oldest end").
//!
//! Entry contents are physically scattered into the frames' bytes via
//! [`CircBuf::write_bytes`]; faults read them back with
//! [`CircBuf::read_bytes`], so any layout bug corrupts page data and is
//! caught by the end-to-end integrity tests.

use cc_mem::{FrameId, FramePool};

/// Per-slot state of the cache's VA range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No frame mapped at this VA slot.
    Unmapped,
    /// A frame is mapped; `live_bytes` of it belong to live entries.
    Mapped {
        /// The physical frame.
        frame: FrameId,
        /// Bytes of live compressed entries overlapping this slot.
        live_bytes: u32,
    },
}

/// Result of probing whether an append of a given size can proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendProbe {
    /// Space is available; `append` will succeed.
    Ready,
    /// The VA slot `slot` needs a frame mapped first.
    NeedFrame {
        /// Slot index requiring a frame.
        slot: usize,
    },
    /// Slot `slot` still holds live data from the previous lap; the caller
    /// must drop or clean the oldest entries first.
    Blocked {
        /// Slot index blocked by live data.
        slot: usize,
    },
}

/// The circular buffer.
#[derive(Debug, Clone)]
pub struct CircBuf {
    page_bytes: usize,
    slots: Vec<SlotState>,
    /// Absolute (non-wrapped) byte offset of the next append.
    cursor: u64,
    mapped: usize,
}

impl CircBuf {
    /// A buffer over `max_slots` VA slots of `page_bytes` each.
    pub fn new(max_slots: usize, page_bytes: usize) -> Self {
        assert!(max_slots > 0 && page_bytes > 0);
        CircBuf {
            page_bytes,
            slots: vec![SlotState::Unmapped; max_slots],
            cursor: 0,
            mapped: 0,
        }
    }

    /// Number of VA slots.
    pub fn max_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently mapped frames.
    pub fn mapped_frames(&self) -> usize {
        self.mapped
    }

    /// Bytes per slot/frame.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The absolute append cursor (diagnostics).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Slot index of an absolute byte offset.
    pub fn slot_of(&self, off: u64) -> usize {
        ((off / self.page_bytes as u64) % self.slots.len() as u64) as usize
    }

    /// State of a slot.
    pub fn slot(&self, idx: usize) -> SlotState {
        self.slots[idx]
    }

    /// Slots (ordered) covered by `len` bytes starting at `off`.
    fn covering(&self, off: u64, len: usize) -> impl Iterator<Item = usize> + '_ {
        let pb = self.page_bytes as u64;
        let first = off / pb;
        let last = (off + len as u64 - 1) / pb;
        let n = self.slots.len() as u64;
        (first..=last).map(move |s| (s % n) as usize)
    }

    /// Probe whether `len` bytes can be appended at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or cannot fit in the buffer at all.
    pub fn probe(&self, len: usize) -> AppendProbe {
        assert!(len > 0, "zero-length append");
        assert!(
            len <= (self.slots.len() - 1) * self.page_bytes,
            "entry of {len} bytes can never fit"
        );
        // The cursor's own slot may hold live bytes of entries appended
        // earlier this lap — but only if the cursor is strictly inside the
        // slot (something was already written there this lap). At an exact
        // slot boundary, any live bytes are previous-lap data and block.
        let mut exempt_first = !self.cursor.is_multiple_of(self.page_bytes as u64);
        for slot in self.covering(self.cursor, len) {
            match self.slots[slot] {
                SlotState::Unmapped => return AppendProbe::NeedFrame { slot },
                SlotState::Mapped { live_bytes, .. } => {
                    if !exempt_first && live_bytes > 0 {
                        return AppendProbe::Blocked { slot };
                    }
                }
            }
            exempt_first = false;
        }
        AppendProbe::Ready
    }

    /// Append `len` bytes, returning their absolute start offset. The
    /// bytes are *reserved* (and should then be written via
    /// [`CircBuf::write_bytes`] and made live via [`CircBuf::add_live`]).
    ///
    /// # Panics
    ///
    /// Panics if [`CircBuf::probe`] would not return `Ready`.
    pub fn append(&mut self, len: usize) -> u64 {
        match self.probe(len) {
            AppendProbe::Ready => {}
            other => panic!("append of {len} not ready: {other:?}"),
        }
        let start = self.cursor;
        self.cursor += len as u64;
        start
    }

    /// Map `frame` at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already mapped.
    pub fn map_slot(&mut self, slot: usize, frame: FrameId) {
        assert!(
            matches!(self.slots[slot], SlotState::Unmapped),
            "slot {slot} already mapped"
        );
        self.slots[slot] = SlotState::Mapped {
            frame,
            live_bytes: 0,
        };
        self.mapped += 1;
    }

    /// Unmap `slot`, returning its frame. Only legal when the slot has no
    /// live bytes and is not the cursor's slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is unmapped, has live data, or holds the cursor.
    pub fn unmap_slot(&mut self, slot: usize) -> FrameId {
        assert_ne!(
            slot,
            self.slot_of(self.cursor),
            "cannot unmap the cursor slot"
        );
        match self.slots[slot] {
            SlotState::Mapped { frame, live_bytes } => {
                assert_eq!(live_bytes, 0, "unmap of slot {slot} with live data");
                self.slots[slot] = SlotState::Unmapped;
                self.mapped -= 1;
                frame
            }
            SlotState::Unmapped => panic!("unmap of unmapped slot {slot}"),
        }
    }

    /// Unmap the cursor's own slot. Only legal when the buffer holds no
    /// live bytes at all — used when the cache shrinks to nothing.
    ///
    /// # Panics
    ///
    /// Panics if any live bytes remain or the slot is unmapped.
    pub fn unmap_cursor_slot_when_empty(&mut self) -> FrameId {
        assert_eq!(self.total_live_bytes(), 0, "buffer not empty");
        let slot = self.slot_of(self.cursor);
        match self.slots[slot] {
            SlotState::Mapped { frame, live_bytes } => {
                assert_eq!(live_bytes, 0);
                self.slots[slot] = SlotState::Unmapped;
                self.mapped -= 1;
                frame
            }
            SlotState::Unmapped => panic!("cursor slot not mapped"),
        }
    }

    /// A mapped slot with no live bytes that is not the cursor slot —
    /// a donor for remapping or release. Prefers the slot furthest behind
    /// the cursor (the "oldest end").
    pub fn reclaimable_slot(&self) -> Option<usize> {
        let cursor_slot = self.slot_of(self.cursor);
        let n = self.slots.len();
        // Walk forward from just past the cursor slot: in circular order
        // that is the oldest region first.
        (1..n)
            .map(|d| (cursor_slot + d) % n)
            .find(|&s| matches!(self.slots[s], SlotState::Mapped { live_bytes: 0, .. }))
    }

    /// Account `len` bytes at `start` as live.
    pub fn add_live(&mut self, start: u64, len: usize) {
        self.adjust_live(start, len, true);
    }

    /// Account `len` bytes at `start` as dead (entry dropped/superseded).
    pub fn sub_live(&mut self, start: u64, len: usize) {
        self.adjust_live(start, len, false);
    }

    fn adjust_live(&mut self, start: u64, len: usize, add: bool) {
        let pb = self.page_bytes as u64;
        let mut off = start;
        let end = start + len as u64;
        while off < end {
            let slot = self.slot_of(off);
            let in_slot = (pb - off % pb).min(end - off) as u32;
            match &mut self.slots[slot] {
                SlotState::Mapped { live_bytes, .. } => {
                    if add {
                        *live_bytes += in_slot;
                        assert!(*live_bytes <= pb as u32, "slot {slot} over-committed");
                    } else {
                        *live_bytes = live_bytes
                            .checked_sub(in_slot)
                            .unwrap_or_else(|| panic!("slot {slot} live underflow"));
                    }
                }
                SlotState::Unmapped => panic!("live accounting on unmapped slot {slot}"),
            }
            off += in_slot as u64;
        }
    }

    /// Scatter `data` into the mapped frames at absolute offset `start`.
    ///
    /// # Panics
    ///
    /// Panics if any covered slot is unmapped.
    pub fn write_bytes(&self, pool: &mut FramePool, start: u64, data: &[u8]) {
        let pb = self.page_bytes as u64;
        let mut off = start;
        let mut written = 0usize;
        while written < data.len() {
            let slot = self.slot_of(off);
            let frame = match self.slots[slot] {
                SlotState::Mapped { frame, .. } => frame,
                SlotState::Unmapped => panic!("write through unmapped slot {slot}"),
            };
            let in_frame_off = (off % pb) as usize;
            let chunk = (pb as usize - in_frame_off).min(data.len() - written);
            pool.data_mut(frame)[in_frame_off..in_frame_off + chunk]
                .copy_from_slice(&data[written..written + chunk]);
            written += chunk;
            off += chunk as u64;
        }
    }

    /// Gather `out.len()` bytes from the mapped frames at `start`.
    ///
    /// # Panics
    ///
    /// Panics if any covered slot is unmapped.
    pub fn read_bytes(&self, pool: &FramePool, start: u64, out: &mut [u8]) {
        let pb = self.page_bytes as u64;
        let mut off = start;
        let mut read = 0usize;
        while read < out.len() {
            let slot = self.slot_of(off);
            let frame = match self.slots[slot] {
                SlotState::Mapped { frame, .. } => frame,
                SlotState::Unmapped => panic!("read through unmapped slot {slot}"),
            };
            let in_frame_off = (off % pb) as usize;
            let chunk = (pb as usize - in_frame_off).min(out.len() - read);
            out[read..read + chunk]
                .copy_from_slice(&pool.data(frame)[in_frame_off..in_frame_off + chunk]);
            read += chunk;
            off += chunk as u64;
        }
    }

    /// Total live bytes across all slots (diagnostics/invariants).
    pub fn total_live_bytes(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| match s {
                SlotState::Mapped { live_bytes, .. } => *live_bytes as u64,
                SlotState::Unmapped => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mem::FrameOwner;

    fn pool(n: usize) -> FramePool {
        FramePool::new(n, 64)
    }

    fn buf(slots: usize) -> CircBuf {
        CircBuf::new(slots, 64)
    }

    fn map_next(b: &mut CircBuf, p: &mut FramePool, slot: usize) -> FrameId {
        let f = p
            .alloc(FrameOwner::CompressionCache { tag: slot as u64 })
            .unwrap();
        b.map_slot(slot, f);
        f
    }

    #[test]
    fn probe_demands_frames_lazily() {
        let mut b = buf(4);
        let mut p = pool(4);
        assert_eq!(b.probe(10), AppendProbe::NeedFrame { slot: 0 });
        map_next(&mut b, &mut p, 0);
        assert_eq!(b.probe(10), AppendProbe::Ready);
        let s = b.append(10);
        assert_eq!(s, 0);
        // An append spanning into slot 1 needs slot 1 mapped.
        assert_eq!(b.probe(60), AppendProbe::NeedFrame { slot: 1 });
        map_next(&mut b, &mut p, 1);
        assert_eq!(b.probe(60), AppendProbe::Ready);
    }

    #[test]
    fn spanning_append_and_io_roundtrip() {
        let mut b = buf(4);
        let mut p = pool(4);
        map_next(&mut b, &mut p, 0);
        map_next(&mut b, &mut p, 1);
        let start = b.append(100); // spans slots 0 and 1
        let data: Vec<u8> = (0..100u8).collect();
        b.write_bytes(&mut p, start, &data);
        b.add_live(start, 100);
        let mut out = vec![0u8; 100];
        b.read_bytes(&p, start, &mut out);
        assert_eq!(out, data);
        match (b.slot(0), b.slot(1)) {
            (SlotState::Mapped { live_bytes: a, .. }, SlotState::Mapped { live_bytes: c, .. }) => {
                assert_eq!(a, 64);
                assert_eq!(c, 36);
            }
            _ => panic!("slots should be mapped"),
        }
    }

    #[test]
    fn wrap_blocks_on_previous_lap_live_data() {
        let mut b = buf(3);
        let mut p = pool(3);
        for s in 0..3 {
            map_next(&mut b, &mut p, s);
        }
        // Fill slots 0..3 with one live entry each.
        let e0 = b.append(64);
        b.add_live(e0, 64);
        let e1 = b.append(64);
        b.add_live(e1, 64);
        let e2 = b.append(64);
        b.add_live(e2, 64);
        // Cursor is back at slot 0 (wrapped); previous-lap data blocks.
        assert_eq!(b.slot_of(b.cursor()), 0);
        assert_eq!(b.probe(10), AppendProbe::Blocked { slot: 0 });
        // Dropping the oldest entry unblocks slot 0 but slot 1 still
        // blocks a spanning append.
        b.sub_live(e0, 64);
        assert_eq!(b.probe(10), AppendProbe::Ready);
        assert_eq!(b.probe(65), AppendProbe::Blocked { slot: 1 });
    }

    #[test]
    fn cursor_slot_live_bytes_do_not_block() {
        let mut b = buf(2);
        let mut p = pool(2);
        map_next(&mut b, &mut p, 0);
        let e = b.append(10);
        b.add_live(e, 10);
        // Cursor is mid-slot-0 with live bytes before it — still Ready.
        assert_eq!(b.probe(10), AppendProbe::Ready);
    }

    #[test]
    fn reclaimable_prefers_oldest() {
        let mut b = buf(4);
        let mut p = pool(4);
        for s in 0..3 {
            map_next(&mut b, &mut p, s);
        }
        let e0 = b.append(64);
        b.add_live(e0, 64);
        let e1 = b.append(64);
        b.add_live(e1, 64);
        // Cursor now at slot 2. Kill entry 0 and 1.
        b.sub_live(e0, 64);
        b.sub_live(e1, 64);
        // Oldest-first: from cursor slot 2, scanning 3, 0, 1 — slot 3 is
        // unmapped, so slot 0 is the first reclaimable.
        assert_eq!(b.reclaimable_slot(), Some(0));
        let f = b.unmap_slot(0);
        p.free(f);
        assert_eq!(b.reclaimable_slot(), Some(1));
        assert_eq!(b.mapped_frames(), 2);
    }

    #[test]
    fn unmap_refuses_cursor_slot() {
        let mut b = buf(2);
        let mut p = pool(2);
        map_next(&mut b, &mut p, 0);
        // Cursor sits in slot 0 with zero live bytes; still not unmappable.
        assert_eq!(b.reclaimable_slot(), None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = b.clone();
            b2.unmap_slot(0)
        }));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "live underflow")]
    fn double_sub_live_panics() {
        let mut b = buf(2);
        let mut p = pool(2);
        map_next(&mut b, &mut p, 0);
        let e = b.append(10);
        b.add_live(e, 10);
        b.sub_live(e, 10);
        b.sub_live(e, 10);
    }

    #[test]
    fn total_live_tracks_adds_and_subs() {
        let mut b = buf(4);
        let mut p = pool(4);
        map_next(&mut b, &mut p, 0);
        map_next(&mut b, &mut p, 1);
        let a = b.append(50);
        b.add_live(a, 50);
        let c = b.append(30);
        b.add_live(c, 30);
        assert_eq!(b.total_live_bytes(), 80);
        b.sub_live(a, 50);
        assert_eq!(b.total_live_bytes(), 30);
    }
}
