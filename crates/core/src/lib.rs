//! The compression cache — the paper's primary contribution.
//!
//! This crate implements the mechanism described in §4 of Douglis 1993:
//! a variable-sized region of physical memory holding VM pages in
//! compressed form, sitting between uncompressed memory and the backing
//! store. The design follows the paper closely:
//!
//! - **Circular buffer layout** (§4.2, Figure 2): physical frames are
//!   mapped one after another into a (virtual) address range; compressed
//!   pages are appended at the cursor, each preceded by a 36-byte header,
//!   and may span frame boundaries. Frames are reclaimed from the oldest
//!   end — or from the middle when no clean data is available at the
//!   oldest end. See [`circ`].
//! - **Page states** `clean / dirty / free / new` emerge from per-entry
//!   dirtiness plus per-slot live-byte accounting.
//! - **Cleaner** (§4.2): the oldest dirty compressed pages are written to
//!   backing store in batched, fragment-padded runs (1 KB fragments,
//!   32 KB batches, §4.3) so that frames stay reclaimable. Writes are
//!   asynchronous; reclaiming a frame whose data is still in flight stalls
//!   until the write completes, which is exactly the cost the paper's
//!   clean-page pool exists to hide.
//! - **Backing-store interface** (§4.3): because compressed pages lose the
//!   fixed page-to-block mapping, [`swap`] keeps an explicit location map,
//!   garbage-collects superseded fragments, and (optionally) forbids pages
//!   from spanning file-block boundaries. Space is organized in 32 KB
//!   *clusters*; when no free cluster remains, a log-cleaner moves the
//!   live pages out of the emptiest cluster.
//! - **4:3 threshold** (§5.2): pages that compress poorly are not kept
//!   compressed; the wasted compression effort is reported so the
//!   simulator can charge it.
//! - **Overhead accounting** (§4.4): [`overhead`] reproduces the paper's
//!   memory-overhead arithmetic (8 B/page page-table extension, 8 B/slot
//!   descriptor, 24 B frame headers, 36 B entry headers, the LZRW1 hash
//!   table, and the 22 KB of extra kernel code).
//!
//! Policy — *when* to grow or shrink the cache relative to VM pages and
//! the file cache — deliberately lives one level up (`cc-sim`); this crate
//! provides the mechanism and reports every byte and every stall so the
//! policy layer can charge costs honestly.
//!
//! Besides the simulator-facing mechanism, [`store`] packages the same
//! idea as a standalone, thread-safe library (a zram/zswap-shaped API with
//! a real background spill thread) usable outside the reproduction, and
//! [`medium`] abstracts its spill backing behind a positioned-I/O trait
//! with a deterministic fault injector for chaos testing — checksummed
//! extents, bounded retry, and degraded-mode operation are part of the
//! store's contract, not an afterthought.

#![warn(missing_docs)]

pub mod backing;
pub mod cache;
pub mod circ;
pub mod config;
pub mod medium;
pub mod overhead;
pub mod persist;
pub mod store;
pub mod swap;
pub mod tier;

pub use backing::{BackingStore, MemBacking};
pub use cache::{CleanEvictOutcome, CompressionCache, CoreStats, FaultOutcome, InsertOutcome};
pub use config::CacheConfig;
pub use medium::{
    CrashSwitch, Fault, FaultInjector, FaultPlan, FileMedium, InjectedFaults, MemMedium,
    SpillMedium,
};
pub use overhead::OverheadReport;
pub use persist::{RecoverError, RecoveryCounts};
pub use store::{CompressedStore, StoreConfig, StoreError, StoreStats};
pub use swap::{SwapInfo, SwapLoc, SwapSpace};
pub use tier::{
    CompressAll, PaperThreshold, PlacementQuery, RecencyCompressibility, TierDecision, TierPolicy,
};

/// Identity of a virtual page, as the cache sees it.
///
/// This mirrors `cc_vm::VPage` without depending on the VM crate: the
/// cache is usable as a standalone compressed-page store keyed by any
/// `(u32, u32)` identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Segment / object identifier.
    pub seg: u32,
    /// Page index within the segment.
    pub page: u32,
}

impl PageKey {
    /// Pack into a u64 (stable ordering, used for deterministic maps).
    pub fn as_u64(self) -> u64 {
        ((self.seg as u64) << 32) | self.page as u64
    }
}
