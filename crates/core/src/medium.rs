//! The spill medium: the store's abstraction over its backing file, plus
//! a deterministic fault injector for chaos testing.
//!
//! §4.3's backing-store interface is the fragile seam of the design: once
//! pages leave the compression cache the fixed page↔block mapping is
//! gone, and correctness rests entirely on the location map — so the
//! medium must be allowed to *lie*. [`SpillMedium`] is the narrow
//! positioned-I/O surface the store's spill writer and readers use;
//! [`FileMedium`] is the real file, and [`FaultInjector`] wraps any
//! medium with a seeded, replayable schedule of the failures real disks
//! exhibit: transient EIO on read or write, short (torn) writes, bit-flip
//! corruption of read data, latency spikes, and scheduled write outages.
//!
//! Every fault decision is a pure function of the injector's seed and the
//! operation's global index, so a failing chaos run replays exactly by
//! seed. Explicit per-operation scripts override the probabilistic plan
//! for tests that need a fault at a precise moment.
//!
//! Power loss is the one fault that isn't per-operation: a crash cuts the
//! *byte stream* — everything written before byte N is on the platter,
//! nothing after is, and the victim process never sees an error.
//! [`CrashSwitch`] models exactly that: a cumulative byte counter shared
//! by every injector attached to it (so the data file and its journal die
//! at the same wall-clock instant), silently swallowing all bytes past
//! the cut, optionally scribbling over the torn sector. Arm it at a byte
//! offset recorded from a previous run and the crash replays exactly.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Positioned I/O over the spill medium. All methods take `&self`: one
/// medium is shared by the writer thread and every reader, and
/// implementations must be safe under that concurrency (the real file
/// uses `pread`/`pwrite`).
pub trait SpillMedium: Send + Sync + 'static {
    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
    /// Write all of `data` at `offset`. A failure may leave a prefix of
    /// the data on the medium (a torn write); callers must treat the
    /// whole write as failed.
    fn write_at(&self, data: &[u8], offset: u64) -> io::Result<()>;
    /// Flush buffered writes to the medium.
    fn flush(&self) -> io::Result<()>;
    /// Truncate (or extend) the medium to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
}

/// The real spill file, using positioned I/O so concurrent readers and
/// the writer thread never contend on a seek cursor.
pub struct FileMedium {
    file: File,
}

impl FileMedium {
    /// Create (truncating) the spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FileMedium> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(FileMedium { file })
    }

    /// Open an existing spill file at `path` without truncating it —
    /// the warm-restart entry point (creates an empty file if absent).
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileMedium> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(FileMedium { file })
    }

    /// Wrap an already-open file (must be readable and writable).
    pub fn from_file(file: File) -> FileMedium {
        FileMedium { file }
    }
}

/// A shared in-memory medium: a growable byte buffer behind a mutex.
/// Clones share the same bytes, which is what crash/recovery tests need —
/// "reopen the same disk" is just another clone of the handle.
#[derive(Clone, Default)]
pub struct MemMedium {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemMedium {
    /// An empty in-memory medium.
    pub fn new() -> MemMedium {
        MemMedium::default()
    }

    /// Another handle on the same bytes.
    pub fn share(&self) -> MemMedium {
        self.clone()
    }

    /// Current size of the medium in bytes.
    pub fn len(&self) -> usize {
        self.data.lock().expect("mem medium poisoned").len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpillMedium for MemMedium {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let data = self.data.lock().expect("mem medium poisoned");
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "past end"));
        }
        buf.copy_from_slice(&data[start..end]);
        Ok(())
    }

    fn write_at(&self, src: &[u8], offset: u64) -> io::Result<()> {
        let mut data = self.data.lock().expect("mem medium poisoned");
        let end = offset as usize + src.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(src);
        Ok(())
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.data
            .lock()
            .expect("mem medium poisoned")
            .resize(len as usize, 0);
        Ok(())
    }
}

/// The power-loss model: a cumulative byte-stream cut shared by every
/// medium attached to it.
///
/// Each write claims its range of the shared stream; bytes at or past
/// the cut position are silently dropped (the caller sees success — a
/// dying machine reports nothing), a write straddling the cut lands only
/// its prefix, and `flush`/`set_len` after the cut are swallowed. With
/// `tear`, the sector the cut lands in gets scribbled past the cut
/// point, modelling a drive that corrupts the in-flight sector instead
/// of cutting cleanly — the case checksums exist for.
///
/// Share one switch between the data-file injector and the journal
/// injector so both "lose power" at the same instant, in wall-clock
/// write order.
pub struct CrashSwitch {
    written: AtomicU64,
    /// Cut position in the cumulative stream; `u64::MAX` = not armed.
    cut: AtomicU64,
    tear: AtomicBool,
}

/// Sector size used by [`CrashSwitch`] tear scribbling.
const TEAR_SECTOR: u64 = 512;

impl CrashSwitch {
    /// A switch that is not armed: writes pass through but are counted,
    /// so a later run can replay a cut at any observed position.
    pub fn new() -> Arc<CrashSwitch> {
        Arc::new(CrashSwitch {
            written: AtomicU64::new(0),
            cut: AtomicU64::new(u64::MAX),
            tear: AtomicBool::new(false),
        })
    }

    /// A switch armed to cut the stream at byte `at`.
    pub fn armed(at: u64, tear: bool) -> Arc<CrashSwitch> {
        let s = CrashSwitch::new();
        s.cut.store(at, Ordering::SeqCst);
        s.tear.store(tear, Ordering::SeqCst);
        s
    }

    /// Arm (or re-arm) the cut at byte `at` of the cumulative stream.
    pub fn arm(&self, at: u64, tear: bool) {
        self.tear.store(tear, Ordering::SeqCst);
        self.cut.store(at, Ordering::SeqCst);
    }

    /// Cut immediately: nothing written from this instant persists.
    pub fn cut_now(&self) {
        self.cut
            .store(self.written.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Total bytes offered to the stream so far (including dropped
    /// ones) — the coordinate space `arm` positions are in.
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// Whether the stream has reached (or passed) the cut.
    pub fn is_cut(&self) -> bool {
        self.written.load(Ordering::SeqCst) >= self.cut.load(Ordering::SeqCst)
    }

    /// Claim `len` bytes of the stream. Returns how many of them land
    /// on the medium (the rest vanish).
    fn claim(&self, len: u64) -> u64 {
        let start = self.written.fetch_add(len, Ordering::SeqCst);
        let cut = self.cut.load(Ordering::SeqCst);
        if start >= cut {
            0
        } else {
            len.min(cut - start)
        }
    }
}

impl std::fmt::Debug for CrashSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashSwitch")
            .field("written", &self.bytes_written())
            .field("cut", &self.cut.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(unix)]
impl SpillMedium for FileMedium {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::write_all_at(&self.file, data, offset)
    }

    fn flush(&self) -> io::Result<()> {
        // `File::flush` is a no-op for OS-buffered files; sync_data is
        // the honest durability point but costs an fsync per batch.
        // Match the previous writer's contract: hand bytes to the OS.
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

#[cfg(not(unix))]
impl SpillMedium for FileMedium {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// A fault the injector can impose on one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The read fails with EIO; the medium is untouched.
    ReadError,
    /// The read "succeeds" but one bit of the returned data is flipped
    /// (the medium itself is untouched — a transient transfer error).
    ReadCorrupt,
    /// The write fails with EIO before writing anything.
    WriteError,
    /// A torn write: a prefix of the data lands, then EIO.
    ShortWrite,
    /// The operation completes normally after a latency spike.
    Delay,
}

/// A seeded, replayable fault schedule. Rates are expressed as "one in
/// N operations" (`0` disables a fault class); which operations fault is
/// a pure function of `seed` and the operation's index, so a run replays
/// exactly. `script` pins specific operation indices to specific faults
/// (taking precedence over the rates), and `write_outage` hard-fails
/// every write whose *write index* falls in the window — the tool for
/// forcing the store through its degraded-mode transition on schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the per-operation fault decisions.
    pub seed: u64,
    /// One in N reads fails with EIO.
    pub read_error_1_in: u64,
    /// One in N reads returns data with one bit flipped.
    pub read_corrupt_1_in: u64,
    /// One in N writes fails with EIO.
    pub write_error_1_in: u64,
    /// One in N writes is torn: a prefix lands, then EIO.
    pub short_write_1_in: u64,
    /// One in N operations sleeps `delay` before proceeding.
    pub delay_1_in: u64,
    /// The latency spike applied by [`Fault::Delay`].
    pub delay: Duration,
    /// Write indices (counting only writes, from 0) that hard-fail.
    pub write_outage: Option<std::ops::Range<u64>>,
    /// Explicit `(global operation index, fault)` overrides.
    pub script: Vec<(u64, Fault)>,
    /// Power loss: silently persist nothing past byte N of the
    /// cumulative write stream (the caller still sees success). To cut
    /// several media at one shared instant, build the injectors with
    /// [`FaultInjector::with_switch`] instead.
    pub crash_after_bytes: Option<u64>,
    /// When the crash cut lands mid-write, scribble over the rest of
    /// the torn sector instead of cutting cleanly.
    pub crash_tear: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a counting passthrough).
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }
}

/// Counts of faults actually injected, for test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Reads failed with EIO.
    pub read_errors: u64,
    /// Reads returned with a flipped bit.
    pub read_corruptions: u64,
    /// Writes failed with EIO (including outage-window failures).
    pub write_errors: u64,
    /// Writes torn after a prefix.
    pub short_writes: u64,
    /// Latency spikes imposed.
    pub delays: u64,
    /// Writes fully or partially swallowed by a crash cut.
    pub crash_cut_writes: u64,
}

impl InjectedFaults {
    /// Total faults of every class.
    pub fn total(&self) -> u64 {
        self.read_errors + self.read_corruptions + self.write_errors + self.short_writes
    }
}

/// Deterministic fault-injecting wrapper around another [`SpillMedium`].
pub struct FaultInjector<M> {
    inner: M,
    plan: FaultPlan,
    script: HashMap<u64, Fault>,
    switch: Option<Arc<CrashSwitch>>,
    ops: AtomicU64,
    writes: AtomicU64,
    read_errors: AtomicU64,
    read_corruptions: AtomicU64,
    write_errors: AtomicU64,
    short_writes: AtomicU64,
    delays: AtomicU64,
    crash_cut_writes: AtomicU64,
}

/// splitmix64 finalizer: the per-operation decision hash.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn one_in(h: u64, n: u64) -> bool {
    n != 0 && h.is_multiple_of(n)
}

impl<M: SpillMedium> FaultInjector<M> {
    /// Wrap `inner` with `plan`. If the plan arms a crash cut, the
    /// injector gets its own private [`CrashSwitch`].
    pub fn new(inner: M, plan: FaultPlan) -> FaultInjector<M> {
        let switch = plan
            .crash_after_bytes
            .map(|at| CrashSwitch::armed(at, plan.crash_tear));
        Self::build(inner, plan, switch)
    }

    /// Wrap `inner` with `plan` and a shared [`CrashSwitch`], so several
    /// media (a data file and its journal) lose power at the same
    /// instant of the combined write stream.
    pub fn with_switch(inner: M, plan: FaultPlan, switch: Arc<CrashSwitch>) -> FaultInjector<M> {
        Self::build(inner, plan, Some(switch))
    }

    fn build(inner: M, plan: FaultPlan, switch: Option<Arc<CrashSwitch>>) -> FaultInjector<M> {
        let script = plan.script.iter().copied().collect();
        FaultInjector {
            inner,
            plan,
            script,
            switch,
            ops: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            read_corruptions: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            crash_cut_writes: AtomicU64::new(0),
        }
    }

    /// The crash switch governing this injector, if any.
    pub fn switch(&self) -> Option<&Arc<CrashSwitch>> {
        self.switch.as_ref()
    }

    /// Faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            read_errors: self.read_errors.load(Ordering::Relaxed),
            read_corruptions: self.read_corruptions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            crash_cut_writes: self.crash_cut_writes.load(Ordering::Relaxed),
        }
    }

    /// Operations (reads + writes) observed so far.
    pub fn operations(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Route a write through the crash switch. `Some(n)` means the
    /// switch claimed the write and only the first `n` bytes (possibly
    /// zero, possibly with a torn sector) may land; `None` means no
    /// switch governs this injector.
    fn crash_cut(&self, data: &[u8], offset: u64) -> Option<io::Result<()>> {
        let switch = self.switch.as_ref()?;
        let keep = switch.claim(data.len() as u64);
        if keep >= data.len() as u64 {
            return None; // Entirely before the cut: write normally.
        }
        self.crash_cut_writes.fetch_add(1, Ordering::Relaxed);
        if keep > 0 {
            // The prefix made it to the platter before power died.
            let _ = self.inner.write_at(&data[..keep as usize], offset);
        }
        if switch.tear.load(Ordering::SeqCst) && keep > 0 {
            // Scribble the rest of the in-flight sector: a drive that
            // doesn't cut cleanly leaves garbage the CRC must catch.
            let sector_end = (keep.div_ceil(TEAR_SECTOR) * TEAR_SECTOR).min(data.len() as u64);
            if sector_end > keep {
                let garbage: Vec<u8> = data[keep as usize..sector_end as usize]
                    .iter()
                    .map(|b| b ^ 0xA5)
                    .collect();
                let _ = self.inner.write_at(&garbage, offset + keep);
            }
        }
        // The dying machine reports nothing: the caller sees success.
        Some(Ok(()))
    }

    fn decide(&self, idx: u64, read: bool) -> Option<Fault> {
        if let Some(&f) = self.script.get(&idx) {
            return Some(f);
        }
        let h = mix(self.plan.seed ^ idx);
        // Distinct decision streams per class so rates are independent.
        if read {
            if one_in(mix(h ^ 1), self.plan.read_error_1_in) {
                return Some(Fault::ReadError);
            }
            if one_in(mix(h ^ 2), self.plan.read_corrupt_1_in) {
                return Some(Fault::ReadCorrupt);
            }
        } else {
            if one_in(mix(h ^ 3), self.plan.write_error_1_in) {
                return Some(Fault::WriteError);
            }
            if one_in(mix(h ^ 4), self.plan.short_write_1_in) {
                return Some(Fault::ShortWrite);
            }
        }
        if one_in(mix(h ^ 5), self.plan.delay_1_in) {
            return Some(Fault::Delay);
        }
        None
    }

    fn eio(what: &str) -> io::Error {
        io::Error::other(format!("injected {what}"))
    }
}

impl<M: SpillMedium> SpillMedium for FaultInjector<M> {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        match self.decide(idx, true) {
            Some(Fault::ReadError) => {
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                Err(Self::eio("read EIO"))
            }
            Some(Fault::ReadCorrupt) => {
                self.inner.read_at(buf, offset)?;
                if !buf.is_empty() {
                    let h = mix(self.plan.seed ^ idx ^ 0xC0_44_07);
                    let bit = h as usize % (buf.len() * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                    self.read_corruptions.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            }
            Some(Fault::Delay) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.delay);
                self.inner.read_at(buf, offset)
            }
            _ => self.inner.read_at(buf, offset),
        }
    }

    fn write_at(&self, data: &[u8], offset: u64) -> io::Result<()> {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        let widx = self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(result) = self.crash_cut(data, offset) {
            return result;
        }
        if let Some(outage) = &self.plan.write_outage {
            if outage.contains(&widx) {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                return Err(Self::eio("write outage"));
            }
        }
        match self.decide(idx, false) {
            Some(Fault::WriteError) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                Err(Self::eio("write EIO"))
            }
            Some(Fault::ShortWrite) => {
                // A prefix lands on the medium, then the write "fails":
                // the torn bytes are exactly what the extent checksum
                // must catch if anything ever trusts them.
                let cut = if data.len() > 1 {
                    (mix(self.plan.seed ^ idx ^ 0x70_42) as usize % (data.len() - 1)) + 1
                } else {
                    0
                };
                if cut > 0 {
                    let _ = self.inner.write_at(&data[..cut], offset);
                }
                self.short_writes.fetch_add(1, Ordering::Relaxed);
                Err(Self::eio("short write"))
            }
            Some(Fault::Delay) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.plan.delay);
                self.inner.write_at(data, offset)
            }
            _ => self.inner.write_at(data, offset),
        }
    }

    fn flush(&self) -> io::Result<()> {
        if self.switch.as_ref().is_some_and(|s| s.is_cut()) {
            return Ok(()); // Power is out; nothing reaches the platter.
        }
        self.inner.flush()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        if self.switch.as_ref().is_some_and(|s| s.is_cut()) {
            return Ok(());
        }
        self.inner.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let m = FaultInjector::new(MemMedium::new(), FaultPlan::quiet());
        m.write_at(b"hello world", 3).unwrap();
        let mut buf = [0u8; 5];
        m.read_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(m.injected(), InjectedFaults::default());
        assert_eq!(m.operations(), 2);
    }

    #[test]
    fn scripted_faults_fire_at_exact_indices() {
        let plan = FaultPlan {
            script: vec![(0, Fault::WriteError), (2, Fault::ReadError)],
            ..FaultPlan::default()
        };
        let m = FaultInjector::new(MemMedium::new(), plan);
        assert!(m.write_at(b"x", 0).is_err()); // op 0: scripted
        m.write_at(b"x", 0).unwrap(); // op 1: clean
        let mut b = [0u8; 1];
        assert!(m.read_at(&mut b, 0).is_err()); // op 2: scripted
        m.read_at(&mut b, 0).unwrap(); // op 3: clean
        let inj = m.injected();
        assert_eq!(inj.write_errors, 1);
        assert_eq!(inj.read_errors, 1);
    }

    #[test]
    fn write_outage_window_counts_writes_only() {
        let plan = FaultPlan {
            write_outage: Some(1..3),
            ..FaultPlan::default()
        };
        let m = FaultInjector::new(MemMedium::new(), plan);
        m.write_at(b"a", 0).unwrap(); // write 0: fine
        let mut b = [0u8; 1];
        m.read_at(&mut b, 0).unwrap(); // reads never count
        assert!(m.write_at(b"b", 0).is_err()); // write 1: outage
        assert!(m.write_at(b"c", 0).is_err()); // write 2: outage
        m.write_at(b"d", 0).unwrap(); // write 3: recovered
        assert_eq!(m.injected().write_errors, 2);
        m.read_at(&mut b, 0).unwrap();
        assert_eq!(b[0], b'd');
    }

    #[test]
    fn corruption_flips_exactly_one_bit_and_is_seed_deterministic() {
        let run = |seed| {
            let plan = FaultPlan {
                seed,
                script: vec![(1, Fault::ReadCorrupt)],
                ..FaultPlan::default()
            };
            let m = FaultInjector::new(MemMedium::new(), plan);
            m.write_at(&[0u8; 64], 0).unwrap();
            let mut buf = [0u8; 64];
            m.read_at(&mut buf, 0).unwrap();
            // Exactly one bit set across the whole buffer.
            let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 1, "one flipped bit");
            // The medium itself is untouched.
            let mut again = [0u8; 64];
            m.read_at(&mut again, 0).unwrap();
            assert_eq!(again, [0u8; 64]);
            buf
        };
        assert_eq!(run(7), run(7), "same seed, same flip");
    }

    #[test]
    fn short_write_leaves_a_prefix() {
        let plan = FaultPlan {
            script: vec![(1, Fault::ShortWrite)],
            ..FaultPlan::default()
        };
        let m = FaultInjector::new(MemMedium::new(), plan);
        m.write_at(&[0xFFu8; 32], 0).unwrap(); // op 0: clean
        assert!(m.write_at(&[0xAAu8; 32], 0).is_err()); // op 1: torn
        assert_eq!(m.injected().short_writes, 1);
        let mut buf = [0u8; 32];
        m.read_at(&mut buf, 0).unwrap();
        // Some prefix is 0xAA, the rest still 0xFF — a genuinely torn
        // extent, not an atomic all-or-nothing failure.
        let torn = buf.iter().position(|&b| b == 0xFF).unwrap_or(32);
        assert!(torn >= 1, "at least one byte landed: {buf:?}");
        assert!(buf[..torn].iter().all(|&b| b == 0xAA));
        assert!(buf[torn..].iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn probabilistic_rates_are_deterministic_by_seed() {
        let count = |seed| {
            let plan = FaultPlan {
                seed,
                read_error_1_in: 4,
                ..FaultPlan::default()
            };
            let m = FaultInjector::new(MemMedium::new(), plan);
            m.write_at(&[0u8; 8], 0).unwrap();
            let mut errs = 0;
            let mut buf = [0u8; 8];
            for _ in 0..400 {
                if m.read_at(&mut buf, 0).is_err() {
                    errs += 1;
                }
            }
            errs
        };
        let a = count(42);
        assert_eq!(a, count(42), "replay must match");
        assert!(a > 40 && a < 200, "rate ~1/4 of 400: got {a}");
    }

    #[test]
    fn crash_cut_silently_drops_everything_past_byte_n() {
        let plan = FaultPlan {
            crash_after_bytes: Some(10),
            ..FaultPlan::default()
        };
        let disk = MemMedium::new();
        let m = FaultInjector::new(disk.share(), plan);
        m.write_at(&[0xAAu8; 8], 0).unwrap(); // bytes 0..8: land
        m.write_at(&[0xBBu8; 8], 8).unwrap(); // bytes 8..16: 2 land
        m.write_at(&[0xCCu8; 8], 16).unwrap(); // fully past cut, still "succeeds"
        m.flush().unwrap(); // swallowed
        m.set_len(4).unwrap(); // swallowed: must NOT shrink the platter
        assert_eq!(m.injected().crash_cut_writes, 2);
        assert!(m.switch().unwrap().is_cut());
        // Reopen the "disk": only the first 10 bytes exist.
        assert_eq!(disk.len(), 10);
        let mut buf = [0u8; 10];
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..8], &[0xAAu8; 8]);
        assert_eq!(&buf[8..], &[0xBBu8; 2]);
    }

    #[test]
    fn shared_switch_cuts_both_media_at_one_instant() {
        let switch = CrashSwitch::new();
        let data_disk = MemMedium::new();
        let map_disk = MemMedium::new();
        let data =
            FaultInjector::with_switch(data_disk.share(), FaultPlan::quiet(), switch.clone());
        let map = FaultInjector::with_switch(map_disk.share(), FaultPlan::quiet(), switch.clone());
        data.write_at(&[1u8; 4], 0).unwrap(); // stream 0..4
        map.write_at(&[2u8; 4], 0).unwrap(); // stream 4..8
        assert_eq!(switch.bytes_written(), 8);
        switch.arm(8, false); // power dies now
        data.write_at(&[3u8; 4], 4).unwrap(); // dropped
        map.write_at(&[4u8; 4], 4).unwrap(); // dropped
        assert_eq!(data_disk.len(), 4);
        assert_eq!(map_disk.len(), 4);
    }

    #[test]
    fn crash_tear_scribbles_the_torn_sector() {
        let plan = FaultPlan {
            crash_after_bytes: Some(100),
            crash_tear: true,
            ..FaultPlan::default()
        };
        let disk = MemMedium::new();
        let m = FaultInjector::new(disk.share(), plan);
        m.write_at(&[0x00u8; 256], 0).unwrap();
        assert_eq!(disk.len(), 256, "torn sector scribble extends past cut");
        let mut buf = [0u8; 256];
        disk.read_at(&mut buf, 0).unwrap();
        assert!(buf[..100].iter().all(|&b| b == 0x00), "prefix intact");
        assert!(buf[100..].iter().all(|&b| b == 0xA5), "tail scribbled");
    }

    #[test]
    fn cut_now_replays_from_recorded_byte_position() {
        // First run: no cut, record the stream position at a barrier.
        let run = |cut_at: Option<u64>| {
            let switch = CrashSwitch::new();
            if let Some(at) = cut_at {
                switch.arm(at, false);
            }
            let disk = MemMedium::new();
            let m = FaultInjector::with_switch(disk.share(), FaultPlan::quiet(), switch.clone());
            m.write_at(&[7u8; 33], 0).unwrap();
            let barrier = switch.bytes_written();
            m.write_at(&[9u8; 19], 33).unwrap();
            (disk.len(), barrier)
        };
        let (full, barrier) = run(None);
        assert_eq!(full, 52);
        let (cut, _) = run(Some(barrier));
        assert_eq!(cut, 33, "replayed cut lands exactly at the barrier");
    }
}
