//! Physical memory substrate: a pool of page frames with real contents.
//!
//! Sprite on the DECstation manages physical memory as 4 KB frames handed
//! out to three consumers — uncompressed VM pages, file-cache blocks, and
//! (with the paper's modification) the compression cache. The simulator
//! keeps *real bytes* in every frame so that compression ratios are
//! measured, not assumed; this crate owns those bytes and the accounting of
//! who holds each frame.
//!
//! The kernel's own footprint ("about 6 Mbytes are used by the kernel for
//! code, page tables, and some forms of tracing", §4) is modeled by simply
//! constructing the pool with the *user-available* frame count.

#![warn(missing_docs)]

use cc_util::Slab;

/// Index of a physical page frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

/// Which subsystem holds a frame.
///
/// The `tag` is an owner-defined identifier (e.g. a packed segment/page
/// number for VM, a cache-slot index for the compression cache); the pool
/// never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameOwner {
    /// An uncompressed virtual-memory page.
    Vm {
        /// Owner-defined identity of the VM page.
        tag: u64,
    },
    /// A file-system buffer-cache block.
    FileCache {
        /// Owner-defined identity of the cached block.
        tag: u64,
    },
    /// A frame mapped into the compression cache's circular buffer.
    CompressionCache {
        /// Slot index within the cache's virtual address range.
        tag: u64,
    },
}

impl FrameOwner {
    /// The broad class of the owner, for accounting.
    pub fn class(&self) -> OwnerClass {
        match self {
            FrameOwner::Vm { .. } => OwnerClass::Vm,
            FrameOwner::FileCache { .. } => OwnerClass::FileCache,
            FrameOwner::CompressionCache { .. } => OwnerClass::CompressionCache,
        }
    }
}

/// Accounting classes for frame ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerClass {
    /// Uncompressed VM pages.
    Vm,
    /// File buffer cache blocks.
    FileCache,
    /// Compression-cache frames.
    CompressionCache,
}

#[derive(Debug, Clone)]
struct Frame {
    owner: FrameOwner,
    data: Vec<u8>,
}

/// Per-class frame counts, for reports and the memory arbiter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCounts {
    /// Frames holding uncompressed VM pages.
    pub vm: usize,
    /// Frames holding file-cache blocks.
    pub file_cache: usize,
    /// Frames mapped into the compression cache.
    pub compression_cache: usize,
    /// Unallocated frames.
    pub free: usize,
}

impl FrameCounts {
    /// Total frames in the machine (sum of all classes).
    pub fn total(&self) -> usize {
        self.vm + self.file_cache + self.compression_cache + self.free
    }
}

/// The pool of user-available physical page frames.
///
/// # Examples
///
/// ```
/// use cc_mem::{FrameOwner, FramePool};
///
/// let mut pool = FramePool::new(4, 4096); // 16 KB machine
/// let f = pool.alloc(FrameOwner::Vm { tag: 7 }).unwrap();
/// pool.data_mut(f)[0] = 0xAB;
/// assert_eq!(pool.data(f)[0], 0xAB);
/// assert_eq!(pool.counts().vm, 1);
/// pool.free(f);
/// assert_eq!(pool.counts().free, 4);
/// ```
#[derive(Debug, Clone)]
pub struct FramePool {
    frames: Slab<Frame>,
    free: Vec<FrameId>,
    page_bytes: usize,
    total: usize,
    counts: FrameCounts,
}

impl FramePool {
    /// Create a pool of `frames` frames of `page_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(frames: usize, page_bytes: usize) -> Self {
        assert!(frames > 0 && page_bytes > 0, "empty frame pool");
        let mut pool = FramePool {
            frames: Slab::with_capacity(frames),
            free: Vec::with_capacity(frames),
            page_bytes,
            total: frames,
            counts: FrameCounts {
                free: frames,
                ..FrameCounts::default()
            },
        };
        // Pre-create all frames so FrameIds are dense [0, frames).
        for i in 0..frames {
            let key = pool.frames.insert(Frame {
                owner: FrameOwner::Vm { tag: u64::MAX },
                data: vec![0; page_bytes],
            });
            debug_assert_eq!(key, i);
        }
        // All frames start free; the sentinel owner above is never visible
        // because `owner()` is only valid for allocated frames.
        for i in (0..frames).rev() {
            pool.free.push(FrameId(i as u32));
        }
        pool
    }

    /// Convenience: a pool sized in bytes of user memory.
    pub fn with_bytes(user_bytes: usize, page_bytes: usize) -> Self {
        Self::new(user_bytes / page_bytes, page_bytes)
    }

    /// Frame size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Total number of frames (all classes).
    pub fn total_frames(&self) -> usize {
        self.total
    }

    /// Number of unallocated frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Per-class counts.
    pub fn counts(&self) -> FrameCounts {
        self.counts
    }

    /// Allocate a frame for `owner`; `None` when memory is exhausted (the
    /// caller must then evict something — that decision is the memory
    /// arbiter's, not the pool's).
    ///
    /// The frame's previous contents are *not* cleared; VM zero-fills pages
    /// on first touch explicitly, which is also where the zero-fill cost is
    /// charged.
    pub fn alloc(&mut self, owner: FrameOwner) -> Option<FrameId> {
        let id = self.free.pop()?;
        self.frames[id.0 as usize].owner = owner;
        self.counts.free -= 1;
        match owner.class() {
            OwnerClass::Vm => self.counts.vm += 1,
            OwnerClass::FileCache => self.counts.file_cache += 1,
            OwnerClass::CompressionCache => self.counts.compression_cache += 1,
        }
        Some(id)
    }

    /// Return a frame to the free pool.
    pub fn free(&mut self, id: FrameId) {
        let class = self.frames[id.0 as usize].owner.class();
        debug_assert!(!self.free.contains(&id), "double free of frame {id:?}");
        match class {
            OwnerClass::Vm => self.counts.vm -= 1,
            OwnerClass::FileCache => self.counts.file_cache -= 1,
            OwnerClass::CompressionCache => self.counts.compression_cache -= 1,
        }
        self.counts.free += 1;
        self.free.push(id);
    }

    /// The current owner of an allocated frame.
    pub fn owner(&self, id: FrameId) -> FrameOwner {
        self.frames[id.0 as usize].owner
    }

    /// Re-tag a frame without moving its data (e.g. when a VM page changes
    /// identity on copy-on-write, or a cache slot is renumbered).
    pub fn set_owner(&mut self, id: FrameId, owner: FrameOwner) {
        let old = self.frames[id.0 as usize].owner.class();
        let new = owner.class();
        if old != new {
            match old {
                OwnerClass::Vm => self.counts.vm -= 1,
                OwnerClass::FileCache => self.counts.file_cache -= 1,
                OwnerClass::CompressionCache => self.counts.compression_cache -= 1,
            }
            match new {
                OwnerClass::Vm => self.counts.vm += 1,
                OwnerClass::FileCache => self.counts.file_cache += 1,
                OwnerClass::CompressionCache => self.counts.compression_cache += 1,
            }
        }
        self.frames[id.0 as usize].owner = owner;
    }

    /// Shared access to a frame's bytes.
    pub fn data(&self, id: FrameId) -> &[u8] {
        &self.frames[id.0 as usize].data
    }

    /// Exclusive access to a frame's bytes.
    pub fn data_mut(&mut self, id: FrameId) -> &mut [u8] {
        &mut self.frames[id.0 as usize].data
    }

    /// Zero a frame (demand-zero fill).
    pub fn zero(&mut self, id: FrameId) {
        self.frames[id.0 as usize].data.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let mut p = FramePool::new(3, 64);
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(p.alloc(FrameOwner::Vm { tag: i }).unwrap());
        }
        assert!(p.alloc(FrameOwner::Vm { tag: 9 }).is_none());
        assert_eq!(p.counts().vm, 3);
        assert_eq!(p.counts().free, 0);
        p.free(ids[1]);
        assert!(p.alloc(FrameOwner::FileCache { tag: 0 }).is_some());
        assert_eq!(p.counts().file_cache, 1);
    }

    #[test]
    fn counts_balance() {
        let mut p = FramePool::new(10, 64);
        let a = p.alloc(FrameOwner::Vm { tag: 1 }).unwrap();
        let b = p.alloc(FrameOwner::CompressionCache { tag: 2 }).unwrap();
        let _c = p.alloc(FrameOwner::FileCache { tag: 3 }).unwrap();
        let c = p.counts();
        assert_eq!(c.total(), 10);
        assert_eq!(
            (c.vm, c.file_cache, c.compression_cache, c.free),
            (1, 1, 1, 7)
        );
        p.free(a);
        p.free(b);
        let c = p.counts();
        assert_eq!(c.total(), 10);
        assert_eq!(c.free, 9);
    }

    #[test]
    fn data_persists_across_owner_change() {
        let mut p = FramePool::new(1, 16);
        let f = p.alloc(FrameOwner::Vm { tag: 0 }).unwrap();
        p.data_mut(f).copy_from_slice(&[9u8; 16]);
        p.set_owner(f, FrameOwner::CompressionCache { tag: 5 });
        assert_eq!(p.data(f), &[9u8; 16]);
        assert_eq!(p.counts().compression_cache, 1);
        assert_eq!(p.counts().vm, 0);
        assert_eq!(p.owner(f), FrameOwner::CompressionCache { tag: 5 });
    }

    #[test]
    fn zero_fill() {
        let mut p = FramePool::new(1, 32);
        let f = p.alloc(FrameOwner::Vm { tag: 0 }).unwrap();
        p.data_mut(f).fill(0xFF);
        p.zero(f);
        assert!(p.data(f).iter().all(|&b| b == 0));
    }

    #[test]
    fn with_bytes_divides() {
        let p = FramePool::with_bytes(14 * 1024 * 1024, 4096);
        assert_eq!(p.total_frames(), 3584);
        assert_eq!(p.page_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "empty frame pool")]
    fn zero_frames_panics() {
        FramePool::new(0, 4096);
    }
}
