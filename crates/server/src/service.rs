//! Request dispatch over the store, plus the server's wire telemetry.
//!
//! One [`Service`] is shared by the accept loop and every worker. It
//! owns a [`cc_telemetry::Telemetry`] instance built from the same
//! striped-counter / latency-histogram / event-ring types the store
//! uses, striped per worker so request counting never contends. STATS
//! responses concatenate the store's Prometheus snapshot (prefix
//! `cc_store`) with the server's own (prefix `cc_server`), both rendered
//! by [`cc_telemetry::Snapshot::to_prometheus`] — the exact schema the
//! [`cc_telemetry::Exporter`] emits, so a scraper cannot tell the
//! difference.

use crate::proto::{Opcode, Request, Status};
use cc_core::store::{CompressedStore, StoreError};
use cc_telemetry::trace::{sop, tier, Span, TraceCtx, Tracer};
use cc_telemetry::{Snapshot, Telemetry, TelemetrySpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Wire-level counter indices (striped per worker).
pub mod wstat {
    /// PUT requests executed.
    pub const REQ_PUT: usize = 0;
    /// GET requests executed.
    pub const REQ_GET: usize = 1;
    /// DEL requests executed.
    pub const REQ_DEL: usize = 2;
    /// FLUSH requests executed.
    pub const REQ_FLUSH: usize = 3;
    /// STATS requests executed.
    pub const REQ_STATS: usize = 4;
    /// PING requests executed.
    pub const REQ_PING: usize = 5;
    /// Connections rejected with BUSY by the saturated pool.
    pub const BUSY_REJECTED: usize = 6;
    /// Frames that failed framing or protocol decoding.
    pub const MALFORMED_FRAMES: usize = 7;
    /// Connections a worker started serving.
    pub const CONNS_OPENED: usize = 8;
    /// Connections closed (any reason).
    pub const CONNS_CLOSED: usize = 9;
    /// Connections closed by the idle timeout.
    pub const IDLE_TIMEOUTS: usize = 10;
    /// DUMP requests executed.
    pub const REQ_DUMP: usize = 11;
    /// Counter name table, index-aligned with the constants above.
    pub const NAMES: &[&str] = &[
        "req_put",
        "req_get",
        "req_del",
        "req_flush",
        "req_stats",
        "req_ping",
        "busy_rejected",
        "malformed_frames",
        "conns_opened",
        "conns_closed",
        "idle_timeouts",
        "req_dump",
    ];
}

/// Per-opcode latency histogram indices: `Opcode as usize - 1`.
pub mod wop {
    /// Operation name table, index-aligned with [`crate::proto::Opcode`].
    pub const NAMES: &[&str] = &["put", "get", "del", "flush", "stats", "ping", "dump"];
}

/// Wire event kinds pushed into the server's event ring.
pub mod wevent {
    /// `a` = connection id.
    pub const CONN_OPEN: usize = 0;
    /// `a` = connection id, `b` = requests served on it.
    pub const CONN_CLOSE: usize = 1;
    /// `a` = connection id rejected at admission.
    pub const BUSY: usize = 2;
    /// `a` = connection id, `b` = malformed-frame class (see
    /// [`crate::conn`]).
    pub const MALFORMED: usize = 3;
    /// Event name table.
    pub const NAMES: &[&str] = &["conn_open", "conn_close", "busy", "malformed"];
}

const SERVER_TELEMETRY: TelemetrySpec = TelemetrySpec {
    counters: wstat::NAMES,
    ops: wop::NAMES,
    events: wevent::NAMES,
};

/// Shared per-server state: the store handle, wire telemetry, and the
/// open-connection gauge.
pub struct Service {
    store: Arc<CompressedStore>,
    tel: Telemetry,
    /// Shared with the store (see [`cc_core::store::StoreConfig::with_tracer`]):
    /// wire-level spans and store spans land in the same rings, so a
    /// sampled request yields one tree from accept to spill.
    tracer: Option<Arc<Tracer>>,
    open_conns: AtomicU64,
    next_conn_id: AtomicU64,
}

impl Service {
    /// Build a service over `store` with `workers + 1` counter stripes
    /// (one per worker, one for the accept loop).
    pub fn new(store: Arc<CompressedStore>, workers: usize) -> Service {
        let tracer = store.tracer().cloned();
        Service {
            store,
            tel: Telemetry::new(SERVER_TELEMETRY, workers + 1),
            tracer,
            open_conns: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<CompressedStore> {
        &self.store
    }

    /// The request tracer inherited from the store, if tracing is on.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The server's wire telemetry (request counters, per-opcode latency
    /// histograms, connection events).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> u64 {
        self.open_conns.load(Ordering::Relaxed)
    }

    /// A snapshot of the wire telemetry with the open-connection gauge
    /// attached.
    pub fn snapshot(&self) -> Snapshot {
        self.tel
            .snapshot()
            .gauge("open_connections", self.open_connections())
    }

    /// The STATS payload: the store's Prometheus snapshot followed by
    /// the server's, schema-identical to what an
    /// [`cc_telemetry::Exporter`] in Prometheus mode writes.
    pub fn stats_text(&self) -> String {
        let mut text = self.store.telemetry_snapshot().to_prometheus("cc_store");
        text.push_str(&self.snapshot().to_prometheus("cc_server"));
        text
    }

    pub(crate) fn next_conn_id(&self) -> u64 {
        self.next_conn_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn conn_opened(&self, stripe: usize, conn_id: u64) {
        self.open_conns.fetch_add(1, Ordering::Relaxed);
        self.tel.count(stripe, wstat::CONNS_OPENED, 1);
        self.tel.event(wevent::CONN_OPEN, conn_id, 0);
    }

    pub(crate) fn conn_closed(&self, stripe: usize, conn_id: u64, requests: u64, idle: bool) {
        self.open_conns.fetch_sub(1, Ordering::Relaxed);
        self.tel.count(stripe, wstat::CONNS_CLOSED, 1);
        if idle {
            self.tel.count(stripe, wstat::IDLE_TIMEOUTS, 1);
        }
        self.tel.event(wevent::CONN_CLOSE, conn_id, requests);
    }

    pub(crate) fn busy_rejected(&self, stripe: usize, conn_id: u64) {
        self.tel.count(stripe, wstat::BUSY_REJECTED, 1);
        self.tel.event(wevent::BUSY, conn_id, 0);
    }

    pub(crate) fn malformed(&self, stripe: usize, conn_id: u64, class: u64) {
        self.tel.count(stripe, wstat::MALFORMED_FRAMES, 1);
        self.tel.event(wevent::MALFORMED, conn_id, class);
    }

    pub(crate) fn record_latency(&self, op: Opcode, ns: u64, trace: u64) {
        self.tel.record_traced(op as usize - 1, ns, trace);
    }

    /// Execute one request. The response payload is written into `out`
    /// (cleared first); the returned status plus `out` form the response
    /// body. Never panics on store errors — they become [`Status::Err`]
    /// with the error text as payload.
    ///
    /// Sampling happens here, at the wire: a sampled request gets a root
    /// `request` span (with the opcode and connection id) and its store
    /// work records child spans under it. The returned [`TraceCtx`] is
    /// that root's child context ([`TraceCtx::NONE`] when unsampled) —
    /// callers tag reply-flush spans and latency exemplars with it.
    pub(crate) fn handle(
        &self,
        stripe: usize,
        conn_id: u64,
        req: &Request<'_>,
        out: &mut Vec<u8>,
    ) -> (Status, TraceCtx) {
        out.clear();
        let tr = self.tracer.as_deref();
        let rctx = tr.map_or(TraceCtx::NONE, |t| t.sample());
        let t0 = rctx.sampled().then(Instant::now);
        let root = tr.map_or(0, |t| t.new_span(rctx));
        let ctx = rctx.child(root);
        let (counter, status) = match req {
            Request::Put { key, page } => {
                let status = match self.store.put_traced(*key, page, ctx) {
                    Ok(()) => Status::Ok,
                    Err(e) => err_status(e, out),
                };
                (wstat::REQ_PUT, status)
            }
            Request::Get { key } => {
                let status = match self.store.page_size() {
                    // Nothing has ever been stored: every key misses.
                    None => Status::NotFound,
                    Some(ps) => {
                        out.resize(ps, 0);
                        match self.store.get_traced(*key, out, ctx) {
                            Ok(true) => Status::Ok,
                            Ok(false) => {
                                out.clear();
                                Status::NotFound
                            }
                            Err(e) => err_status(e, out),
                        }
                    }
                };
                (wstat::REQ_GET, status)
            }
            Request::Del { key } => {
                let status = if self.store.remove(*key) {
                    Status::Ok
                } else {
                    Status::NotFound
                };
                (wstat::REQ_DEL, status)
            }
            Request::Flush => {
                let status = match self.store.flush() {
                    Ok(()) => Status::Ok,
                    Err(e) => err_status(e, out),
                };
                (wstat::REQ_FLUSH, status)
            }
            Request::Stats => {
                out.extend_from_slice(self.stats_text().as_bytes());
                (wstat::REQ_STATS, Status::Ok)
            }
            Request::Ping => (wstat::REQ_PING, Status::Ok),
            Request::Dump => {
                match tr {
                    Some(t) => out.extend_from_slice(t.dump_json("on-demand").as_bytes()),
                    // Untraced server: an empty-but-valid document, so
                    // clients need not special-case the response.
                    None => out.extend_from_slice(b"{}"),
                }
                (wstat::REQ_DUMP, Status::Ok)
            }
        };
        self.tel.count(stripe, counter, 1);
        if let (Some(t), Some(t0)) = (tr, t0) {
            t.record(
                stripe,
                &Span {
                    trace_id: rctx.trace_id,
                    span_id: root,
                    parent: 0,
                    op: sop::REQUEST,
                    tier: tier::NONE,
                    codec: req.opcode() as u8,
                    status: status as u8,
                    start_ns: t.now_ns(t0),
                    queue_ns: 0,
                    service_ns: t0.elapsed().as_nanos() as u64,
                    arg: conn_id,
                },
            );
        }
        (status, ctx)
    }
}

fn err_status(e: StoreError, out: &mut Vec<u8>) -> Status {
    out.clear();
    use std::fmt::Write as _;
    let mut msg = String::new();
    let _ = write!(msg, "{e}");
    out.extend_from_slice(msg.as_bytes());
    Status::Err
}
